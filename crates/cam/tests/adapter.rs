//! Register-level behaviour of the mailbox adapter (the HW half of the
//! paper's HW/SW interface): status bits, doorbells, windows, and the error
//! responses a buggy driver would see.

use std::sync::{Arc, Mutex};

use shiptlm_cam::wrapper::{
    regs, ShipSlaveAdapter, WrapperConfig, DOORBELL_DATA, DOORBELL_REPLY_ACK, DOORBELL_REPLY_SET,
    DOORBELL_REQUEST, DOORBELL_RX_ACK, STATUS_REPLY_READY, STATUS_RX_PENDING, STATUS_RX_SPACE,
};
use shiptlm_kernel::prelude::*;
use shiptlm_ocp::prelude::*;

fn with_adapter<F>(f: F) -> Simulation
where
    F: FnOnce(&mut ThreadCtx, OcpMasterPort) + Send + 'static,
{
    let sim = Simulation::new();
    let adapter = ShipSlaveAdapter::new(&sim.handle(), "adp", &WrapperConfig::default());
    let port = OcpMasterPort::bind(MasterId(0), adapter);
    sim.spawn_thread("driver", move |ctx| f(ctx, port));
    sim
}

#[test]
fn status_starts_with_rx_space_only() {
    let sim = with_adapter(|ctx, port| {
        let s = port.read_u32(ctx, regs::STATUS).unwrap();
        assert_eq!(s & STATUS_RX_SPACE, STATUS_RX_SPACE);
        assert_eq!(s & STATUS_REPLY_READY, 0);
        assert_eq!(s & STATUS_RX_PENDING, 0);
    });
    sim.run();
}

#[test]
fn message_roundtrip_via_registers_only() {
    // Push a message through TX and drain it through the RX window — the
    // exact MMIO sequence the SW driver performs, hand-rolled.
    let sim = with_adapter(|ctx, port| {
        let msg = b"hello adapter".to_vec();
        port.write_u32(ctx, regs::TX_LEN, msg.len() as u32).unwrap();
        port.write(ctx, regs::TX_WIN, msg.clone()).unwrap();
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_DATA).unwrap();

        let s = port.read_u32(ctx, regs::STATUS).unwrap();
        assert_ne!(s & STATUS_RX_PENDING, 0);
        assert_eq!(port.read_u32(ctx, regs::RX_LEN).unwrap(), msg.len() as u32);
        assert_eq!(port.read_u32(ctx, regs::RX_KIND).unwrap(), 1); // data
        let got = port.read(ctx, regs::RX_WIN, msg.len()).unwrap();
        assert_eq!(got, msg);
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_RX_ACK)
            .unwrap();
        let s = port.read_u32(ctx, regs::STATUS).unwrap();
        assert_eq!(s & STATUS_RX_PENDING, 0);
    });
    sim.run();
}

#[test]
fn request_reply_via_registers() {
    let sim = with_adapter(|ctx, port| {
        // Request in.
        port.write_u32(ctx, regs::TX_LEN, 4).unwrap();
        port.write(ctx, regs::TX_WIN, vec![1, 2, 3, 4]).unwrap();
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_REQUEST)
            .unwrap();
        assert_eq!(port.read_u32(ctx, regs::RX_KIND).unwrap(), 2); // request
                                                                   // Pop it (this is what makes a reply owed).
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_RX_ACK)
            .unwrap();
        // Stage and publish the reply.
        port.write_u32(ctx, regs::SET_REPLY_LEN, 2).unwrap();
        port.write(ctx, regs::REPLY_WIN, vec![9, 8]).unwrap();
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_REPLY_SET)
            .unwrap();
        // Read it back as the master would.
        let s = port.read_u32(ctx, regs::STATUS).unwrap();
        assert_ne!(s & STATUS_REPLY_READY, 0);
        assert_eq!(port.read_u32(ctx, regs::REPLY_LEN).unwrap(), 2);
        assert_eq!(port.read(ctx, regs::REPLY_WIN, 2).unwrap(), vec![9, 8]);
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_REPLY_ACK)
            .unwrap();
        let s = port.read_u32(ctx, regs::STATUS).unwrap();
        assert_eq!(s & STATUS_REPLY_READY, 0);
    });
    sim.run();
}

fn expect_err(result: Result<(), OcpError>) {
    assert!(
        matches!(result, Err(OcpError::SlaveError { .. })),
        "expected ERR response, got {result:?}"
    );
}

#[test]
fn error_responses_for_driver_bugs() {
    let sim = with_adapter(|ctx, port| {
        // Oversized TX_LEN.
        expect_err(port.write_u32(ctx, regs::TX_LEN, 0x4000_0000));
        // Unknown doorbell value.
        expect_err(port.write_u32(ctx, regs::DOORBELL, 99));
        // TX window write beyond the staged length.
        port.write_u32(ctx, regs::TX_LEN, 4).unwrap();
        expect_err(port.write(ctx, regs::TX_WIN, vec![0; 8]));
        // RX pop with an empty mailbox.
        expect_err(port.write_u32(ctx, regs::DOORBELL, DOORBELL_RX_ACK));
        // Reply publish without an owed request.
        port.write_u32(ctx, regs::SET_REPLY_LEN, 1).unwrap();
        port.write(ctx, regs::REPLY_WIN, vec![1]).unwrap();
        expect_err(port.write_u32(ctx, regs::DOORBELL, DOORBELL_REPLY_SET));
        // Read of an unmapped register.
        assert!(port.read(ctx, 0x7777, 4).is_err());
        // RX window read with nothing pending.
        assert!(port.read(ctx, regs::RX_WIN, 4).is_err());
    });
    sim.run();
}

#[test]
fn mailbox_backpressure_clears_rx_space() {
    let cfg = WrapperConfig {
        rx_capacity: 2,
        ..WrapperConfig::default()
    };
    let sim = Simulation::new();
    let adapter = ShipSlaveAdapter::new(&sim.handle(), "adp", &cfg);
    let port = OcpMasterPort::bind(MasterId(0), adapter);
    sim.spawn_thread("driver", move |ctx| {
        for _ in 0..2 {
            port.write_u32(ctx, regs::TX_LEN, 1).unwrap();
            port.write(ctx, regs::TX_WIN, vec![7]).unwrap();
            port.write_u32(ctx, regs::DOORBELL, DOORBELL_DATA).unwrap();
        }
        let s = port.read_u32(ctx, regs::STATUS).unwrap();
        assert_eq!(s & STATUS_RX_SPACE, 0, "mailbox full: no RX space bit");
        // A third doorbell must be refused.
        port.write_u32(ctx, regs::TX_LEN, 1).unwrap();
        port.write(ctx, regs::TX_WIN, vec![8]).unwrap();
        expect_err(port.write_u32(ctx, regs::DOORBELL, DOORBELL_DATA));
        // Draining one restores space.
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_RX_ACK)
            .unwrap();
        let s = port.read_u32(ctx, regs::STATUS).unwrap();
        assert_ne!(s & STATUS_RX_SPACE, 0);
    });
    sim.run();
}

#[test]
fn sideband_tracks_pending_state() {
    let sim = Simulation::new();
    let h = sim.handle();
    let adapter = ShipSlaveAdapter::new(&h, "adp", &WrapperConfig::default());
    let irq = sim.signal("irq", false);
    adapter.attach_sideband(irq.clone());
    let port = OcpMasterPort::bind(MasterId(0), adapter);
    let observed = Arc::new(Mutex::new(Vec::new()));
    {
        let observed = Arc::clone(&observed);
        let irq_r = irq.clone();
        sim.spawn_thread("mon", move |ctx| {
            let ev = irq_r.changed_event();
            for _ in 0..2 {
                ctx.wait(&ev);
                observed
                    .lock()
                    .unwrap()
                    .push((ctx.now().as_ps(), irq_r.read()));
            }
        });
    }
    sim.spawn_thread("driver", move |ctx| {
        ctx.wait_for(SimDur::ns(10));
        port.write_u32(ctx, regs::TX_LEN, 1).unwrap();
        port.write(ctx, regs::TX_WIN, vec![1]).unwrap();
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_DATA).unwrap(); // irq rises
        ctx.wait_for(SimDur::ns(10));
        port.write_u32(ctx, regs::DOORBELL, DOORBELL_RX_ACK)
            .unwrap(); // irq falls
    });
    sim.run();
    let obs = observed.lock().unwrap();
    assert_eq!(obs.len(), 2);
    assert!(obs[0].1, "first transition must be a rise");
    assert!(!obs[1].1, "second transition must be a fall");
}
