//! Property-based tests of the arbitration policies: every grant goes to a
//! pending requester, priorities are respected, round-robin is fair over a
//! full rotation, and TDMA never grants outside the owner's slot.

use proptest::prelude::*;
use shiptlm_cam::arb::{ArbPolicy, Ticket};
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_ocp::tl::MasterId;

fn tickets(masters: &[usize]) -> Vec<Ticket> {
    masters
        .iter()
        .enumerate()
        .map(|(seq, m)| Ticket {
            master: MasterId(*m),
            seq: seq as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The winner, when any, is always one of the pending tickets.
    #[test]
    fn winner_is_pending(
        masters in proptest::collection::vec(0usize..8, 0..10),
        last in proptest::option::of(0usize..8),
        now_ns in 0u64..100_000,
    ) {
        let pending = tickets(&masters);
        let now = SimTime::from_ps(now_ns * 1_000);
        for policy in [
            ArbPolicy::FixedPriority,
            ArbPolicy::RoundRobin,
            ArbPolicy::Tdma { slot: SimDur::ns(100), slots: 4 },
        ] {
            let w = policy.pick(&pending, last.map(MasterId), now);
            if let Some(w) = w {
                prop_assert!(pending.contains(&w));
            }
            if pending.is_empty() {
                prop_assert!(w.is_none());
            }
        }
    }

    /// Fixed priority always grants the smallest pending master id.
    #[test]
    fn priority_grants_minimum(masters in proptest::collection::vec(0usize..16, 1..10)) {
        let pending = tickets(&masters);
        let w = ArbPolicy::FixedPriority
            .pick(&pending, None, SimTime::ZERO)
            .unwrap();
        prop_assert_eq!(w.master.0, *masters.iter().min().unwrap());
    }

    /// Fixed priority with unique masters is insensitive to arrival order.
    #[test]
    fn priority_ignores_arrival_order(mut masters in proptest::collection::vec(0usize..32, 1..8)) {
        masters.sort_unstable();
        masters.dedup();
        let forward = tickets(&masters);
        let reversed: Vec<usize> = masters.iter().rev().copied().collect();
        let backward = tickets(&reversed);
        let a = ArbPolicy::FixedPriority.pick(&forward, None, SimTime::ZERO).unwrap();
        let b = ArbPolicy::FixedPriority.pick(&backward, None, SimTime::ZERO).unwrap();
        prop_assert_eq!(a.master, b.master);
    }

    /// Round-robin serves every distinct pending master exactly once per
    /// rotation when the pending set is stable.
    #[test]
    fn round_robin_is_fair_over_a_rotation(mut masters in proptest::collection::vec(0usize..8, 1..8)) {
        masters.sort_unstable();
        masters.dedup();
        let pending = tickets(&masters);
        let mut last: Option<MasterId> = None;
        let mut served = Vec::new();
        for _ in 0..masters.len() {
            let w = ArbPolicy::RoundRobin.pick(&pending, last, SimTime::ZERO).unwrap();
            served.push(w.master.0);
            last = Some(w.master);
        }
        served.sort_unstable();
        prop_assert_eq!(served, masters);
    }

    /// TDMA only ever grants the master owning the current slot.
    #[test]
    fn tdma_grants_only_in_slot(
        masters in proptest::collection::vec(0usize..8, 1..10),
        now_ns in 0u64..1_000_000,
        slots in 1usize..8,
    ) {
        let slot = SimDur::ns(250);
        let now = SimTime::from_ps(now_ns * 1_000);
        let policy = ArbPolicy::Tdma { slot, slots };
        let owner = ((now_ns * 1_000) / slot.as_ps()) as usize % slots;
        let pending = tickets(&masters);
        match policy.pick(&pending, None, now) {
            Some(w) => prop_assert_eq!(w.master.0 % slots, owner),
            None => prop_assert!(masters.iter().all(|m| m % slots != owner)),
        }
    }

    /// TDMA's recheck delay lands exactly on the next slot boundary.
    #[test]
    fn tdma_recheck_hits_boundary(now_ps in 0u64..10_000_000, slot_ns in 1u64..1_000) {
        let slot = SimDur::ns(slot_ns);
        let policy = ArbPolicy::Tdma { slot, slots: 4 };
        let now = SimTime::from_ps(now_ps);
        let d = policy.recheck_delay(now).unwrap();
        prop_assert!(d.as_ps() > 0);
        prop_assert!(d <= slot);
        prop_assert_eq!((now_ps + d.as_ps()) % slot.as_ps(), 0);
    }
}
