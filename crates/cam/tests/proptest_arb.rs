//! Randomized tests of the arbitration policies: every grant goes to a
//! pending requester, priorities are respected, round-robin is fair over a
//! full rotation, and TDMA never grants outside the owner's slot.
//!
//! Inputs come from a deterministic seeded [`Rng`], so each case reproduces
//! from its iteration index.

use shiptlm_cam::arb::{ArbPolicy, Ticket};
use shiptlm_kernel::rng::Rng;
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_ocp::tl::MasterId;

fn tickets(masters: &[usize]) -> Vec<Ticket> {
    masters
        .iter()
        .enumerate()
        .map(|(seq, m)| Ticket {
            master: MasterId(*m),
            seq: seq as u64,
        })
        .collect()
}

fn gen_masters(rng: &mut Rng, bound: usize, min_len: usize, max_len: usize) -> Vec<usize> {
    (0..rng.gen_range_usize(min_len, max_len))
        .map(|_| rng.gen_range_usize(0, bound))
        .collect()
}

const CASES: u64 = 256;

/// The winner, when any, is always one of the pending tickets.
#[test]
fn winner_is_pending() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa2b0_0000 + case);
        let masters = gen_masters(&mut rng, 8, 0, 10);
        let last = if rng.gen_bool() {
            Some(rng.gen_range_usize(0, 8))
        } else {
            None
        };
        let now_ns = rng.gen_range_u64(0, 100_000);

        let pending = tickets(&masters);
        let now = SimTime::from_ps(now_ns * 1_000);
        for policy in [
            ArbPolicy::FixedPriority,
            ArbPolicy::RoundRobin,
            ArbPolicy::Tdma {
                slot: SimDur::ns(100),
                slots: 4,
            },
        ] {
            let w = policy.pick(&pending, last.map(MasterId), now);
            if let Some(w) = w {
                assert!(pending.contains(&w), "case {case}");
            }
            if pending.is_empty() {
                assert!(w.is_none(), "case {case}");
            }
        }
    }
}

/// Fixed priority always grants the smallest pending master id.
#[test]
fn priority_grants_minimum() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa2b0_1000 + case);
        let masters = gen_masters(&mut rng, 16, 1, 10);
        let pending = tickets(&masters);
        let w = ArbPolicy::FixedPriority
            .pick(&pending, None, SimTime::ZERO)
            .unwrap();
        assert_eq!(w.master.0, *masters.iter().min().unwrap(), "case {case}");
    }
}

/// Fixed priority with unique masters is insensitive to arrival order.
#[test]
fn priority_ignores_arrival_order() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa2b0_2000 + case);
        let mut masters = gen_masters(&mut rng, 32, 1, 8);
        masters.sort_unstable();
        masters.dedup();
        let forward = tickets(&masters);
        let reversed: Vec<usize> = masters.iter().rev().copied().collect();
        let backward = tickets(&reversed);
        let a = ArbPolicy::FixedPriority
            .pick(&forward, None, SimTime::ZERO)
            .unwrap();
        let b = ArbPolicy::FixedPriority
            .pick(&backward, None, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.master, b.master, "case {case}");
    }
}

/// Round-robin serves every distinct pending master exactly once per
/// rotation when the pending set is stable.
#[test]
fn round_robin_is_fair_over_a_rotation() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa2b0_3000 + case);
        let mut masters = gen_masters(&mut rng, 8, 1, 8);
        masters.sort_unstable();
        masters.dedup();
        let pending = tickets(&masters);
        let mut last: Option<MasterId> = None;
        let mut served = Vec::new();
        for _ in 0..masters.len() {
            let w = ArbPolicy::RoundRobin
                .pick(&pending, last, SimTime::ZERO)
                .unwrap();
            served.push(w.master.0);
            last = Some(w.master);
        }
        served.sort_unstable();
        assert_eq!(served, masters, "case {case}");
    }
}

/// TDMA only ever grants the master owning the current slot.
#[test]
fn tdma_grants_only_in_slot() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa2b0_4000 + case);
        let masters = gen_masters(&mut rng, 8, 1, 10);
        let now_ns = rng.gen_range_u64(0, 1_000_000);
        let slots = rng.gen_range_usize(1, 8);

        let slot = SimDur::ns(250);
        let now = SimTime::from_ps(now_ns * 1_000);
        let policy = ArbPolicy::Tdma { slot, slots };
        let owner = ((now_ns * 1_000) / slot.as_ps()) as usize % slots;
        let pending = tickets(&masters);
        match policy.pick(&pending, None, now) {
            Some(w) => assert_eq!(w.master.0 % slots, owner, "case {case}"),
            None => assert!(masters.iter().all(|m| m % slots != owner), "case {case}"),
        }
    }
}

/// TDMA's recheck delay lands exactly on the next slot boundary.
#[test]
fn tdma_recheck_hits_boundary() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa2b0_5000 + case);
        let now_ps = rng.gen_range_u64(0, 10_000_000);
        let slot_ns = rng.gen_range_u64(1, 1_000);

        let slot = SimDur::ns(slot_ns);
        let policy = ArbPolicy::Tdma { slot, slots: 4 };
        let now = SimTime::from_ps(now_ps);
        let d = policy.recheck_delay(now).unwrap();
        assert!(d.as_ps() > 0, "case {case}");
        assert!(d <= slot, "case {case}");
        assert_eq!((now_ps + d.as_ps()) % slot.as_ps(), 0, "case {case}");
    }
}
