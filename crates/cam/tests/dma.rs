//! DMA engine: descriptor-driven copies over the bus, status/doorbell
//! protocol, completion sideband, and contention with CPU traffic.

use std::sync::Arc;

use shiptlm_cam::prelude::*;
use shiptlm_kernel::prelude::*;
use shiptlm_ocp::prelude::*;

const DMA_BASE: u64 = 0x4000_0000;

struct Bench {
    sim: Simulation,
    bus: Arc<CcatbBus>,
    ram: Arc<Memory>,
    dma: Arc<DmaEngine>,
}

fn bench(burst: usize) -> Bench {
    let sim = Simulation::new();
    let h = sim.handle();
    let mut bus = CcatbBus::new(&h, BusConfig::plb("plb"));
    let ram = Arc::new(Memory::new("ram", 0x10000));
    bus.map_slave(0..0x10000, ram.clone(), true);
    // The engine masters the same bus it is a slave on, so its slave
    // window is mapped through a late-bound forwarder: slaves must be
    // mapped before the bus is shared, but the engine needs the shared
    // bus for its master port.
    let fwd = Arc::new(LazyTarget::default());
    bus.map_slave(DMA_BASE..DMA_BASE + 0x1000, fwd.clone(), true);
    let bus = Arc::new(bus);
    let dma = DmaEngine::new(&h, "dma0", bus.master_port(MasterId(7)), burst);
    fwd.set(dma.clone());
    Bench { sim, bus, ram, dma }
}

/// A slave slot that can be bound after the bus was shared.
#[derive(Default)]
struct LazyTarget {
    inner: std::sync::Mutex<Option<Arc<dyn OcpTarget>>>,
}

impl LazyTarget {
    fn set(&self, t: Arc<dyn OcpTarget>) {
        *self.inner.lock().unwrap() = Some(t);
    }
}

impl OcpTarget for LazyTarget {
    fn transact(
        &self,
        ctx: &mut shiptlm_kernel::process::ThreadCtx,
        master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let t = self.inner.lock().unwrap().clone().expect("target bound");
        t.transact(ctx, master, req)
    }
    fn target_name(&self) -> String {
        "lazy".into()
    }
}

fn start_copy(ctx: &mut ThreadCtx, cpu: &OcpMasterPort, src: u64, dst: u64, len: u32) {
    cpu.write(ctx, DMA_BASE + dma_regs::SRC, src.to_le_bytes().to_vec())
        .unwrap();
    cpu.write(ctx, DMA_BASE + dma_regs::DST, dst.to_le_bytes().to_vec())
        .unwrap();
    cpu.write_u32(ctx, DMA_BASE + dma_regs::LEN, len).unwrap();
    cpu.write_u32(ctx, DMA_BASE + dma_regs::CTRL, DMA_CTRL_START)
        .unwrap();
}

fn wait_done(ctx: &mut ThreadCtx, cpu: &OcpMasterPort) -> u32 {
    loop {
        let s = cpu.read_u32(ctx, DMA_BASE + dma_regs::STATUS).unwrap();
        if s & (DMA_STATUS_DONE | DMA_STATUS_ERROR) != 0 {
            return s;
        }
        ctx.wait_for(SimDur::ns(200));
    }
}

#[test]
fn dma_copies_a_block() {
    let b = bench(64);
    let pattern: Vec<u8> = (0..200u8).collect();
    b.ram.poke(0x100, &pattern);
    let cpu = b.bus.master_port(MasterId(0));
    b.sim.spawn_thread("cpu", move |ctx| {
        start_copy(ctx, &cpu, 0x100, 0x2000, 200);
        let s = wait_done(ctx, &cpu);
        assert_ne!(s & DMA_STATUS_DONE, 0);
        assert_eq!(s & DMA_STATUS_ERROR, 0);
    });
    b.sim.run();
    assert_eq!(b.ram.peek(0x2000, 200).unwrap(), pattern);
    assert_eq!(b.dma.transfers(), 1);
    assert_eq!(b.dma.total_bytes(), 200);
}

#[test]
fn dma_error_on_bad_address() {
    let b = bench(64);
    let cpu = b.bus.master_port(MasterId(0));
    b.sim.spawn_thread("cpu", move |ctx| {
        // Source outside any mapping: the engine must flag an error.
        start_copy(ctx, &cpu, 0x9000_0000, 0x2000, 64);
        let s = wait_done(ctx, &cpu);
        assert_ne!(s & DMA_STATUS_ERROR, 0);
        // Clear and reuse.
        cpu.write_u32(ctx, DMA_BASE + dma_regs::CTRL, DMA_CTRL_CLEAR)
            .unwrap();
        start_copy(ctx, &cpu, 0x0, 0x3000, 32);
        let s = wait_done(ctx, &cpu);
        assert_ne!(s & DMA_STATUS_DONE, 0);
    });
    b.sim.run();
    assert_eq!(b.dma.transfers(), 1);
}

#[test]
fn dma_start_while_busy_is_rejected() {
    let b = bench(8); // small bursts: the copy takes a while
    let cpu = b.bus.master_port(MasterId(0));
    b.sim.spawn_thread("cpu", move |ctx| {
        start_copy(ctx, &cpu, 0, 0x4000, 4096);
        // Immediately try to start again: must be refused while busy.
        let r = cpu.write_u32(ctx, DMA_BASE + dma_regs::CTRL, DMA_CTRL_START);
        assert!(matches!(r, Err(OcpError::SlaveError { .. })));
        let s = wait_done(ctx, &cpu);
        assert_ne!(s & DMA_STATUS_DONE, 0);
    });
    b.sim.run();
}

#[test]
fn dma_sideband_rises_on_completion() {
    let b = bench(64);
    let irq = b.sim.signal("dma_irq", false);
    b.dma.attach_sideband(irq.clone());
    let cpu = b.bus.master_port(MasterId(0));
    let irq2 = irq.clone();
    b.sim.spawn_thread("cpu", move |ctx| {
        start_copy(ctx, &cpu, 0, 0x5000, 128);
        let ev = irq2.changed_event();
        ctx.wait(&ev);
        assert!(irq2.read(), "sideband must be high after completion");
        cpu.write_u32(ctx, DMA_BASE + dma_regs::CTRL, DMA_CTRL_CLEAR)
            .unwrap();
        ctx.wait(&ev);
        assert!(!irq2.read(), "clear must drop the sideband");
    });
    b.sim.run();
}

#[test]
fn dma_contends_with_cpu_traffic_under_arbitration() {
    let b = bench(64);
    let cpu = b.bus.master_port(MasterId(0));
    b.sim.spawn_thread("cpu", move |ctx| {
        start_copy(ctx, &cpu, 0, 0x6000, 2048);
        // Hammer the bus while the DMA works; priority: CPU (0) > DMA (7).
        for i in 0..50u64 {
            cpu.write(ctx, 0x8000 + i * 8, vec![i as u8; 8]).unwrap();
        }
        let s = wait_done(ctx, &cpu);
        assert_ne!(s & DMA_STATUS_DONE, 0);
    });
    b.sim.run();
    let stats = b.bus.stats();
    // Both masters appear in the per-master breakdown.
    assert!(stats.per_master.contains_key(&0));
    assert!(stats.per_master.contains_key(&7));
    // The DMA must have waited at least once under CPU pressure.
    assert!(stats.per_master[&7].wait_cycles.count() > 0);
}
