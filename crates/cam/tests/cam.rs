//! CAM behaviour: CCATB bus timing, arbitration policies, crossbar
//! parallelism, bridging, SHIP channel mapping and pin-level accessors.

use std::sync::{Arc, Mutex};

use shiptlm_cam::prelude::*;
use shiptlm_kernel::prelude::*;
use shiptlm_ocp::prelude::*;
use shiptlm_ship::prelude::*;

fn plb_with_ram(sim: &Simulation, arb: ArbPolicy) -> Arc<CcatbBus> {
    let mut bus = CcatbBus::new(&sim.handle(), BusConfig::plb("plb").with_arb(arb));
    bus.map_slave(0..0x10000, Arc::new(Memory::new("ram", 0x10000)), true);
    Arc::new(bus)
}

#[test]
fn single_master_transaction_timing_is_cycle_accurate() {
    // PLB: arb 1 + addr 1 + 4 beats (32B / 8B) = 6 cycles of 10 ns.
    let sim = Simulation::new();
    let bus = plb_with_ram(&sim, ArbPolicy::FixedPriority);
    let port = bus.master_port(MasterId(0));
    let timing = Arc::new(Mutex::new(TxTiming::default()));
    {
        let timing = Arc::clone(&timing);
        sim.spawn_thread("m", move |ctx| {
            let r = port
                .transact(ctx, OcpRequest::write(0, vec![0; 32]))
                .unwrap();
            *timing.lock().unwrap() = r.timing;
        });
    }
    sim.run();
    let t = timing.lock().unwrap();
    assert_eq!(t.total_cycles, 6);
    assert_eq!(t.wait_cycles, 0);
}

#[test]
fn contention_serializes_masters_and_charges_wait() {
    let sim = Simulation::new();
    let bus = plb_with_ram(&sim, ArbPolicy::FixedPriority);
    let done: Arc<Mutex<Vec<(usize, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for m in 0..3 {
        let port = bus.master_port(MasterId(m));
        let done = Arc::clone(&done);
        sim.spawn_thread(&format!("m{m}"), move |ctx| {
            let r = port
                .transact(ctx, OcpRequest::write(0, vec![0; 64]))
                .unwrap();
            done.lock()
                .unwrap()
                .push((m, r.timing.wait_cycles, r.timing.total_cycles));
        });
    }
    sim.run();
    let done = done.lock().unwrap();
    // Fixed priority: master 0 first (no wait), others wait in id order.
    let by_master: std::collections::BTreeMap<usize, (u64, u64)> =
        done.iter().map(|(m, w, t)| (*m, (*w, *t))).collect();
    assert_eq!(by_master[&0].0, 0);
    assert!(by_master[&1].0 > 0);
    assert!(by_master[&2].0 > by_master[&1].0);
    let stats = bus.stats();
    assert_eq!(stats.transactions, 3);
    assert_eq!(stats.bytes, 192);
}

#[test]
fn pipelined_bus_overlaps_address_phase_on_back_to_back() {
    // Same workload on a pipelined and a non-pipelined PLB; the pipelined
    // one must finish strictly earlier.
    let run = |pipelined: bool| {
        let sim = Simulation::new();
        let mut cfg = BusConfig::plb("plb");
        cfg.pipelined = pipelined;
        let mut bus = CcatbBus::new(&sim.handle(), cfg);
        bus.map_slave(0..0x10000, Arc::new(Memory::new("ram", 0x10000)), true);
        let bus = Arc::new(bus);
        for m in 0..2 {
            let port = bus.master_port(MasterId(m));
            sim.spawn_thread(&format!("m{m}"), move |ctx| {
                for i in 0..16u64 {
                    port.write(ctx, i * 64, vec![0; 64]).unwrap();
                }
            });
        }
        sim.run().time
    };
    let piped = run(true);
    let flat = run(false);
    assert!(piped < flat, "pipelined {piped} !< flat {flat}");
}

#[test]
fn round_robin_alternates_between_contenders() {
    let sim = Simulation::new();
    let bus = plb_with_ram(&sim, ArbPolicy::RoundRobin);
    let order = Arc::new(Mutex::new(Vec::new()));
    for m in 0..2 {
        let port = bus.master_port(MasterId(m));
        let order = Arc::clone(&order);
        sim.spawn_thread(&format!("m{m}"), move |ctx| {
            for _ in 0..4 {
                port.write(ctx, 0, vec![0; 64]).unwrap();
                order.lock().unwrap().push(m);
            }
        });
    }
    sim.run();
    let order = order.lock().unwrap();
    assert_eq!(order.len(), 8);
    // Under round-robin with saturated masters, grants alternate.
    let mut alternations = 0;
    for w in order.windows(2) {
        if w[0] != w[1] {
            alternations += 1;
        }
    }
    assert!(
        alternations >= 5,
        "expected mostly alternating grants, got {order:?}"
    );
}

#[test]
fn fixed_priority_starves_low_priority_under_load() {
    let sim = Simulation::new();
    let bus = plb_with_ram(&sim, ArbPolicy::FixedPriority);
    let finish: Arc<Mutex<Vec<(usize, SimTime)>>> = Arc::new(Mutex::new(Vec::new()));
    for m in 0..2 {
        let port = bus.master_port(MasterId(m));
        let finish = Arc::clone(&finish);
        sim.spawn_thread(&format!("m{m}"), move |ctx| {
            for _ in 0..8 {
                port.write(ctx, 0, vec![0; 128]).unwrap();
            }
            finish.lock().unwrap().push((m, ctx.now()));
        });
    }
    sim.run();
    let finish = finish.lock().unwrap();
    let t0 = finish.iter().find(|(m, _)| *m == 0).unwrap().1;
    let t1 = finish.iter().find(|(m, _)| *m == 1).unwrap().1;
    assert!(
        t0 < t1,
        "high priority must finish first (t0={t0}, t1={t1})"
    );
}

#[test]
fn tdma_bounds_access_to_own_slot() {
    let sim = Simulation::new();
    let slot = SimDur::ns(200);
    let bus = plb_with_ram(&sim, ArbPolicy::Tdma { slot, slots: 2 });
    // Only master 1 requests, at t=0 (slot 0 belongs to master 0): it must
    // wait for its slot at 200 ns.
    let port = bus.master_port(MasterId(1));
    let started = Arc::new(Mutex::new(SimTime::ZERO));
    {
        let started = Arc::clone(&started);
        sim.spawn_thread("m1", move |ctx| {
            let r = port
                .transact(ctx, OcpRequest::write(0, vec![0; 8]))
                .unwrap();
            *started.lock().unwrap() = r.timing.start + SimDur::ps(0);
            assert!(
                r.timing.wait_cycles >= 20,
                "must wait ~200ns = 20 cycles, waited {}",
                r.timing.wait_cycles
            );
        });
    }
    sim.run();
}

#[test]
fn opb_is_slower_than_plb_for_the_same_workload() {
    let run = |cfg: BusConfig| {
        let sim = Simulation::new();
        let mut bus = CcatbBus::new(&sim.handle(), cfg);
        bus.map_slave(0..0x10000, Arc::new(Memory::new("ram", 0x10000)), true);
        let bus = Arc::new(bus);
        let port = bus.master_port(MasterId(0));
        sim.spawn_thread("m", move |ctx| {
            for i in 0..32u64 {
                port.write(ctx, i * 64, vec![0; 64]).unwrap();
            }
        });
        sim.run().time
    };
    let plb = run(BusConfig::plb("plb"));
    let opb = run(BusConfig::opb("opb"));
    // OPB: narrower, slower clock, 2 cycles/beat, no pipelining.
    assert!(
        opb.as_ps() > plb.as_ps() * 4,
        "opb {opb} should be >4x slower than plb {plb}"
    );
}

#[test]
fn crossbar_parallelizes_disjoint_targets() {
    // Two masters to two different slaves: crossbar time ~ single-master
    // time; shared bus time ~ 2x.
    let crossbar_time = {
        let sim = Simulation::new();
        let mut xbar = Crossbar::new(&sim.handle(), CrossbarConfig::default_64bit("x"));
        xbar.map_slave(0..0x1000, Arc::new(Memory::new("a", 0x1000)), true);
        xbar.map_slave(0x1000..0x2000, Arc::new(Memory::new("b", 0x1000)), true);
        let xbar = Arc::new(xbar);
        for m in 0..2u64 {
            let port = xbar.master_port(MasterId(m as usize));
            sim.spawn_thread(&format!("m{m}"), move |ctx| {
                for i in 0..16u64 {
                    port.write(ctx, m * 0x1000 + i * 64, vec![0; 64]).unwrap();
                }
            });
        }
        sim.run().time
    };
    let bus_time = {
        let sim = Simulation::new();
        let mut bus = CcatbBus::new(&sim.handle(), BusConfig::plb("plb"));
        bus.map_slave(0..0x1000, Arc::new(Memory::new("a", 0x1000)), true);
        bus.map_slave(0x1000..0x2000, Arc::new(Memory::new("b", 0x1000)), true);
        let bus = Arc::new(bus);
        for m in 0..2u64 {
            let port = bus.master_port(MasterId(m as usize));
            sim.spawn_thread(&format!("m{m}"), move |ctx| {
                for i in 0..16u64 {
                    port.write(ctx, m * 0x1000 + i * 64, vec![0; 64]).unwrap();
                }
            });
        }
        sim.run().time
    };
    assert!(
        crossbar_time.as_ps() * 3 < bus_time.as_ps() * 2,
        "crossbar {crossbar_time} should be well under shared bus {bus_time}"
    );
}

#[test]
fn crossbar_serializes_same_target() {
    let sim = Simulation::new();
    let mut xbar = Crossbar::new(&sim.handle(), CrossbarConfig::default_64bit("x"));
    xbar.map_slave(0..0x1000, Arc::new(Memory::new("a", 0x1000)), true);
    let xbar = Arc::new(xbar);
    let waits = Arc::new(Mutex::new(Vec::new()));
    for m in 0..2 {
        let port = xbar.master_port(MasterId(m));
        let waits = Arc::clone(&waits);
        sim.spawn_thread(&format!("m{m}"), move |ctx| {
            let r = port
                .transact(ctx, OcpRequest::write(0, vec![0; 256]))
                .unwrap();
            waits.lock().unwrap().push(r.timing.wait_cycles);
        });
    }
    sim.run();
    let waits = waits.lock().unwrap();
    assert!(waits.iter().any(|w| *w > 0), "one master must have waited");
}

#[test]
fn bridge_adds_latency_and_routes_downstream() {
    let sim = Simulation::new();
    // OPB with a peripheral memory.
    let mut opb = CcatbBus::new(&sim.handle(), BusConfig::opb("opb"));
    opb.map_slave(
        0x4000_0000..0x4000_1000,
        Arc::new(Memory::new("per", 0x1000)),
        true,
    );
    let opb = Arc::new(opb);
    // PLB with RAM and the bridge to OPB.
    let mut plb = CcatbBus::new(&sim.handle(), BusConfig::plb("plb"));
    plb.map_slave(0..0x1000, Arc::new(Memory::new("ram", 0x1000)), true);
    plb.map_slave(
        0x4000_0000..0x4000_1000,
        Arc::new(Bridge::new(
            "plb2opb",
            SimDur::ns(40),
            opb.clone(),
            MasterId(0),
        )),
        false,
    );
    let plb = Arc::new(plb);
    let port = plb.master_port(MasterId(0));
    let times = Arc::new(Mutex::new((SimDur::ZERO, SimDur::ZERO)));
    {
        let times = Arc::clone(&times);
        sim.spawn_thread("cpu", move |ctx| {
            let t0 = ctx.now();
            port.write(ctx, 0x100, vec![1; 8]).unwrap();
            let local = ctx.now().since(t0);
            let t1 = ctx.now();
            port.write(ctx, 0x4000_0100, vec![2; 8]).unwrap();
            let remote = ctx.now().since(t1);
            *times.lock().unwrap() = (local, remote);
        });
    }
    sim.run();
    let (local, remote) = *times.lock().unwrap();
    assert!(
        remote > local + SimDur::ns(40),
        "bridged access ({remote}) must exceed local ({local}) + bridge latency"
    );
    assert_eq!(opb.stats().transactions, 1);
}

#[test]
fn mapped_ship_channel_preserves_content() {
    let sim = Simulation::new();
    let h = sim.handle();
    let mut bus = CcatbBus::new(&h, BusConfig::plb("plb"));
    let pending = map_channel(
        &h,
        "ch0",
        0x1000_0000,
        WrapperConfig::default(),
        ("producer", "consumer"),
    );
    bus.map_slave(
        0x1000_0000..0x1000_0000 + ADAPTER_SIZE,
        pending.adapter.clone(),
        true,
    );
    let bus = Arc::new(bus);
    let master_port = pending.bind(&bus.master_port(MasterId(0)));
    let slave_port = pending.slave_port.clone();

    let log = TransactionLog::new();
    master_port.attach_recorder(log.clone());
    slave_port.attach_recorder(log.clone());

    sim.spawn_thread("producer", move |ctx| {
        for i in 0..10u32 {
            master_port
                .send(ctx, &(i, vec![i as u8; (i as usize + 1) * 10]))
                .unwrap();
        }
        let sum: u64 = master_port.request(ctx, &123u64).unwrap();
        assert_eq!(sum, 123 * 2);
    });
    sim.spawn_thread("consumer", move |ctx| {
        for i in 0..10u32 {
            let (n, data): (u32, Vec<u8>) = slave_port.recv(ctx).unwrap();
            assert_eq!(n, i);
            assert_eq!(data.len(), (i as usize + 1) * 10);
            assert!(data.iter().all(|b| *b == i as u8));
        }
        let q: u64 = slave_port.recv(ctx).unwrap();
        slave_port.reply(ctx, &(q * 2)).unwrap();
    });
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    // Mapping must generate real bus traffic.
    let stats = bus.stats();
    assert!(
        stats.transactions > 30,
        "got {} bus transactions",
        stats.transactions
    );
    // Roles must come out master/slave.
    assert_eq!(pending.slave_port.observed_role(), RoleObservation::Slave);
    assert_eq!(log.to_vec().len(), 23); // 10 send + 10 recv + 1 req + 1 recv + 1 reply
}

#[test]
fn mapped_channel_log_matches_unmapped_channel_log() {
    // The same PE behaviour over (a) an abstract SHIP channel and (b) a
    // bus-mapped channel must produce content-equivalent transaction logs —
    // the refinement-correctness claim of the design flow.
    let workload_master = |port: ShipPort| {
        move |ctx: &mut ThreadCtx| {
            for i in 0..5u32 {
                port.send(ctx, &vec![i as u8; 32]).unwrap();
            }
            let _: u32 = port.request(ctx, &7u32).unwrap();
        }
    };
    let workload_slave = |port: ShipPort| {
        move |ctx: &mut ThreadCtx| {
            for _ in 0..5 {
                let _: Vec<u8> = port.recv(ctx).unwrap();
            }
            let q: u32 = port.recv(ctx).unwrap();
            port.reply(ctx, &(q + 1)).unwrap();
        }
    };

    // (a) abstract channel.
    let log_a = {
        let sim = Simulation::new();
        let ch = ShipChannel::new(&sim.handle(), "ch", ShipConfig::default());
        let (m, s) = ch.ports("p", "c");
        let log = TransactionLog::new();
        m.attach_recorder(log.clone());
        s.attach_recorder(log.clone());
        sim.spawn_thread("p", workload_master(m));
        sim.spawn_thread("c", workload_slave(s));
        sim.run();
        log
    };

    // (b) mapped onto a PLB.
    let log_b = {
        let sim = Simulation::new();
        let h = sim.handle();
        let mut bus = CcatbBus::new(&h, BusConfig::plb("plb"));
        let pending = map_channel(&h, "ch", 0, WrapperConfig::default(), ("p", "c"));
        bus.map_slave(0..ADAPTER_SIZE, pending.adapter.clone(), true);
        let bus = Arc::new(bus);
        let m = pending.bind(&bus.master_port(MasterId(0)));
        let s = pending.slave_port.clone();
        let log = TransactionLog::new();
        m.attach_recorder(log.clone());
        s.attach_recorder(log.clone());
        sim.spawn_thread("p", workload_master(m));
        sim.spawn_thread("c", workload_slave(s));
        sim.run();
        log
    };

    assert!(log_a.content_equivalent(&log_b).is_ok());
}

#[test]
fn accessor_attaches_pe_via_pins_and_is_protocol_clean() {
    let sim = Simulation::new();
    let h = sim.handle();
    let clk = sim.clock("clk", SimDur::ns(10));
    let mut bus = CcatbBus::new(&h, BusConfig::plb("plb"));
    bus.map_slave(0..0x10000, Arc::new(Memory::new("ram", 0x10000)), true);
    let bus = Arc::new(bus);
    let acc = Accessor::attach(&h, "acc0", &clk, bus.clone(), MasterId(0), true);
    let port = acc.port().clone();
    sim.spawn_thread("pe", move |ctx| {
        for i in 0..8u64 {
            port.write(ctx, i * 32, vec![i as u8; 32]).unwrap();
            assert_eq!(port.read(ctx, i * 32, 32).unwrap(), vec![i as u8; 32]);
        }
        ctx.stop();
    });
    sim.run();
    assert!(acc.violations().unwrap().is_empty());
    assert_eq!(bus.stats().transactions, 16);
}

#[test]
fn accessor_path_is_slower_than_direct_bus_path() {
    let direct = {
        let sim = Simulation::new();
        let bus = plb_with_ram(&sim, ArbPolicy::FixedPriority);
        let port = bus.master_port(MasterId(0));
        sim.spawn_thread("pe", move |ctx| {
            for i in 0..8u64 {
                port.write(ctx, i * 32, vec![0; 32]).unwrap();
            }
        });
        sim.run().time
    };
    let via_pins = {
        let sim = Simulation::new();
        let h = sim.handle();
        let clk = sim.clock("clk", SimDur::ns(10));
        let bus = plb_with_ram(&sim, ArbPolicy::FixedPriority);
        let acc = Accessor::attach(&h, "acc0", &clk, bus, MasterId(0), false);
        let port = acc.port().clone();
        sim.spawn_thread("pe", move |ctx| {
            for i in 0..8u64 {
                port.write(ctx, i * 32, vec![0; 32]).unwrap();
            }
            ctx.stop();
        });
        sim.run().time
    };
    assert!(
        via_pins > direct,
        "pin path {via_pins} must be slower than direct {direct}"
    );
}

#[test]
fn default_bus_stats_track_min_and_max_from_first_sample() {
    // Regression: `BusStats::default()` used to derive `RunningStats`'s
    // Default, whose zeroed min/max swallowed the first real sample.
    let mut stats = BusStats::default();
    stats.latency_cycles.record(7.0);
    assert_eq!(stats.latency_cycles.min(), Some(7.0));
    assert_eq!(stats.latency_cycles.max(), Some(7.0));
    assert_eq!(stats.latency_cycles.count(), 1);

    // Merging a default accumulator into a populated one is a no-op.
    let empty = BusStats::default();
    let mut merged = stats.latency_cycles;
    merged.merge(&empty.latency_cycles);
    assert_eq!(merged.min(), Some(7.0));
    assert_eq!(merged.max(), Some(7.0));
    assert_eq!(merged.count(), 1);
}

#[test]
fn utilization_of_zero_elapsed_run_is_zero_not_nan() {
    // Regression guard: a sweep candidate whose run ends at t=0 (e.g. an
    // immediate error) must rank as 0.0 utilization, not NaN — NaN poisons
    // every comparison-based ranking downstream.
    let stats = BusStats {
        busy: SimDur::ns(40),
        ..BusStats::default()
    };
    let u = stats.utilization(SimDur::ZERO);
    assert_eq!(u, 0.0);
    assert!(!u.is_nan());
    assert_eq!(stats.throughput_bps(SimDur::ZERO), 0.0);

    // Sanity: the normal case still divides.
    assert!((stats.utilization(SimDur::ns(80)) - 0.5).abs() < 1e-12);
}
