//! A descriptor-driven DMA engine: the classic CoreConnect-ecosystem bus
//! master used to offload bulk copies from the CPU.
//!
//! The engine is a bus **slave** for its register file (descriptor, control
//! and status) and a bus **master** for the data movement itself. A
//! completion sideband can be wired to a CPU interrupt line, mirroring the
//! mailbox adapter's HW/SW signalling.

use std::fmt;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::event::Event;
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::signal::Signal;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::payload::{OcpCommand, OcpRequest, OcpResponse, TxTiming};
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

/// Register offsets of the DMA engine's slave window.
pub mod dma_regs {
    /// Source byte address (RW, 8 bytes).
    pub const SRC: u64 = 0x00;
    /// Destination byte address (RW, 8 bytes).
    pub const DST: u64 = 0x08;
    /// Transfer length in bytes (RW, 4 bytes).
    pub const LEN: u64 = 0x10;
    /// Control (WO, 4 bytes): 1 = start, 2 = clear done.
    pub const CTRL: u64 = 0x18;
    /// Status (RO, 4 bytes): bit 0 = busy, bit 1 = done, bit 2 = error.
    pub const STATUS: u64 = 0x20;
}

/// CTRL value starting a transfer.
pub const DMA_CTRL_START: u32 = 1;
/// CTRL value clearing the done/error flags.
pub const DMA_CTRL_CLEAR: u32 = 2;
/// STATUS bit: a transfer is in flight.
pub const DMA_STATUS_BUSY: u32 = 1 << 0;
/// STATUS bit: the last transfer completed.
pub const DMA_STATUS_DONE: u32 = 1 << 1;
/// STATUS bit: the last transfer faulted (bus error).
pub const DMA_STATUS_ERROR: u32 = 1 << 2;

#[derive(Debug, Default, Clone, Copy)]
struct Descriptor {
    src: u64,
    dst: u64,
    len: u32,
}

#[derive(Debug)]
struct DmaState {
    desc: Descriptor,
    busy: bool,
    done: bool,
    error: bool,
    /// Bytes moved over the engine's lifetime.
    total_bytes: u64,
    /// Completed transfers.
    transfers: u64,
}

/// The DMA engine. Map it as a bus slave and kick transfers through its
/// registers; data moves through the engine's own master port in bursts.
pub struct DmaEngine {
    name: String,
    state: Mutex<DmaState>,
    start: Event,
    done_ev: Event,
    sideband: Mutex<Option<Signal<bool>>>,
    burst_bytes: usize,
}

impl DmaEngine {
    /// Creates the engine and spawns its copy process. `port` is the bus
    /// master interface the engine moves data through; `burst_bytes` bounds
    /// each bus transaction.
    ///
    /// # Panics
    ///
    /// Panics if `burst_bytes` is zero.
    pub fn new(sim: &SimHandle, name: &str, port: OcpMasterPort, burst_bytes: usize) -> Arc<Self> {
        assert!(burst_bytes > 0, "dma burst size must be non-zero");
        let engine = Arc::new(DmaEngine {
            name: name.to_string(),
            state: Mutex::new(DmaState {
                desc: Descriptor::default(),
                busy: false,
                done: false,
                error: false,
                total_bytes: 0,
                transfers: 0,
            }),
            start: sim.event(&format!("{name}.start")),
            done_ev: sim.event(&format!("{name}.done")),
            sideband: Mutex::new(None),
            burst_bytes,
        });
        let me = Arc::clone(&engine);
        sim.spawn_thread(&format!("{name}.engine"), move |ctx| me.run(ctx, port));
        engine
    }

    /// Wires a completion sideband (high while `done` or `error` is set).
    pub fn attach_sideband(&self, irq: Signal<bool>) {
        *self.sideband.lock().unwrap_or_else(|e| e.into_inner()) = Some(irq);
    }

    /// Event fired on every completed (or faulted) transfer.
    pub fn done_event(&self) -> &Event {
        &self.done_ev
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.lock().total_bytes
    }

    /// Completed transfer count.
    pub fn transfers(&self) -> u64 {
        self.lock().transfers
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DmaState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn update_sideband(&self) {
        let level = {
            let g = self.lock();
            g.done || g.error
        };
        if let Some(sig) = self
            .sideband
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            sig.write(level);
        }
    }

    /// The engine's copy loop.
    fn run(&self, ctx: &mut ThreadCtx, port: OcpMasterPort) {
        loop {
            // Wait for a start doorbell.
            let desc = loop {
                {
                    let g = self.lock();
                    if g.busy {
                        break g.desc;
                    }
                }
                ctx.wait(&self.start);
            };

            // Move the data in bursts: read from src, write to dst.
            let mut moved = 0u64;
            let mut failed = false;
            while moved < u64::from(desc.len) {
                let n = ((u64::from(desc.len) - moved) as usize).min(self.burst_bytes);
                let chunk = match port.read(ctx, desc.src + moved, n) {
                    Ok(c) => c,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                };
                if port.write(ctx, desc.dst + moved, chunk).is_err() {
                    failed = true;
                    break;
                }
                moved += n as u64;
            }

            {
                let mut g = self.lock();
                g.busy = false;
                g.done = !failed;
                g.error = failed;
                if !failed {
                    g.total_bytes += moved;
                    g.transfers += 1;
                }
            }
            self.done_ev.notify_delta();
            self.update_sideband();
        }
    }
}

impl OcpTarget for DmaEngine {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        _master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let timing = TxTiming {
            start: ctx.now(),
            end: ctx.now(),
            total_cycles: 0,
            wait_cycles: 0,
        };
        match req.cmd {
            OcpCommand::Read { bytes } => {
                let g = self.lock();
                let value: u64 = match req.addr {
                    dma_regs::SRC => g.desc.src,
                    dma_regs::DST => g.desc.dst,
                    dma_regs::LEN => u64::from(g.desc.len),
                    dma_regs::STATUS => {
                        let mut s = 0u32;
                        if g.busy {
                            s |= DMA_STATUS_BUSY;
                        }
                        if g.done {
                            s |= DMA_STATUS_DONE;
                        }
                        if g.error {
                            s |= DMA_STATUS_ERROR;
                        }
                        u64::from(s)
                    }
                    _ => return Ok(OcpResponse::error(timing)),
                };
                let mut data = value.to_le_bytes().to_vec();
                data.truncate(bytes.clamp(1, 8));
                data.resize(bytes, 0);
                Ok(OcpResponse::read_ok(data, timing))
            }
            OcpCommand::Write { data } => {
                let le_u64 = |d: &[u8]| {
                    let mut b = [0u8; 8];
                    let n = d.len().min(8);
                    b[..n].copy_from_slice(&d[..n]);
                    u64::from_le_bytes(b)
                };
                let mut g = self.lock();
                match req.addr {
                    dma_regs::SRC => g.desc.src = le_u64(&data),
                    dma_regs::DST => g.desc.dst = le_u64(&data),
                    dma_regs::LEN => g.desc.len = le_u64(&data) as u32,
                    dma_regs::CTRL => match le_u64(&data) as u32 {
                        DMA_CTRL_START => {
                            if g.busy {
                                return Ok(OcpResponse::error(timing));
                            }
                            g.busy = true;
                            g.done = false;
                            g.error = false;
                            drop(g);
                            self.start.notify_delta();
                            self.update_sideband();
                        }
                        DMA_CTRL_CLEAR => {
                            g.done = false;
                            g.error = false;
                            drop(g);
                            self.update_sideband();
                        }
                        _ => return Ok(OcpResponse::error(timing)),
                    },
                    _ => return Ok(OcpResponse::error(timing)),
                }
                Ok(OcpResponse::write_ok(timing))
            }
        }
    }

    fn target_name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for DmaEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.lock();
        f.debug_struct("DmaEngine")
            .field("name", &self.name)
            .field("busy", &g.busy)
            .field("transfers", &g.transfers)
            .finish()
    }
}
