//! A 2D-mesh network-on-chip CAM with deterministic XY routing.
//!
//! [`MeshNoc`] models a `cols × rows` mesh of routers at CCATB granularity.
//! A transaction is flitized (one head flit plus payload flits of
//! [`NocConfig::flit_bytes`] each), routed **X-first then Y** from the
//! master's node to the slave's node, and charged per hop: every directed
//! link is an arbitration gate, and forwarding a packet over a link costs
//! `router_cycles + flits × cycles_per_flit` link-clock cycles
//! (store-and-forward). The ejection port at the destination node is a gate
//! of its own and is held across the slave access, which is exactly where
//! hotspot traffic piles up.
//!
//! **Deadlock freedom:** a packet releases the gate for hop *i* before
//! requesting the gate for hop *i + 1*, so a thread inside the NoC holds at
//! most one link gate at any time — the hold-and-wait condition for a
//! routing deadlock cannot arise, for any mesh size or traffic pattern.
//! (XY routing would also be cycle-free under wormhole rules; the
//! store-and-forward discipline makes the argument independent of the
//! turn model.)
//!
//! Placement is deterministic: master `m` injects at node `m % nodes`, and
//! [`map_slave`](MeshNoc::map_slave) ejects slave `k` at node `k % nodes`
//! (override with [`map_slave_at`](MeshNoc::map_slave_at)).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::stats::RunningStats;
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_kernel::txn::{TxnLevel, TxnSpan};
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::payload::{OcpCommand, OcpRequest, OcpResponse, TxTiming};
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

use crate::arb::ArbPolicy;
use crate::bus::{ArbGate, BusStats};

/// Static parameters of a 2D-mesh NoC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// NoC name (reports, trace).
    pub name: String,
    /// Mesh width in nodes.
    pub cols: usize,
    /// Mesh height in nodes.
    pub rows: usize,
    /// Link clock period.
    pub clock: SimDur,
    /// Flit payload width in bytes.
    pub flit_bytes: usize,
    /// Link cycles per flit.
    pub cycles_per_flit: u64,
    /// Per-hop router pipeline latency in cycles (route compute + switch).
    pub router_cycles: u64,
    /// Per-link arbitration policy.
    pub arb: ArbPolicy,
}

impl NocConfig {
    /// A `cols × rows` mesh with 200 MHz links, 4-byte flits, single-cycle
    /// link traversal, one router pipeline cycle and round-robin link
    /// arbitration.
    pub fn mesh(name: &str, cols: usize, rows: usize) -> Self {
        NocConfig {
            name: name.to_string(),
            cols,
            rows,
            clock: SimDur::ns(5),
            flit_bytes: 4,
            cycles_per_flit: 1,
            router_cycles: 1,
            arb: ArbPolicy::RoundRobin,
        }
    }

    /// Replaces the per-link arbitration policy.
    pub fn with_arb(mut self, arb: ArbPolicy) -> Self {
        self.arb = arb;
        self
    }

    /// Replaces the link clock period.
    pub fn with_clock(mut self, clock: SimDur) -> Self {
        self.clock = clock;
        self
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }
}

/// NoC-specific accounting on top of the common [`BusStats`].
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Total flits moved over links (head + payload, request and response).
    pub flits: u64,
    /// Per-transaction hop count on the request path (links traversed plus
    /// the ejection port).
    pub hops: RunningStats,
}

struct NocOutput {
    range: Range<u64>,
    target: Arc<dyn OcpTarget>,
    relative: bool,
    node: usize,
}

/// A 2D-mesh NoC CAM: XY routing, per-link arbitration, store-and-forward
/// flit accounting.
///
/// ```
/// use std::sync::Arc;
/// use shiptlm_kernel::prelude::*;
/// use shiptlm_ocp::prelude::*;
/// use shiptlm_cam::noc::{MeshNoc, NocConfig};
///
/// let sim = Simulation::new();
/// let mut noc = MeshNoc::new(&sim.handle(), NocConfig::mesh("mesh0", 4, 4));
/// noc.map_slave(0x0000..0x1000, Arc::new(Memory::new("ram", 0x1000)), true);
/// let noc = Arc::new(noc);
/// let port = noc.master_port(MasterId(5));
/// sim.spawn_thread("pe5", move |ctx| {
///     port.write(ctx, 0x10, vec![1, 2, 3, 4]).unwrap();
/// });
/// sim.run();
/// assert_eq!(noc.stats().transactions, 1);
/// ```
pub struct MeshNoc {
    cfg: NocConfig,
    outputs: Vec<NocOutput>,
    /// Directed link gates: key `(a, b)` is the link from node `a` to its
    /// mesh neighbour `b`; key `(n, n)` is node `n`'s ejection port.
    links: Vec<ArbGate>,
    link_of: BTreeMap<(usize, usize), usize>,
    stats: Mutex<BusStats>,
    noc: Mutex<NocStats>,
    /// Interned NoC name for the metrics registry.
    label: Arc<str>,
}

impl MeshNoc {
    /// Creates the mesh and all its directed link gates; attach slaves with
    /// [`map_slave`](Self::map_slave) before sharing.
    pub fn new(sim: &SimHandle, cfg: NocConfig) -> Self {
        assert!(cfg.cols > 0 && cfg.rows > 0, "mesh dimensions must be non-zero");
        assert!(cfg.flit_bytes > 0, "flit width must be non-zero");
        assert!(!cfg.clock.is_zero(), "link clock must be non-zero");
        let mut links = Vec::new();
        let mut link_of = BTreeMap::new();
        let mut add = |from: usize, to: usize, links: &mut Vec<ArbGate>| {
            let name = if from == to {
                format!("{}.n{from}.eject", cfg.name)
            } else {
                format!("{}.l{from}-{to}", cfg.name)
            };
            link_of.insert((from, to), links.len());
            links.push(ArbGate::new(sim, &name, cfg.arb.clone()));
        };
        for y in 0..cfg.rows {
            for x in 0..cfg.cols {
                let n = y * cfg.cols + x;
                add(n, n, &mut links);
                if x > 0 {
                    add(n, n - 1, &mut links);
                }
                if x + 1 < cfg.cols {
                    add(n, n + 1, &mut links);
                }
                if y > 0 {
                    add(n, n - cfg.cols, &mut links);
                }
                if y + 1 < cfg.rows {
                    add(n, n + cfg.cols, &mut links);
                }
            }
        }
        MeshNoc {
            outputs: Vec::new(),
            links,
            link_of,
            stats: Mutex::new(BusStats::default()),
            noc: Mutex::new(NocStats::default()),
            label: Arc::from(cfg.name.as_str()),
            cfg,
        }
    }

    /// Maps a slave at the next node in round-robin placement
    /// (`index % nodes`).
    ///
    /// # Panics
    ///
    /// Panics on overlapping ranges.
    pub fn map_slave(&mut self, range: Range<u64>, target: Arc<dyn OcpTarget>, relative: bool) {
        let node = self.outputs.len() % self.cfg.nodes();
        self.map_slave_at(range, target, relative, node);
    }

    /// Maps a slave at an explicit mesh node.
    ///
    /// # Panics
    ///
    /// Panics on overlapping ranges or an out-of-mesh node.
    pub fn map_slave_at(
        &mut self,
        range: Range<u64>,
        target: Arc<dyn OcpTarget>,
        relative: bool,
        node: usize,
    ) {
        assert!(range.start < range.end, "empty address range");
        assert!(node < self.cfg.nodes(), "node {node} outside the mesh");
        for o in &self.outputs {
            assert!(
                range.end <= o.range.start || range.start >= o.range.end,
                "NoC range overlap"
            );
        }
        self.outputs.push(NocOutput {
            range,
            target,
            relative,
            node,
        });
    }

    /// The NoC configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// A master port bound to this NoC; master `m` injects at node
    /// `m % nodes`.
    pub fn master_port(self: &Arc<Self>, id: MasterId) -> OcpMasterPort {
        OcpMasterPort::bind(id, Arc::<MeshNoc>::clone(self))
    }

    /// A snapshot of the common interconnect statistics.
    pub fn stats(&self) -> BusStats {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// A snapshot of the NoC-specific statistics (flits, hop counts).
    pub fn noc_stats(&self) -> NocStats {
        self.noc.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The XY route from `src` to `dst` as an inclusive node sequence:
    /// X-first, then Y.
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let cols = self.cfg.cols;
        let (mut x, mut y) = (src % cols, src / cols);
        let (dx, dy) = (dst % cols, dst / cols);
        let mut path = vec![src];
        while x != dx {
            x = if x < dx { x + 1 } else { x - 1 };
            path.push(y * cols + x);
        }
        while y != dy {
            y = if y < dy { y + 1 } else { y - 1 };
            path.push(y * cols + x);
        }
        path
    }

    fn gate(&self, from: usize, to: usize) -> &ArbGate {
        &self.links[self.link_of[&(from, to)]]
    }

    fn cycles(&self, n: u64) -> SimDur {
        self.cfg.clock.saturating_mul(n)
    }

    /// Forwards `flits` flits over the directed link `from → to`, charging
    /// arbitration + store-and-forward latency. Returns
    /// `(granted_at, held_for)`.
    fn hop(
        &self,
        ctx: &mut ThreadCtx,
        master: MasterId,
        from: usize,
        to: usize,
        flits: u64,
    ) -> (SimTime, SimDur) {
        let gate = self.gate(from, to);
        let (granted_at, _b2b, _depth) = gate.acquire(ctx, master);
        ctx.wait_for(self.cycles(
            self.cfg.router_cycles + flits * self.cfg.cycles_per_flit,
        ));
        let now = ctx.now();
        gate.release(now);
        (granted_at, now.since(granted_at))
    }
}

impl OcpTarget for MeshNoc {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        master: MasterId,
        mut req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let t_req = ctx.now();
        let is_read = matches!(req.cmd, OcpCommand::Read { .. });
        let len = req.cmd.len();
        let out = self
            .outputs
            .iter()
            .find(|o| o.range.contains(&req.addr))
            .ok_or(OcpError::AddressDecode { addr: req.addr })?;
        if req.addr + len as u64 > out.range.end {
            return Err(OcpError::BadRequest(format!(
                "burst at {:#x} crosses output boundary {:#x}",
                req.addr, out.range.end
            )));
        }
        if out.relative {
            req.addr -= out.range.start;
        }

        let nodes = self.cfg.nodes();
        let src = master.0 % nodes;
        let dst = out.node;
        let payload_flits = len.div_ceil(self.cfg.flit_bytes) as u64;
        // Writes carry their payload out; reads carry it back. The reverse
        // direction is a single head/ack flit.
        let req_flits = 1 + if is_read { 0 } else { payload_flits };
        let resp_flits = 1 + if is_read { payload_flits } else { 0 };

        let mut first_grant: Option<SimTime> = None;
        let mut busy = SimDur::ZERO;
        let mut hops = 0u64;
        let path = self.route(src, dst);
        for w in path.windows(2) {
            let (granted, held) = self.hop(ctx, master, w[0], w[1], req_flits);
            first_grant.get_or_insert(granted);
            busy += held;
            hops += 1;
        }

        // Ejection into the destination's local port, held across the slave
        // access: competing masters aimed at a hot node serialize here.
        let eject = self.gate(dst, dst);
        let (granted, _b2b, queue_depth) = eject.acquire(ctx, master);
        first_grant.get_or_insert(granted);
        hops += 1;
        ctx.wait_for(self.cycles(
            self.cfg.router_cycles + req_flits * self.cfg.cycles_per_flit,
        ));
        let result = out.target.transact(ctx, master, req);
        let now = ctx.now();
        busy += now.since(granted);
        eject.release(now);

        // Response path back to the source (only a completed access
        // generates response flits).
        if result.is_ok() {
            for w in self.route(dst, src).windows(2) {
                let (_granted, held) = self.hop(ctx, master, w[0], w[1], resp_flits);
                busy += held;
            }
        }
        let end = ctx.now();
        let granted_at = first_grant.unwrap_or(t_req);

        let wait_cycles = granted_at.since(t_req) / self.cfg.clock;
        let total_cycles = end.since(t_req) / self.cfg.clock;
        {
            let mut s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            match &result {
                Ok(_) => {
                    s.transactions += 1;
                    if is_read {
                        s.reads += 1;
                    }
                    s.bytes += len as u64;
                    s.latency_cycles.record(total_cycles as f64);
                    s.wait_cycles.record(wait_cycles);
                    s.busy += busy;
                    let m = s.per_master.entry(master.0).or_default();
                    m.transactions += 1;
                    m.bytes += len as u64;
                    m.wait_cycles.record(wait_cycles as f64);
                }
                Err(_) => s.errors += 1,
            }
        }
        {
            let mut n = self.noc.lock().unwrap_or_else(|e| e.into_inner());
            n.flits += req_flits * hops
                + if result.is_ok() {
                    resp_flits * (hops - 1)
                } else {
                    0
                };
            n.hops.record(hops as f64);
        }

        if ctx.metrics_enabled() {
            let m = ctx.metrics();
            m.counter_add("bus.txns", &self.label, 1, end);
            m.counter_add("bus.bytes", &self.label, len as u64, end);
            m.span_record("bus.busy", &self.label, granted_at, end);
            m.gauge_set("bus.queue_depth", &self.label, queue_depth as u64, t_req);
            m.observe(
                "bus.grant_wait_ns",
                &self.label,
                granted_at.since(t_req).as_ns(),
            );
            m.counter_add("noc.flits", &self.label, req_flits + resp_flits, end);
        }

        if ctx.txn_enabled() {
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Bus,
                op: "grant",
                resource: &self.label,
                start: t_req,
                end: granted_at,
                bytes: 0,
                ok: true,
            });
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Bus,
                op: if is_read { "read" } else { "write" },
                resource: &self.label,
                start: granted_at,
                end,
                bytes: len,
                ok: result.is_ok(),
            });
        }

        result.map(|mut resp| {
            resp.timing = TxTiming {
                start: t_req,
                end,
                total_cycles,
                wait_cycles,
            };
            resp
        })
    }

    fn target_name(&self) -> String {
        self.cfg.name.clone()
    }
}

impl fmt::Debug for MeshNoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeshNoc")
            .field("name", &self.cfg.name)
            .field("mesh", &format_args!("{}x{}", self.cfg.cols, self.cfg.rows))
            .field("outputs", &self.outputs.len())
            .field("links", &self.links.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shiptlm_kernel::sim::Simulation;

    fn mesh(cols: usize, rows: usize) -> MeshNoc {
        let sim = Simulation::new();
        MeshNoc::new(&sim.handle(), NocConfig::mesh("m", cols, rows))
    }

    #[test]
    fn xy_route_goes_x_first_then_y() {
        let m = mesh(4, 4);
        // Node layout: n = y*4 + x. From (1,0)=1 to (3,2)=11.
        assert_eq!(m.route(1, 11), vec![1, 2, 3, 7, 11]);
        // Westward + northward.
        assert_eq!(m.route(11, 1), vec![11, 10, 9, 5, 1]);
        // Same node: no link hops.
        assert_eq!(m.route(6, 6), vec![6]);
        // Same column: Y only.
        assert_eq!(m.route(2, 14), vec![2, 6, 10, 14]);
    }

    #[test]
    fn route_length_is_manhattan_distance() {
        let m = mesh(5, 3);
        for src in 0..15usize {
            for dst in 0..15usize {
                let (sx, sy) = (src % 5, src / 5);
                let (dx, dy) = (dst % 5, dst / 5);
                let manhattan = sx.abs_diff(dx) + sy.abs_diff(dy);
                assert_eq!(m.route(src, dst).len(), manhattan + 1, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn mesh_builds_all_directed_links() {
        // 4x4: 2*(4*3)*2 = 48 directed mesh links + 16 ejection ports.
        let m = mesh(4, 4);
        assert_eq!(m.links.len(), 48 + 16);
        // 16x16 (the 256-PE configuration) elaborates fine.
        let m = mesh(16, 16);
        assert_eq!(m.links.len(), 2 * (16 * 15) * 2 + 256);
    }
}
