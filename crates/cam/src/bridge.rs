//! A bus-to-bus bridge (e.g. CoreConnect PLB↔OPB).

use std::fmt;
use std::sync::Arc;

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::time::SimDur;
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::payload::{OcpRequest, OcpResponse};
use shiptlm_ocp::tl::{MasterId, OcpTarget};

/// Forwards transactions from one bus onto another, adding a fixed crossing
/// latency. Map the bridge as a slave range on the upstream bus (usually
/// with `relative = false`, so downstream addresses pass through unchanged).
pub struct Bridge {
    name: String,
    /// Latency added per crossing.
    latency: SimDur,
    /// The downstream interconnect.
    downstream: Arc<dyn OcpTarget>,
    /// Master identity used on the downstream bus.
    downstream_id: MasterId,
}

impl Bridge {
    /// Creates a bridge onto `downstream`, appearing there as
    /// `downstream_id`.
    pub fn new(
        name: &str,
        latency: SimDur,
        downstream: Arc<dyn OcpTarget>,
        downstream_id: MasterId,
    ) -> Self {
        Bridge {
            name: name.to_string(),
            latency,
            downstream,
            downstream_id,
        }
    }
}

impl OcpTarget for Bridge {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        _master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        if !self.latency.is_zero() {
            ctx.wait_for(self.latency);
        }
        self.downstream.transact(ctx, self.downstream_id, req)
    }

    fn target_name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for Bridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bridge")
            .field("name", &self.name)
            .field("latency", &self.latency)
            .finish()
    }
}
