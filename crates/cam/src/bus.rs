//! The generic CCATB bus model and its CoreConnect-style presets.
//!
//! A [`CcatbBus`] is a *communication architecture model* in the paper's
//! sense: "CAMs are CCATB models with a cycle-accurate notion of time when
//! viewed at transaction boundaries. Internally, only timed method calls are
//! used which reflect the simulated bus or network protocol." No pin wiggling
//! happens here — arbitration wait, address phase and data beats are computed
//! as cycle counts and charged as blocking waits, so the boundary timing is
//! cycle-accurate while simulation cost stays low.

use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::event::Event;
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::stats::{Histogram, RunningStats};
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_kernel::txn::{TxnLevel, TxnSpan};
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::memory::Router;
use shiptlm_ocp::payload::{OcpCommand, OcpRequest, OcpResponse, TxTiming};
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

use crate::arb::{ArbPolicy, Ticket};

/// Static parameters of a CCATB bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusConfig {
    /// Bus name (reports, trace).
    pub name: String,
    /// Bus clock period.
    pub clock: SimDur,
    /// Data path width in bytes.
    pub width_bytes: usize,
    /// Address-phase cycles per transaction.
    pub addr_cycles: u64,
    /// Cycles per data beat.
    pub cycles_per_beat: u64,
    /// Minimum arbitration latency in cycles.
    pub arb_cycles: u64,
    /// Overlap the address phase with the previous transaction's data phase
    /// on back-to-back grants (PLB-style pipelining).
    pub pipelined: bool,
    /// Arbitration policy.
    pub arb: ArbPolicy,
}

impl BusConfig {
    /// A CoreConnect PLB-like high-performance bus: 64-bit, 100 MHz,
    /// pipelined address/data, single-cycle beats, static priority.
    pub fn plb(name: &str) -> Self {
        BusConfig {
            name: name.to_string(),
            clock: SimDur::ns(10),
            width_bytes: 8,
            addr_cycles: 1,
            cycles_per_beat: 1,
            arb_cycles: 1,
            pipelined: true,
            arb: ArbPolicy::FixedPriority,
        }
    }

    /// A CoreConnect OPB-like peripheral bus: 32-bit, 50 MHz, no pipelining,
    /// two cycles per beat.
    pub fn opb(name: &str) -> Self {
        BusConfig {
            name: name.to_string(),
            clock: SimDur::ns(20),
            width_bytes: 4,
            addr_cycles: 1,
            cycles_per_beat: 2,
            arb_cycles: 1,
            pipelined: false,
            arb: ArbPolicy::FixedPriority,
        }
    }

    /// Replaces the arbitration policy.
    pub fn with_arb(mut self, arb: ArbPolicy) -> Self {
        self.arb = arb;
        self
    }

    /// Replaces the clock period.
    pub fn with_clock(mut self, clock: SimDur) -> Self {
        self.clock = clock;
        self
    }
}

/// Per-master accounting.
#[derive(Debug, Clone, Default)]
pub struct MasterStats {
    /// Completed transactions.
    pub transactions: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Arbitration wait in cycles.
    pub wait_cycles: RunningStats,
}

/// Aggregated bus statistics.
#[derive(Debug, Clone, Default)]
pub struct BusStats {
    /// Completed transactions.
    pub transactions: u64,
    /// Reads among them.
    pub reads: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Transport errors (decode failures).
    pub errors: u64,
    /// End-to-end transaction latency in cycles.
    pub latency_cycles: RunningStats,
    /// Arbitration wait distribution in cycles.
    pub wait_cycles: Histogram,
    /// Accumulated bus-occupied time.
    pub busy: SimDur,
    /// Per-master breakdown.
    pub per_master: std::collections::BTreeMap<usize, MasterStats>,
}

impl BusStats {
    /// Fraction of `elapsed` the interconnect was occupied. For a crossbar
    /// this aggregates all output ports, so values above 1.0 indicate
    /// parallel transfers in flight.
    pub fn utilization(&self, elapsed: SimDur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_ps() as f64 / elapsed.as_ps() as f64
        }
    }

    /// Payload throughput in bytes per second of simulated time.
    pub fn throughput_bps(&self, elapsed: SimDur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / (elapsed.as_ps() as f64 * 1e-12)
        }
    }
}

/// Policy-aware mutual-exclusion gate used by buses and crossbar outputs.
pub(crate) struct ArbGate {
    state: Mutex<GateState>,
    granted: Event,
    policy: ArbPolicy,
}

struct GateState {
    owner: Option<MasterId>,
    pending: Vec<Ticket>,
    seq: u64,
    last_granted: Option<MasterId>,
    last_release: SimTime,
}

impl ArbGate {
    pub(crate) fn new(sim: &SimHandle, name: &str, policy: ArbPolicy) -> Self {
        let granted = sim.event(&format!("{name}.grant"));
        ArbGate {
            state: Mutex::new(GateState {
                owner: None,
                pending: Vec::new(),
                seq: 0,
                last_granted: None,
                // MAX = "never released": the first grant is not
                // back-to-back.
                last_release: SimTime::MAX,
            }),
            granted,
            policy,
        }
    }

    /// Blocks until `master` is granted; returns the grant time, whether
    /// the grant is back-to-back with the previous release, and the grant
    /// queue depth observed at enqueue time (including this request).
    pub(crate) fn acquire(&self, ctx: &mut ThreadCtx, master: MasterId) -> (SimTime, bool, usize) {
        let (ticket, depth) = {
            let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
            g.seq += 1;
            let t = Ticket { master, seq: g.seq };
            g.pending.push(t);
            (t, g.pending.len())
        };
        loop {
            {
                let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if g.owner.is_none() {
                    if let Some(w) = self.policy.pick(&g.pending, g.last_granted, ctx.now()) {
                        if w == ticket {
                            g.owner = Some(master);
                            g.last_granted = Some(master);
                            g.pending.retain(|t| *t != ticket);
                            let back_to_back = g.last_release == ctx.now();
                            return (ctx.now(), back_to_back, depth);
                        }
                    }
                }
            }
            // TDMA waiters additionally wake at the next slot boundary, since
            // a grant opportunity can arise without any release happening.
            match self.policy.recheck_delay(ctx.now()) {
                Some(d) => {
                    let _ = ctx.wait_any_for(&[&self.granted], d);
                }
                None => ctx.wait(&self.granted),
            }
        }
    }

    /// Releases the gate and wakes waiters.
    pub(crate) fn release(&self, now: SimTime) {
        {
            let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
            g.owner = None;
            g.last_release = now;
        }
        self.granted.notify_delta();
    }
}

impl fmt::Debug for ArbGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArbGate")
            .field("policy", &self.policy)
            .finish()
    }
}

/// A shared-bus communication architecture model.
///
/// ```
/// use std::sync::Arc;
/// use shiptlm_kernel::prelude::*;
/// use shiptlm_ocp::prelude::*;
/// use shiptlm_cam::bus::{BusConfig, CcatbBus};
///
/// let sim = Simulation::new();
/// let mut bus = CcatbBus::new(&sim.handle(), BusConfig::plb("plb0"));
/// bus.map_slave(0x0000..0x1000, Arc::new(Memory::new("ram", 0x1000)), true);
/// let bus = Arc::new(bus);
/// let port = OcpMasterPort::bind(MasterId(0), bus.clone());
/// sim.spawn_thread("cpu", move |ctx| {
///     port.write(ctx, 0x10, vec![1, 2, 3, 4]).unwrap();
/// });
/// sim.run();
/// assert_eq!(bus.stats().transactions, 1);
/// ```
pub struct CcatbBus {
    cfg: BusConfig,
    router: Router,
    gate: ArbGate,
    stats: Mutex<BusStats>,
    /// Interned bus name for the transaction recorder.
    label: Arc<str>,
}

impl CcatbBus {
    /// Creates a bus; map slaves with [`map_slave`](Self::map_slave) before
    /// sharing it.
    pub fn new(sim: &SimHandle, cfg: BusConfig) -> Self {
        assert!(cfg.width_bytes > 0, "bus width must be non-zero");
        assert!(!cfg.clock.is_zero(), "bus clock must be non-zero");
        let gate = ArbGate::new(sim, &cfg.name, cfg.arb.clone());
        CcatbBus {
            router: Router::new(&format!("{}.decoder", cfg.name)),
            gate,
            stats: Mutex::new(BusStats::default()),
            label: Arc::from(cfg.name.as_str()),
            cfg,
        }
    }

    /// Maps a slave into the bus address space.
    ///
    /// # Panics
    ///
    /// Panics on overlapping ranges.
    pub fn map_slave(&mut self, range: Range<u64>, target: Arc<dyn OcpTarget>, relative: bool) {
        self.router.map(range, target, relative);
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// A master port bound to this bus.
    pub fn master_port(self: &Arc<Self>, id: MasterId) -> OcpMasterPort {
        OcpMasterPort::bind(id, Arc::<CcatbBus>::clone(self))
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Resets the statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&self) {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner()) = BusStats::default();
    }

    fn cycles(&self, n: u64) -> SimDur {
        self.cfg.clock.saturating_mul(n)
    }
}

impl OcpTarget for CcatbBus {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let t_req = ctx.now();
        let is_read = matches!(req.cmd, OcpCommand::Read { .. });
        let len = req.cmd.len();

        // --- Arbitration ----------------------------------------------------
        let (granted_at, back_to_back, queue_depth) = self.gate.acquire(ctx, master);
        let result = (|| {
            ctx.wait_for(self.cycles(self.cfg.arb_cycles));

            // --- Address phase (overlapped when pipelined, back-to-back) ----
            if !(self.cfg.pipelined && back_to_back) {
                ctx.wait_for(self.cycles(self.cfg.addr_cycles));
            }

            // --- Data phase + slave access -----------------------------------
            let beats = req.beats(self.cfg.width_bytes);
            let data_time = self.cycles(beats * self.cfg.cycles_per_beat);
            let t_data = ctx.now();
            let resp = self.router.transact(ctx, master, req)?;
            let slave_time = ctx.now().since(t_data);
            if slave_time < data_time {
                ctx.wait_for(data_time - slave_time);
            }
            Ok(resp)
        })();
        let end = ctx.now();
        self.gate.release(end);

        // --- Accounting -----------------------------------------------------
        let wait_cycles = granted_at.since(t_req) / self.cfg.clock;
        let total_cycles = end.since(t_req) / self.cfg.clock;
        {
            let mut s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            match &result {
                Ok(_) => {
                    s.transactions += 1;
                    if is_read {
                        s.reads += 1;
                    }
                    s.bytes += len as u64;
                    s.latency_cycles.record(total_cycles as f64);
                    s.wait_cycles.record(wait_cycles);
                    s.busy += end.since(granted_at);
                    let m = s.per_master.entry(master.0).or_default();
                    m.transactions += 1;
                    m.bytes += len as u64;
                    m.wait_cycles.record(wait_cycles as f64);
                }
                Err(_) => s.errors += 1,
            }
        }

        if ctx.metrics_enabled() {
            let m = ctx.metrics();
            m.counter_add("bus.txns", &self.label, 1, end);
            m.counter_add("bus.bytes", &self.label, len as u64, end);
            // Busy = granted occupancy; per-window busy/window is the
            // utilization-over-time series the sweep ranks on.
            m.span_record("bus.busy", &self.label, granted_at, end);
            m.gauge_set("bus.queue_depth", &self.label, queue_depth as u64, t_req);
            m.observe(
                "bus.grant_wait_ns",
                &self.label,
                granted_at.since(t_req).as_ns(),
            );
        }

        if ctx.txn_enabled() {
            // Two spans per transaction: arbitration wait until grant, then
            // the occupied transfer (address + data + slave access).
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Bus,
                op: "grant",
                resource: &self.label,
                start: t_req,
                end: granted_at,
                bytes: 0,
                ok: true,
            });
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Bus,
                op: if is_read { "read" } else { "write" },
                resource: &self.label,
                start: granted_at,
                end,
                bytes: len,
                ok: result.is_ok(),
            });
        }

        result.map(|mut resp| {
            resp.timing = TxTiming {
                start: t_req,
                end,
                total_cycles,
                wait_cycles,
            };
            resp
        })
    }

    fn target_name(&self) -> String {
        self.cfg.name.clone()
    }
}

impl fmt::Debug for CcatbBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CcatbBus")
            .field("name", &self.cfg.name)
            .field("arb", &self.cfg.arb)
            .field("transactions", &self.stats().transactions)
            .finish()
    }
}
