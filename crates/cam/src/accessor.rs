//! Communication architecture accessors (paper §3).
//!
//! "Communication architecture accessors … are intended for the automatic
//! generation of a synthesizable prototype of the hardware part. Their use
//! implies that the designer has refined all PEs to the RTL level and has
//! implemented a pin-level OCP interface. Then, to connect a PE to a selected
//! target communication architecture, the appropriate accessor is attached
//! to the PE. Since accessors are implemented as RTL, they are fully
//! synthesizable."
//!
//! An [`Accessor`] bundles a pin-level OCP interface (master FSM on the PE
//! side, slave FSM on the accessor side) with a connection to a target bus:
//! every transaction crosses real pins cycle by cycle before entering the
//! communication architecture.

use std::fmt;
use std::sync::Arc;

use shiptlm_kernel::clock::Clock;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_ocp::pin::{OcpMonitor, OcpPins, PinOcpMaster, PinOcpSlave, ViolationLog};
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

/// A pin-level attachment of one PE to a communication architecture.
pub struct Accessor {
    port: OcpMasterPort,
    pins: OcpPins,
    monitor: Option<ViolationLog>,
    name: String,
}

impl Accessor {
    /// Attaches a PE to `bus` through a pin-level OCP interface clocked by
    /// `clk`. When `checked` is true a protocol monitor watches the pins.
    pub fn attach(
        sim: &SimHandle,
        name: &str,
        clk: &Clock,
        bus: Arc<dyn OcpTarget>,
        master_id: MasterId,
        checked: bool,
    ) -> Self {
        let pins = OcpPins::new(sim, name);
        let master = PinOcpMaster::new(sim, &format!("{name}.m"), pins.clone(), clk);
        PinOcpSlave::spawn(
            sim,
            &format!("{name}.s"),
            pins.clone(),
            clk,
            bus,
            0,
            master_id,
        );
        let monitor =
            checked.then(|| OcpMonitor::spawn(sim, &format!("{name}.mon"), pins.clone(), clk));
        Accessor {
            port: OcpMasterPort::bind(master_id, master),
            pins,
            monitor,
            name: name.to_string(),
        }
    }

    /// The PE-facing port: identical API to every other abstraction level.
    pub fn port(&self) -> &OcpMasterPort {
        &self.port
    }

    /// The pin bundle (e.g. for tracing).
    pub fn pins(&self) -> &OcpPins {
        &self.pins
    }

    /// The protocol monitor's violation log, when checking is enabled.
    pub fn violations(&self) -> Option<&ViolationLog> {
        self.monitor.as_ref()
    }
}

impl fmt::Debug for Accessor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Accessor")
            .field("name", &self.name)
            .field("checked", &self.monitor.is_some())
            .finish()
    }
}
