//! A crossbar communication architecture model: one arbitration gate per
//! output port, so transfers to different slaves proceed in parallel.

use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::payload::{OcpRequest, OcpResponse, TxTiming};
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

use crate::arb::ArbPolicy;
use crate::bus::{ArbGate, BusStats};

/// Crossbar parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarConfig {
    /// Name for reports.
    pub name: String,
    /// Switch clock period.
    pub clock: SimDur,
    /// Data path width in bytes.
    pub width_bytes: usize,
    /// Cycles per data beat.
    pub cycles_per_beat: u64,
    /// Route-setup cycles per transaction.
    pub setup_cycles: u64,
    /// Per-output arbitration policy.
    pub arb: ArbPolicy,
}

impl CrossbarConfig {
    /// A 64-bit, 100 MHz full crossbar with round-robin output arbitration.
    pub fn default_64bit(name: &str) -> Self {
        CrossbarConfig {
            name: name.to_string(),
            clock: SimDur::ns(10),
            width_bytes: 8,
            cycles_per_beat: 1,
            setup_cycles: 2,
            arb: ArbPolicy::RoundRobin,
        }
    }
}

struct OutputPort {
    range: Range<u64>,
    target: Arc<dyn OcpTarget>,
    relative: bool,
    gate: ArbGate,
}

/// A crossbar switch: concurrent non-conflicting transfers, per-output
/// arbitration on conflicts.
pub struct Crossbar {
    cfg: CrossbarConfig,
    sim: SimHandle,
    outputs: Vec<OutputPort>,
    stats: Mutex<BusStats>,
    /// Interned switch name for the metrics registry.
    label: Arc<str>,
}

impl Crossbar {
    /// Creates a crossbar; attach outputs with
    /// [`map_slave`](Self::map_slave) before sharing.
    pub fn new(sim: &SimHandle, cfg: CrossbarConfig) -> Self {
        assert!(cfg.width_bytes > 0, "crossbar width must be non-zero");
        Crossbar {
            sim: sim.clone(),
            outputs: Vec::new(),
            stats: Mutex::new(BusStats::default()),
            label: Arc::from(cfg.name.as_str()),
            cfg,
        }
    }

    /// Maps a slave behind its own output port.
    ///
    /// # Panics
    ///
    /// Panics on overlapping ranges.
    pub fn map_slave(&mut self, range: Range<u64>, target: Arc<dyn OcpTarget>, relative: bool) {
        assert!(range.start < range.end, "empty address range");
        for o in &self.outputs {
            assert!(
                range.end <= o.range.start || range.start >= o.range.end,
                "crossbar range overlap"
            );
        }
        let gate = ArbGate::new(
            &self.sim,
            &format!("{}.out{}", self.cfg.name, self.outputs.len()),
            self.cfg.arb.clone(),
        );
        self.outputs.push(OutputPort {
            range,
            target,
            relative,
            gate,
        });
    }

    /// The crossbar configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.cfg
    }

    /// A master port bound to this crossbar.
    pub fn master_port(self: &Arc<Self>, id: MasterId) -> OcpMasterPort {
        OcpMasterPort::bind(id, Arc::<Crossbar>::clone(self))
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl OcpTarget for Crossbar {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        master: MasterId,
        mut req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let t_req = ctx.now();
        let len = req.cmd.len();
        let out = self
            .outputs
            .iter()
            .find(|o| o.range.contains(&req.addr))
            .ok_or(OcpError::AddressDecode { addr: req.addr })?;
        if req.addr + len as u64 > out.range.end {
            return Err(OcpError::BadRequest(format!(
                "burst at {:#x} crosses output boundary {:#x}",
                req.addr, out.range.end
            )));
        }
        if out.relative {
            req.addr -= out.range.start;
        }

        let (granted_at, _b2b, queue_depth) = out.gate.acquire(ctx, master);
        let result = (|| {
            ctx.wait_for(self.cfg.clock.saturating_mul(self.cfg.setup_cycles));
            let beats = req.beats(self.cfg.width_bytes);
            let data_time = self
                .cfg
                .clock
                .saturating_mul(beats * self.cfg.cycles_per_beat);
            let t_data = ctx.now();
            let resp = out.target.transact(ctx, master, req)?;
            let slave_time = ctx.now().since(t_data);
            if slave_time < data_time {
                ctx.wait_for(data_time - slave_time);
            }
            Ok(resp)
        })();
        let end = ctx.now();
        out.gate.release(end);

        let wait_cycles = granted_at.since(t_req) / self.cfg.clock;
        let total_cycles = end.since(t_req) / self.cfg.clock;
        {
            let mut s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            match &result {
                Ok(_) => {
                    s.transactions += 1;
                    s.bytes += len as u64;
                    s.latency_cycles.record(total_cycles as f64);
                    s.wait_cycles.record(wait_cycles);
                    s.busy += end.since(granted_at);
                    let m = s.per_master.entry(master.0).or_default();
                    m.transactions += 1;
                    m.bytes += len as u64;
                    m.wait_cycles.record(wait_cycles as f64);
                }
                Err(_) => s.errors += 1,
            }
        }
        if ctx.metrics_enabled() {
            let m = ctx.metrics();
            m.counter_add("bus.txns", &self.label, 1, end);
            m.counter_add("bus.bytes", &self.label, len as u64, end);
            m.span_record("bus.busy", &self.label, granted_at, end);
            m.gauge_set("bus.queue_depth", &self.label, queue_depth as u64, t_req);
            m.observe(
                "bus.grant_wait_ns",
                &self.label,
                granted_at.since(t_req).as_ns(),
            );
        }

        result.map(|mut resp| {
            resp.timing = TxTiming {
                start: t_req,
                end,
                total_cycles,
                wait_cycles,
            };
            resp
        })
    }

    fn target_name(&self) -> String {
        self.cfg.name.clone()
    }
}

impl fmt::Debug for Crossbar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Crossbar")
            .field("name", &self.cfg.name)
            .field("outputs", &self.outputs.len())
            .finish()
    }
}
