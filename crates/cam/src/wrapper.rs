//! SHIP↔OCP wrappers: the "automatic mapping of the communication part of a
//! system to a given architecture" (paper §1, §3).
//!
//! When a SHIP channel is mapped onto a bus, the abstract channel is replaced
//! by a pair of endpoints that speak OCP underneath while presenting the
//! *identical* [`ShipPort`] API to the processing elements:
//!
//! * the **master wrapper** turns `send`/`request` calls into register and
//!   burst transactions against the slave's mailbox adapter;
//! * the **slave adapter** is a bus slave (an [`OcpTarget`]) exposing a
//!   register file, a shared-memory mailbox and an optional sideband signal;
//!   the slave PE's `recv`/`reply` calls read from its queues directly.
//!
//! The very same adapter doubles as the HW half of the paper's generic HW/SW
//! interface (§4): "data exchange with the SW adapter is implemented by
//! shared memory and sideband signals."

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::event::Event;
use shiptlm_kernel::liveness::EndpointId;
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::signal::Signal;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_kernel::txn::{TxnLevel, TxnSpan};
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::payload::{OcpCommand, OcpRequest, OcpResponse, TxTiming};
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};
use shiptlm_ship::bytes::ShipBytes;
use shiptlm_ship::channel::{ShipEndpoint, ShipPort};
use shiptlm_ship::error::ShipError;

/// Total bus-address window occupied by one [`ShipSlaveAdapter`].
pub const ADAPTER_SIZE: u64 = 0x2_0000;

/// Register offsets inside the adapter window.
pub mod regs {
    /// Status register (RO): bit 0 = RX space available, bit 1 = reply ready.
    pub const STATUS: u64 = 0x00;
    /// Length of the message being staged (WO).
    pub const TX_LEN: u64 = 0x08;
    /// Doorbell (WO): [`super::DOORBELL_DATA`], [`super::DOORBELL_REQUEST`]
    /// or [`super::DOORBELL_REPLY_ACK`].
    pub const DOORBELL: u64 = 0x10;
    /// Length of the pending reply (RO from the master; staged via
    /// [`SET_REPLY_LEN`] by a SW slave).
    pub const REPLY_LEN: u64 = 0x18;
    /// Length of the head RX message (RO; SW-slave drain path).
    pub const RX_LEN: u64 = 0x28;
    /// Kind of the head RX message: 1 = data, 2 = request (RO).
    pub const RX_KIND: u64 = 0x30;
    /// Stages the reply length before writing [`REPLY_WIN`] (WO; SW slave).
    pub const SET_REPLY_LEN: u64 = 0x38;
    /// Head RX message data window (RO; SW-slave drain path).
    pub const RX_WIN: u64 = 0x4000;
    /// End of the RX window (exclusive).
    pub const RX_WIN_END: u64 = 0x8000;
    /// Reply data window (RO for the master, WO staging for a SW slave).
    pub const REPLY_WIN: u64 = 0x8000;
    /// End of the reply window (exclusive).
    pub const REPLY_WIN_END: u64 = 0x1_0000;
    /// Transmit staging window (WO).
    pub const TX_WIN: u64 = 0x1_0000;
}

/// Doorbell value completing a plain data message.
pub const DOORBELL_DATA: u32 = 1;
/// Doorbell value completing a request message.
pub const DOORBELL_REQUEST: u32 = 2;
/// Doorbell value acknowledging that the reply was consumed.
pub const DOORBELL_REPLY_ACK: u32 = 3;
/// Doorbell value popping the head RX message (SW-slave drain path).
pub const DOORBELL_RX_ACK: u32 = 4;
/// Doorbell value publishing a staged reply (SW-slave path).
pub const DOORBELL_REPLY_SET: u32 = 5;

/// STATUS bit: the adapter can accept another message.
pub const STATUS_RX_SPACE: u32 = 1 << 0;
/// STATUS bit: a reply is ready to be read.
pub const STATUS_REPLY_READY: u32 = 1 << 1;
/// STATUS bit: an RX message is pending (SW-slave drain path).
pub const STATUS_RX_PENDING: u32 = 1 << 2;

/// Tuning knobs of a mapped channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperConfig {
    /// Maximum bytes moved per bus transaction (burst size).
    pub burst_bytes: usize,
    /// Master-side polling interval for STATUS.
    pub poll_interval: SimDur,
    /// Mailbox depth (messages buffered in the adapter).
    pub rx_capacity: usize,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        WrapperConfig {
            burst_bytes: 64,
            poll_interval: SimDur::ns(100),
            rx_capacity: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgKind {
    Data,
    Request,
}

#[derive(Debug)]
struct AdapterState {
    rx: VecDeque<(MsgKind, ShipBytes)>,
    rx_capacity: usize,
    staging: Vec<u8>,
    reply: Option<ShipBytes>,
    /// Reply buffer being staged over the bus by a SW slave.
    reply_staging: Vec<u8>,
    /// Requests popped by the slave PE that still owe a reply.
    owed_replies: u64,
}

impl AdapterState {
    fn status(&self) -> u32 {
        let mut s = 0;
        if self.rx.len() < self.rx_capacity {
            s |= STATUS_RX_SPACE;
        }
        if self.reply.is_some() {
            s |= STATUS_REPLY_READY;
        }
        if !self.rx.is_empty() {
            s |= STATUS_RX_PENDING;
        }
        s
    }
}

/// The HW mailbox adapter: a bus slave carrying one SHIP channel endpoint.
pub struct ShipSlaveAdapter {
    name: String,
    /// Interned copy of `name` for the transaction recorder.
    label: Arc<str>,
    state: Mutex<AdapterState>,
    /// Fired when a message lands in the mailbox.
    rx_written: Event,
    /// Fired when the reply slot is freed (master consumed the reply).
    reply_taken: Event,
    /// Fired when a message is drained from the mailbox (SW-slave path).
    rx_taken: Event,
    /// Fired when a reply is published.
    reply_set: Event,
    /// Optional sideband interrupt: high while RX pending or reply ready —
    /// the "sideband signals" of the paper's HW/SW interface.
    sideband: Mutex<Option<Signal<bool>>>,
    /// Extra latency per register/window access.
    access_latency: SimDur,
    /// Liveness registry handle + endpoint ids for deadlock diagnosis.
    sim: SimHandle,
    ep_slave: EndpointId,
    ep_master: EndpointId,
}

impl ShipSlaveAdapter {
    /// Creates an adapter with the given mailbox depth.
    pub fn new(sim: &SimHandle, name: &str, cfg: &WrapperConfig) -> Arc<Self> {
        let resource = format!("mapped adapter '{name}'");
        let ep_slave = sim.register_blocking_endpoint(&resource, "slave");
        let ep_master = sim.register_blocking_endpoint(&resource, "master");
        let rx_written = sim.event(&format!("{name}.rx_written"));
        let reply_taken = sim.event(&format!("{name}.reply_taken"));
        let rx_taken = sim.event(&format!("{name}.rx_taken"));
        let reply_set = sim.event(&format!("{name}.reply_set"));
        sim.annotate_wait(
            &rx_written,
            "recv (awaiting mailbox message)",
            Some(ep_master),
        );
        sim.annotate_wait(
            &reply_taken,
            "reply (awaiting reply-slot ack)",
            Some(ep_master),
        );
        sim.annotate_wait(
            &rx_taken,
            "send (mailbox full, awaiting drain)",
            Some(ep_slave),
        );
        sim.annotate_wait(&reply_set, "request (awaiting reply)", Some(ep_slave));
        Arc::new(ShipSlaveAdapter {
            name: name.to_string(),
            label: Arc::from(name),
            state: Mutex::new(AdapterState {
                rx: VecDeque::new(),
                rx_capacity: cfg.rx_capacity,
                staging: Vec::new(),
                reply: None,
                reply_staging: Vec::new(),
                owed_replies: 0,
            }),
            rx_written,
            reply_taken,
            rx_taken,
            reply_set,
            sideband: Mutex::new(None),
            access_latency: SimDur::ZERO,
            sim: sim.clone(),
            ep_slave,
            ep_master,
        })
    }

    /// Attaches a sideband interrupt signal (used by the HW/SW interface).
    pub fn attach_sideband(&self, irq: Signal<bool>) {
        *self.sideband.lock().unwrap_or_else(|e| e.into_inner()) = Some(irq);
        self.update_sideband();
    }

    /// Event fired whenever a message lands in the mailbox.
    pub fn rx_event(&self) -> &Event {
        &self.rx_written
    }

    /// Event fired whenever mailbox space frees up (a message was drained).
    /// In hardware this is the dedicated "ready" sideband wire between a
    /// master wrapper and its adapter.
    pub fn space_event(&self) -> &Event {
        &self.rx_taken
    }

    /// Event fired whenever a reply is published.
    pub fn reply_event(&self) -> &Event {
        &self.reply_set
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AdapterState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes the slave side's outstanding-reply debt to the liveness
    /// registry (shown in deadlock reports).
    fn note_owed(&self, owed: u64) {
        let note = if owed > 0 {
            Some(format!("owes {owed} reply(s)"))
        } else {
            None
        };
        self.sim.endpoint_note(self.ep_slave, note);
    }

    fn update_sideband(&self) {
        let pending = {
            let g = self.lock();
            !g.rx.is_empty() || g.reply.is_some()
        };
        let sb = self.sideband.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sig) = sb.as_ref() {
            sig.write(pending);
        }
    }

    /// The slave PE's SHIP endpoint, reading the mailbox directly (the PE is
    /// hardware living right behind the adapter).
    pub fn slave_endpoint(self: &Arc<Self>) -> Arc<dyn ShipEndpoint> {
        Arc::new(AdapterSlaveEndpoint {
            adapter: Arc::clone(self),
        })
    }

    /// Builds the slave-side [`ShipPort`] for PE code.
    pub fn slave_port(self: &Arc<Self>, channel: &str, label: &str) -> ShipPort {
        ShipPort::from_endpoint(self.slave_endpoint(), channel, label)
    }
}

impl OcpTarget for ShipSlaveAdapter {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        _master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        if !self.access_latency.is_zero() {
            ctx.wait_for(self.access_latency);
        }
        let timing = TxTiming {
            start: ctx.now(),
            end: ctx.now(),
            total_cycles: 0,
            wait_cycles: 0,
        };
        let addr = req.addr;
        match req.cmd {
            OcpCommand::Read { bytes } => {
                let g = self.lock();
                let data = match addr {
                    regs::STATUS => g.status().to_le_bytes().to_vec(),
                    regs::REPLY_LEN => (g.reply.as_ref().map(|r| r.len() as u32).unwrap_or(0))
                        .to_le_bytes()
                        .to_vec(),
                    regs::RX_LEN => (g.rx.front().map(|(_, b)| b.len() as u32).unwrap_or(0))
                        .to_le_bytes()
                        .to_vec(),
                    regs::RX_KIND => (match g.rx.front() {
                        Some((MsgKind::Data, _)) => 1u32,
                        Some((MsgKind::Request, _)) => 2,
                        None => 0,
                    })
                    .to_le_bytes()
                    .to_vec(),
                    a if (regs::RX_WIN..regs::RX_WIN_END).contains(&a) => {
                        let off = (a - regs::RX_WIN) as usize;
                        match g.rx.front() {
                            Some((_, b)) if off + bytes <= b.len() => b[off..off + bytes].to_vec(),
                            _ => return Ok(OcpResponse::error(timing)),
                        }
                    }
                    a if (regs::REPLY_WIN..regs::REPLY_WIN_END).contains(&a) => {
                        let off = (a - regs::REPLY_WIN) as usize;
                        match g.reply.as_ref() {
                            Some(r) if off + bytes <= r.len() => r[off..off + bytes].to_vec(),
                            _ => return Ok(OcpResponse::error(timing)),
                        }
                    }
                    _ => return Ok(OcpResponse::error(timing)),
                };
                let mut data = data;
                data.resize(bytes.max(data.len()), 0);
                data.truncate(bytes);
                Ok(OcpResponse::read_ok(data, timing))
            }
            OcpCommand::Write { data } => {
                match addr {
                    regs::TX_LEN => {
                        let len = u32::from_le_bytes(
                            data.get(..4)
                                .and_then(|s| s.try_into().ok())
                                .unwrap_or([0; 4]),
                        ) as usize;
                        if len as u64 > ADAPTER_SIZE - regs::TX_WIN {
                            return Ok(OcpResponse::error(timing));
                        }
                        self.lock().staging = vec![0; len];
                    }
                    regs::DOORBELL => {
                        let v = u32::from_le_bytes(
                            data.get(..4)
                                .and_then(|s| s.try_into().ok())
                                .unwrap_or([0; 4]),
                        );
                        if ctx.metrics_enabled() {
                            ctx.metrics()
                                .counter_add("hwsw.doorbells", &self.label, 1, ctx.now());
                        }
                        match v {
                            DOORBELL_DATA | DOORBELL_REQUEST => {
                                let kind = if v == DOORBELL_DATA {
                                    MsgKind::Data
                                } else {
                                    MsgKind::Request
                                };
                                let mut g = self.lock();
                                if g.rx.len() >= g.rx_capacity {
                                    return Ok(OcpResponse::error(timing));
                                }
                                // Staging buffer is frozen into the mailbox
                                // without copying.
                                let msg = ShipBytes::from(std::mem::take(&mut g.staging));
                                g.rx.push_back((kind, msg));
                                let depth = g.rx.len() as u64;
                                drop(g);
                                if ctx.metrics_enabled() {
                                    ctx.metrics().gauge_set(
                                        "mbox.occupancy",
                                        &self.label,
                                        depth,
                                        ctx.now(),
                                    );
                                }
                                self.rx_written.notify_delta();
                                self.update_sideband();
                            }
                            DOORBELL_REPLY_ACK => {
                                self.lock().reply = None;
                                self.reply_taken.notify_delta();
                                self.update_sideband();
                            }
                            DOORBELL_RX_ACK => {
                                let mut g = self.lock();
                                match g.rx.pop_front() {
                                    Some((MsgKind::Request, _)) => g.owed_replies += 1,
                                    Some(_) => {}
                                    None => return Ok(OcpResponse::error(timing)),
                                }
                                let owed = g.owed_replies;
                                let depth = g.rx.len() as u64;
                                drop(g);
                                if ctx.metrics_enabled() {
                                    ctx.metrics().gauge_set(
                                        "mbox.occupancy",
                                        &self.label,
                                        depth,
                                        ctx.now(),
                                    );
                                }
                                self.note_owed(owed);
                                self.rx_taken.notify_delta();
                                self.update_sideband();
                            }
                            DOORBELL_REPLY_SET => {
                                let mut g = self.lock();
                                if g.owed_replies == 0 || g.reply.is_some() {
                                    return Ok(OcpResponse::error(timing));
                                }
                                g.owed_replies -= 1;
                                let owed = g.owed_replies;
                                let r = ShipBytes::from(std::mem::take(&mut g.reply_staging));
                                g.reply = Some(r);
                                drop(g);
                                self.note_owed(owed);
                                self.reply_set.notify_delta();
                                self.update_sideband();
                            }
                            _ => return Ok(OcpResponse::error(timing)),
                        }
                    }
                    regs::SET_REPLY_LEN => {
                        let len = u32::from_le_bytes(
                            data.get(..4)
                                .and_then(|s| s.try_into().ok())
                                .unwrap_or([0; 4]),
                        ) as usize;
                        if len as u64 > regs::REPLY_WIN_END - regs::REPLY_WIN {
                            return Ok(OcpResponse::error(timing));
                        }
                        self.lock().reply_staging = vec![0; len];
                    }
                    a if (regs::REPLY_WIN..regs::REPLY_WIN_END).contains(&a) => {
                        // SW slave staging the reply content over the bus.
                        let off = (a - regs::REPLY_WIN) as usize;
                        let mut g = self.lock();
                        if off + data.len() > g.reply_staging.len() {
                            return Ok(OcpResponse::error(timing));
                        }
                        g.reply_staging[off..off + data.len()].copy_from_slice(&data);
                    }
                    a if a >= regs::TX_WIN => {
                        let off = (a - regs::TX_WIN) as usize;
                        let mut g = self.lock();
                        if off + data.len() > g.staging.len() {
                            return Ok(OcpResponse::error(timing));
                        }
                        g.staging[off..off + data.len()].copy_from_slice(&data);
                    }
                    _ => return Ok(OcpResponse::error(timing)),
                }
                Ok(OcpResponse::write_ok(timing))
            }
        }
    }

    fn target_name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for ShipSlaveAdapter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.lock();
        f.debug_struct("ShipSlaveAdapter")
            .field("name", &self.name)
            .field("rx_pending", &g.rx.len())
            .field("reply_ready", &g.reply.is_some())
            .finish()
    }
}

/// The slave PE's direct endpoint into its adapter.
struct AdapterSlaveEndpoint {
    adapter: Arc<ShipSlaveAdapter>,
}

impl ShipEndpoint for AdapterSlaveEndpoint {
    fn send_bytes(&self, _ctx: &mut ThreadCtx, _bytes: ShipBytes) -> Result<(), ShipError> {
        Err(ShipError::Protocol(
            "mapped slave endpoints support recv/reply only".into(),
        ))
    }

    fn recv_bytes(&self, ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError> {
        self.adapter
            .sim
            .endpoint_user(self.adapter.ep_slave, ctx.pid());
        let start = ctx.now();
        loop {
            {
                let mut g = self.adapter.lock();
                if let Some((kind, bytes)) = g.rx.pop_front() {
                    if kind == MsgKind::Request {
                        g.owed_replies += 1;
                    }
                    let owed = g.owed_replies;
                    let depth = g.rx.len() as u64;
                    drop(g);
                    if ctx.metrics_enabled() {
                        ctx.metrics().gauge_set(
                            "mbox.occupancy",
                            &self.adapter.label,
                            depth,
                            ctx.now(),
                        );
                    }
                    self.adapter.note_owed(owed);
                    // Space freed: pulse the ready sideband for any waiting
                    // master wrapper.
                    self.adapter.rx_taken.notify_delta();
                    self.adapter.update_sideband();
                    if ctx.txn_enabled() {
                        ctx.txn_record(TxnSpan {
                            level: TxnLevel::Bus,
                            op: "mbox.drain",
                            resource: &self.adapter.label,
                            start,
                            end: ctx.now(),
                            bytes: bytes.len(),
                            ok: true,
                        });
                    }
                    return Ok(bytes);
                }
            }
            ctx.wait(&self.adapter.rx_written);
        }
    }

    fn request_bytes(
        &self,
        _ctx: &mut ThreadCtx,
        _bytes: ShipBytes,
    ) -> Result<ShipBytes, ShipError> {
        Err(ShipError::Protocol(
            "mapped slave endpoints support recv/reply only".into(),
        ))
    }

    fn reply_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        if bytes.len() as u64 > regs::REPLY_WIN_END - regs::REPLY_WIN {
            return Err(ShipError::Protocol("reply exceeds reply window".into()));
        }
        self.adapter
            .sim
            .endpoint_user(self.adapter.ep_slave, ctx.pid());
        let start = ctx.now();
        let owed;
        loop {
            {
                let mut g = self.adapter.lock();
                if g.owed_replies == 0 {
                    return Err(ShipError::Protocol(
                        "reply without an outstanding request".into(),
                    ));
                }
                if g.reply.is_none() {
                    // Zero-copy: the slave's reply payload is shared with the
                    // adapter, not duplicated.
                    g.reply = Some(bytes.clone());
                    g.owed_replies -= 1;
                    owed = g.owed_replies;
                    break;
                }
            }
            // Previous reply not yet consumed: wait for the master to ack.
            ctx.wait(&self.adapter.reply_taken);
        }
        self.adapter.note_owed(owed);
        self.adapter.reply_set.notify_delta();
        self.adapter.update_sideband();
        if ctx.txn_enabled() {
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Bus,
                op: "mbox.reply",
                resource: &self.adapter.label,
                start,
                end: ctx.now(),
                bytes: bytes.len(),
                ok: true,
            });
        }
        Ok(())
    }
}

/// The master-side wrapper endpoint: turns SHIP calls into bus transactions
/// against a [`ShipSlaveAdapter`] mapped at `base`.
pub struct ShipBusMasterEndpoint {
    bus: OcpMasterPort,
    base: u64,
    cfg: WrapperConfig,
    /// Dedicated ready sideband wires from the adapter: (space freed,
    /// reply published). When absent the endpoint falls back to timed
    /// polling of STATUS — the CPU-style access pattern.
    sideband: Option<(Event, Event)>,
    /// Liveness identity of the adapter's master side (sideband wiring only).
    liveness: Option<(SimHandle, EndpointId)>,
    /// Interned label for the transaction recorder: the adapter name when
    /// known, otherwise the mailbox base address.
    label: Arc<str>,
}

impl ShipBusMasterEndpoint {
    /// Creates the endpoint; `base` is the adapter's base address on `bus`.
    pub fn new(bus: OcpMasterPort, base: u64, cfg: WrapperConfig) -> Arc<Self> {
        assert!(cfg.burst_bytes > 0, "burst size must be non-zero");
        Arc::new(ShipBusMasterEndpoint {
            bus,
            cfg,
            sideband: None,
            liveness: None,
            label: Arc::from(format!("mbox@{base:#x}").as_str()),
            base,
        })
    }

    /// Creates the endpoint with the adapter's ready sideband wired in: the
    /// wrapper waits on dedicated events instead of timed STATUS polling.
    /// This is how a hardware master wrapper attaches (request/ready wires);
    /// it avoids the poll-storm starvation a saturated bus would otherwise
    /// suffer under fixed-priority arbitration.
    pub fn with_sideband(
        bus: OcpMasterPort,
        base: u64,
        cfg: WrapperConfig,
        adapter: &ShipSlaveAdapter,
    ) -> Arc<Self> {
        assert!(cfg.burst_bytes > 0, "burst size must be non-zero");
        Arc::new(ShipBusMasterEndpoint {
            bus,
            base,
            cfg,
            sideband: Some((adapter.space_event().clone(), adapter.reply_event().clone())),
            liveness: Some((adapter.sim.clone(), adapter.ep_master)),
            label: Arc::clone(&adapter.label),
        })
    }

    /// Builds the master-side [`ShipPort`] for PE code.
    pub fn master_port(self: &Arc<Self>, channel: &str, label: &str) -> ShipPort {
        ShipPort::from_endpoint(Arc::clone(self) as Arc<dyn ShipEndpoint>, channel, label)
    }

    fn bus_err(e: OcpError) -> ShipError {
        ShipError::Protocol(format!("bus transport failed: {e}"))
    }

    fn wait_status(&self, ctx: &mut ThreadCtx, mask: u32) -> Result<(), ShipError> {
        if let Some((sim, ep)) = &self.liveness {
            sim.endpoint_user(*ep, ctx.pid());
        }
        loop {
            let status = self
                .bus
                .read_u32(ctx, self.base + regs::STATUS)
                .map_err(Self::bus_err)?;
            if status & mask != 0 {
                return Ok(());
            }
            match &self.sideband {
                // Hardware wrapper: sleep on the dedicated ready wire, then
                // re-verify via a STATUS read (the event may be stale).
                Some((space, reply)) => {
                    let ev = if mask & STATUS_REPLY_READY != 0 {
                        reply
                    } else {
                        space
                    };
                    // Guarded wait: the edge can fire while this endpoint is
                    // mid-STATUS-read (sim time passes inside the bus call),
                    // so a missed pulse must degrade to a delayed re-check,
                    // never a deadlock.
                    let guard =
                        std::cmp::max(self.cfg.poll_interval.saturating_mul(16), SimDur::us(1));
                    let _ = ctx.wait_any_for(&[ev], guard);
                }
                // CPU-style fallback: timed polling.
                None => ctx.wait_for(self.cfg.poll_interval),
            }
        }
    }

    fn push_message(
        &self,
        ctx: &mut ThreadCtx,
        bytes: &[u8],
        doorbell: u32,
    ) -> Result<(), ShipError> {
        if bytes.len() as u64 > ADAPTER_SIZE - regs::TX_WIN {
            return Err(ShipError::Protocol(format!(
                "message of {} bytes exceeds the {} byte adapter window",
                bytes.len(),
                ADAPTER_SIZE - regs::TX_WIN
            )));
        }
        self.wait_status(ctx, STATUS_RX_SPACE)?;
        self.bus
            .write_u32(ctx, self.base + regs::TX_LEN, bytes.len() as u32)
            .map_err(Self::bus_err)?;
        for (i, chunk) in bytes.chunks(self.cfg.burst_bytes).enumerate() {
            let addr = self.base + regs::TX_WIN + (i * self.cfg.burst_bytes) as u64;
            self.bus
                .write(ctx, addr, chunk.to_vec())
                .map_err(Self::bus_err)?;
        }
        self.bus
            .write_u32(ctx, self.base + regs::DOORBELL, doorbell)
            .map_err(Self::bus_err)?;
        Ok(())
    }

    fn pull_reply(&self, ctx: &mut ThreadCtx) -> Result<Vec<u8>, ShipError> {
        self.wait_status(ctx, STATUS_REPLY_READY)?;
        let len = self
            .bus
            .read_u32(ctx, self.base + regs::REPLY_LEN)
            .map_err(Self::bus_err)? as usize;
        let mut out = Vec::with_capacity(len);
        let mut off = 0;
        while off < len {
            let n = (len - off).min(self.cfg.burst_bytes);
            let chunk = self
                .bus
                .read(ctx, self.base + regs::REPLY_WIN + off as u64, n)
                .map_err(Self::bus_err)?;
            out.extend_from_slice(&chunk);
            off += n;
        }
        self.bus
            .write_u32(ctx, self.base + regs::DOORBELL, DOORBELL_REPLY_ACK)
            .map_err(Self::bus_err)?;
        Ok(out)
    }
}

impl ShipBusMasterEndpoint {
    /// Records one mailbox operation (level [`TxnLevel::Bus`]).
    fn txn(&self, ctx: &ThreadCtx, op: &'static str, start: SimTime, bytes: usize, ok: bool) {
        if !ctx.txn_enabled() {
            return;
        }
        ctx.txn_record(TxnSpan {
            level: TxnLevel::Bus,
            op,
            resource: &self.label,
            start,
            end: ctx.now(),
            bytes,
            ok,
        });
    }
}

impl ShipEndpoint for ShipBusMasterEndpoint {
    fn send_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        let start = ctx.now();
        let result = self.push_message(ctx, &bytes, DOORBELL_DATA);
        self.txn(ctx, "mbox.push", start, bytes.len(), result.is_ok());
        result
    }

    fn recv_bytes(&self, _ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError> {
        Err(ShipError::Protocol(
            "mapped master endpoints support send/request only".into(),
        ))
    }

    fn request_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<ShipBytes, ShipError> {
        let start = ctx.now();
        let result = self.push_message(ctx, &bytes, DOORBELL_REQUEST);
        self.txn(ctx, "mbox.push", start, bytes.len(), result.is_ok());
        result?;
        let start = ctx.now();
        let result = self.pull_reply(ctx);
        self.txn(
            ctx,
            "mbox.pull",
            start,
            result.as_ref().map_or(0, |r| r.len()),
            result.is_ok(),
        );
        Ok(ShipBytes::from(result?))
    }

    fn reply_bytes(&self, _ctx: &mut ThreadCtx, _bytes: ShipBytes) -> Result<(), ShipError> {
        Err(ShipError::Protocol(
            "mapped master endpoints support send/request only".into(),
        ))
    }
}

impl fmt::Debug for ShipBusMasterEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShipBusMasterEndpoint")
            .field("base", &format_args!("{:#x}", self.base))
            .finish()
    }
}

/// Everything produced by mapping one SHIP channel onto a bus.
#[derive(Debug)]
pub struct MappedChannel {
    /// The bus-slave mailbox adapter; map it at the base address used for
    /// the master endpoint.
    pub adapter: Arc<ShipSlaveAdapter>,
    /// The master PE's port (behaves exactly like the unmapped port).
    pub master_port: ShipPort,
    /// The slave PE's port.
    pub slave_port: ShipPort,
}

/// Maps a SHIP channel onto a bus: builds the adapter + both wrapper ports.
///
/// The caller maps `mapped.adapter` into the bus at `base` (the same address
/// the master endpoint transacts against), e.g.:
///
/// ```
/// use std::sync::Arc;
/// use shiptlm_kernel::prelude::*;
/// use shiptlm_ocp::tl::MasterId;
/// use shiptlm_cam::bus::{BusConfig, CcatbBus};
/// use shiptlm_cam::wrapper::{map_channel, WrapperConfig, ADAPTER_SIZE};
///
/// let sim = Simulation::new();
/// let mut bus = CcatbBus::new(&sim.handle(), BusConfig::plb("plb"));
/// // ... build first, map adapter after creating the mapping:
/// let pending = map_channel(
///     &sim.handle(), "ch0", 0x1000_0000, WrapperConfig::default(),
///     ("producer", "consumer"),
/// );
/// bus.map_slave(0x1000_0000..0x1000_0000 + ADAPTER_SIZE, pending.adapter.clone(), true);
/// let bus = Arc::new(bus);
/// let master_port = pending.bind(&bus.master_port(MasterId(0)));
/// ```
pub fn map_channel(
    sim: &SimHandle,
    channel: &str,
    base: u64,
    cfg: WrapperConfig,
    labels: (&str, &str),
) -> PendingMapping {
    let adapter = ShipSlaveAdapter::new(sim, &format!("{channel}.adapter"), &cfg);
    let slave_port = adapter.slave_port(channel, labels.1);
    PendingMapping {
        adapter,
        slave_port,
        base,
        cfg,
        channel: channel.to_string(),
        master_label: labels.0.to_string(),
    }
}

/// A half-built mapping: the adapter and slave port exist; the master port
/// is created once the bus port is available via [`bind`](Self::bind).
#[derive(Debug)]
pub struct PendingMapping {
    /// The mailbox adapter to map into the interconnect.
    pub adapter: Arc<ShipSlaveAdapter>,
    /// The slave PE's port.
    pub slave_port: ShipPort,
    base: u64,
    cfg: WrapperConfig,
    channel: String,
    master_label: String,
}

impl PendingMapping {
    /// Completes the mapping with the master's bus port; returns the master
    /// PE's SHIP port. The hardware master wrapper is wired to the
    /// adapter's ready sideband (event-driven, no timed polling).
    pub fn bind(&self, bus_port: &OcpMasterPort) -> ShipPort {
        let ep = ShipBusMasterEndpoint::with_sideband(
            bus_port.clone(),
            self.base,
            self.cfg.clone(),
            &self.adapter,
        );
        ep.master_port(&self.channel, &self.master_label)
    }

    /// The adapter's base address.
    pub fn base(&self) -> u64 {
        self.base
    }
}
