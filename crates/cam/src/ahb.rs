//! An AMBA AHB-style shared-bus CAM with SPLIT/RETRY arbitration.
//!
//! [`AhbBus`] follows the same CCATB discipline as [`CcatbBus`]
//! (crate::bus::CcatbBus): arbitration, address phase and data beats are
//! charged as blocking cycle-count waits and no pins wiggle. What it adds
//! over the CoreConnect-style models are the two AHB protocol features that
//! exercise arbitration paths a plain shared bus never reaches:
//!
//! * **SPLIT responses** — when [`AhbConfig::split_slaves`] is set, the
//!   addressed slave signals SPLIT after
//!   [`AhbConfig::split_response_cycles`]: the master is parked, the bus is
//!   **released** so other masters can transfer while the slave prepares
//!   the data off-bus, and the arbiter re-grants the split master before
//!   the data phase runs. The release/re-grant pair is real — competing
//!   masters genuinely slip in between, which is what makes SPLIT worth
//!   modeling at all.
//! * **RETRY / early burst termination** — a burst longer than
//!   [`AhbConfig::max_beats_per_grant`] beats is terminated at the grant
//!   boundary and re-arbitrated, segment by segment, so one long burst
//!   cannot monopolize the bus.
//!
//! Burst classification (SINGLE / INCR / WRAP4 / WRAP8 / WRAP16) and the
//! wrapping-address sequence are pure functions ([`burst_kind`],
//! [`wrap_addresses`]) so the address math is unit-testable without a
//! simulation.

use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;
use shiptlm_kernel::txn::{TxnLevel, TxnSpan};
use shiptlm_ocp::error::OcpError;
use shiptlm_ocp::memory::Router;
use shiptlm_ocp::payload::{OcpCommand, OcpRequest, OcpResponse, TxTiming};
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

use crate::arb::ArbPolicy;
use crate::bus::{ArbGate, BusStats};

/// Static parameters of an AHB-style bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AhbConfig {
    /// Bus name (reports, trace).
    pub name: String,
    /// Bus clock period.
    pub clock: SimDur,
    /// Data path width in bytes (AHB is canonically 32-bit).
    pub width_bytes: usize,
    /// Address-phase cycles per grant.
    pub addr_cycles: u64,
    /// Cycles per data beat.
    pub cycles_per_beat: u64,
    /// Minimum arbitration latency in cycles.
    pub arb_cycles: u64,
    /// Overlap the address phase with the previous transfer's data phase on
    /// back-to-back grants (AHB pipelines address and data by design).
    pub pipelined: bool,
    /// Treat every mapped slave as SPLIT-capable: each transfer draws a
    /// SPLIT response, releases the bus during the slave access and is
    /// re-granted for the data phase.
    pub split_slaves: bool,
    /// Cycles from address phase to the slave's SPLIT response.
    pub split_response_cycles: u64,
    /// Beat budget of one grant; longer bursts are RETRY-terminated and
    /// re-arbitrated (0 = unlimited, never terminate early).
    pub max_beats_per_grant: u64,
    /// Classify 4/8/16-beat bursts as wrapping (WRAP4/8/16) instead of
    /// incrementing.
    pub wrap_bursts: bool,
    /// Arbitration policy.
    pub arb: ArbPolicy,
}

impl AhbConfig {
    /// An AMBA AHB-like high-performance bus: 32-bit, 100 MHz, pipelined
    /// address/data, single-cycle beats, 16-beat grant budget, static
    /// priority. SPLIT is off by default; enable it per architecture with
    /// [`split_slaves`](Self::split_slaves).
    pub fn ahb(name: &str) -> Self {
        AhbConfig {
            name: name.to_string(),
            clock: SimDur::ns(10),
            width_bytes: 4,
            addr_cycles: 1,
            cycles_per_beat: 1,
            arb_cycles: 1,
            pipelined: true,
            split_slaves: false,
            split_response_cycles: 2,
            max_beats_per_grant: 16,
            wrap_bursts: true,
            arb: ArbPolicy::FixedPriority,
        }
    }

    /// Replaces the arbitration policy.
    pub fn with_arb(mut self, arb: ArbPolicy) -> Self {
        self.arb = arb;
        self
    }

    /// Replaces the clock period.
    pub fn with_clock(mut self, clock: SimDur) -> Self {
        self.clock = clock;
        self
    }

    /// Enables or disables SPLIT-capable slaves.
    pub fn with_split(mut self, split: bool) -> Self {
        self.split_slaves = split;
        self
    }
}

/// AHB burst classification (beats per AHB HBURST encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AhbBurst {
    /// One beat.
    Single,
    /// Incrementing burst of unspecified length.
    Incr,
    /// 4-beat wrapping burst.
    Wrap4,
    /// 8-beat wrapping burst.
    Wrap8,
    /// 16-beat wrapping burst.
    Wrap16,
}

impl AhbBurst {
    /// The HBURST mnemonic.
    pub fn label(self) -> &'static str {
        match self {
            AhbBurst::Single => "SINGLE",
            AhbBurst::Incr => "INCR",
            AhbBurst::Wrap4 => "WRAP4",
            AhbBurst::Wrap8 => "WRAP8",
            AhbBurst::Wrap16 => "WRAP16",
        }
    }
}

/// Classifies a burst of `beats` beats: one beat is SINGLE, a 4/8/16-beat
/// burst is WRAPn when `wrap_bursts` is set, everything else INCR.
pub fn burst_kind(beats: u64, wrap_bursts: bool) -> AhbBurst {
    match beats {
        0 | 1 => AhbBurst::Single,
        4 if wrap_bursts => AhbBurst::Wrap4,
        8 if wrap_bursts => AhbBurst::Wrap8,
        16 if wrap_bursts => AhbBurst::Wrap16,
        _ => AhbBurst::Incr,
    }
}

/// The beat-address sequence of an AHB wrapping burst: addresses increment
/// by `width` and wrap at the `beats * width`-aligned boundary containing
/// `start` — beat `i` of WRAP4 at `0x38` on a 4-byte bus is
/// `0x38, 0x3C, 0x30, 0x34`.
pub fn wrap_addresses(start: u64, beats: u64, width: usize) -> Vec<u64> {
    let width = width.max(1) as u64;
    let span = beats.saturating_mul(width);
    if span == 0 {
        return Vec::new();
    }
    let boundary = (start / span) * span;
    (0..beats)
        .map(|i| boundary + ((start - boundary) + i * width) % span)
        .collect()
}

/// AHB-specific accounting on top of the common [`BusStats`].
#[derive(Debug, Clone, Default)]
pub struct AhbStats {
    /// SPLIT responses issued (one per transfer when
    /// [`AhbConfig::split_slaves`] is set).
    pub splits: u64,
    /// Re-grants of parked split masters (equals `splits` for completed
    /// transfers).
    pub split_regrants: u64,
    /// RETRY early-burst terminations (burst segments beyond the first
    /// grant's beat budget).
    pub retries: u64,
    /// SINGLE transfers.
    pub singles: u64,
    /// Unspecified-length incrementing bursts.
    pub incrs: u64,
    /// 4-beat wrapping bursts.
    pub wrap4: u64,
    /// 8-beat wrapping bursts.
    pub wrap8: u64,
    /// 16-beat wrapping bursts.
    pub wrap16: u64,
}

impl AhbStats {
    fn record_burst(&mut self, kind: AhbBurst) {
        match kind {
            AhbBurst::Single => self.singles += 1,
            AhbBurst::Incr => self.incrs += 1,
            AhbBurst::Wrap4 => self.wrap4 += 1,
            AhbBurst::Wrap8 => self.wrap8 += 1,
            AhbBurst::Wrap16 => self.wrap16 += 1,
        }
    }
}

/// An AHB-style shared-bus CAM with SPLIT/RETRY arbitration.
///
/// ```
/// use std::sync::Arc;
/// use shiptlm_kernel::prelude::*;
/// use shiptlm_ocp::prelude::*;
/// use shiptlm_cam::ahb::{AhbBus, AhbConfig};
///
/// let sim = Simulation::new();
/// let mut bus = AhbBus::new(&sim.handle(), AhbConfig::ahb("ahb0").with_split(true));
/// bus.map_slave(0x0000..0x1000, Arc::new(Memory::new("ram", 0x1000)), true);
/// let bus = Arc::new(bus);
/// let port = bus.master_port(MasterId(0));
/// sim.spawn_thread("cpu", move |ctx| {
///     port.write(ctx, 0x10, vec![1, 2, 3, 4]).unwrap();
/// });
/// sim.run();
/// assert_eq!(bus.stats().transactions, 1);
/// assert_eq!(bus.ahb_stats().splits, 1);
/// ```
pub struct AhbBus {
    cfg: AhbConfig,
    router: Router,
    gate: ArbGate,
    stats: Mutex<BusStats>,
    ahb: Mutex<AhbStats>,
    /// Interned bus name for the transaction recorder.
    label: Arc<str>,
}

impl AhbBus {
    /// Creates a bus; map slaves with [`map_slave`](Self::map_slave) before
    /// sharing it.
    pub fn new(sim: &SimHandle, cfg: AhbConfig) -> Self {
        assert!(cfg.width_bytes > 0, "bus width must be non-zero");
        assert!(!cfg.clock.is_zero(), "bus clock must be non-zero");
        let gate = ArbGate::new(sim, &cfg.name, cfg.arb.clone());
        AhbBus {
            router: Router::new(&format!("{}.decoder", cfg.name)),
            gate,
            stats: Mutex::new(BusStats::default()),
            ahb: Mutex::new(AhbStats::default()),
            label: Arc::from(cfg.name.as_str()),
            cfg,
        }
    }

    /// Maps a slave into the bus address space.
    ///
    /// # Panics
    ///
    /// Panics on overlapping ranges.
    pub fn map_slave(&mut self, range: Range<u64>, target: Arc<dyn OcpTarget>, relative: bool) {
        self.router.map(range, target, relative);
    }

    /// The bus configuration.
    pub fn config(&self) -> &AhbConfig {
        &self.cfg
    }

    /// A master port bound to this bus.
    pub fn master_port(self: &Arc<Self>, id: MasterId) -> OcpMasterPort {
        OcpMasterPort::bind(id, Arc::<AhbBus>::clone(self))
    }

    /// A snapshot of the common bus statistics.
    pub fn stats(&self) -> BusStats {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// A snapshot of the AHB-specific statistics (splits, retries, burst
    /// kinds).
    pub fn ahb_stats(&self) -> AhbStats {
        self.ahb.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn cycles(&self, n: u64) -> SimDur {
        self.cfg.clock.saturating_mul(n)
    }
}

impl OcpTarget for AhbBus {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let t_req = ctx.now();
        let is_read = matches!(req.cmd, OcpCommand::Read { .. });
        let len = req.cmd.len();
        let beats = req.beats(self.cfg.width_bytes);
        let burst = burst_kind(beats, self.cfg.wrap_bursts);
        let max_grant = if self.cfg.max_beats_per_grant == 0 {
            beats
        } else {
            self.cfg.max_beats_per_grant
        };

        // --- First grant ----------------------------------------------------
        let (granted_at, back_to_back, queue_depth) = self.gate.acquire(ctx, master);
        let mut held = true;
        let mut seg_start = granted_at;
        let mut busy = SimDur::ZERO;
        let mut splits = 0u64;
        let mut regrants = 0u64;
        let mut retries = 0u64;
        let result = (|| {
            ctx.wait_for(self.cycles(self.cfg.arb_cycles));

            // --- Address phase (overlapped when pipelined, back-to-back) ----
            if !(self.cfg.pipelined && back_to_back) {
                ctx.wait_for(self.cycles(self.cfg.addr_cycles));
            }

            let mut remaining = beats;
            let resp = if self.cfg.split_slaves {
                // --- SPLIT: slave parks the master, bus goes free ----------
                // The slave cannot serve immediately; it answers SPLIT after
                // a fixed response latency, the master releases the bus and
                // the slave access proceeds off-bus while other masters
                // transfer. The arbiter re-grants the split master for the
                // data phase.
                ctx.wait_for(self.cycles(self.cfg.split_response_cycles));
                busy += ctx.now().since(seg_start);
                self.gate.release(ctx.now());
                held = false;
                splits += 1;
                let resp = self.router.transact(ctx, master, req)?;
                let (regrant, _, _) = self.gate.acquire(ctx, master);
                seg_start = regrant;
                held = true;
                regrants += 1;
                ctx.wait_for(self.cycles(self.cfg.arb_cycles));
                let n = remaining.min(max_grant);
                ctx.wait_for(self.cycles(n * self.cfg.cycles_per_beat));
                remaining -= n;
                resp
            } else {
                // --- No SPLIT: slave access overlaps the first segment -----
                let n = remaining.min(max_grant);
                let data_time = self.cycles(n * self.cfg.cycles_per_beat);
                let t_data = ctx.now();
                let resp = self.router.transact(ctx, master, req)?;
                let slave_time = ctx.now().since(t_data);
                if slave_time < data_time {
                    ctx.wait_for(data_time - slave_time);
                }
                remaining -= n;
                resp
            };

            // --- RETRY: early burst termination ----------------------------
            // Segments beyond the grant's beat budget are terminated and
            // re-arbitrated, so competing masters can slip in between.
            // (`held` stays true here: nothing between the release and the
            // re-acquire can return early.)
            while remaining > 0 {
                busy += ctx.now().since(seg_start);
                self.gate.release(ctx.now());
                retries += 1;
                let (regrant, _, _) = self.gate.acquire(ctx, master);
                seg_start = regrant;
                ctx.wait_for(self.cycles(self.cfg.arb_cycles + self.cfg.addr_cycles));
                let n = remaining.min(max_grant);
                ctx.wait_for(self.cycles(n * self.cfg.cycles_per_beat));
                remaining -= n;
            }
            Ok(resp)
        })();
        let end = ctx.now();
        if held {
            busy += end.since(seg_start);
            self.gate.release(end);
        }

        // --- Accounting -----------------------------------------------------
        let wait_cycles = granted_at.since(t_req) / self.cfg.clock;
        let total_cycles = end.since(t_req) / self.cfg.clock;
        {
            let mut s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            match &result {
                Ok(_) => {
                    s.transactions += 1;
                    if is_read {
                        s.reads += 1;
                    }
                    s.bytes += len as u64;
                    s.latency_cycles.record(total_cycles as f64);
                    s.wait_cycles.record(wait_cycles);
                    s.busy += busy;
                    let m = s.per_master.entry(master.0).or_default();
                    m.transactions += 1;
                    m.bytes += len as u64;
                    m.wait_cycles.record(wait_cycles as f64);
                }
                Err(_) => s.errors += 1,
            }
        }
        {
            let mut a = self.ahb.lock().unwrap_or_else(|e| e.into_inner());
            a.splits += splits;
            a.split_regrants += regrants;
            a.retries += retries;
            if result.is_ok() {
                a.record_burst(burst);
            }
        }

        if ctx.metrics_enabled() {
            let m = ctx.metrics();
            m.counter_add("bus.txns", &self.label, 1, end);
            m.counter_add("bus.bytes", &self.label, len as u64, end);
            m.span_record("bus.busy", &self.label, granted_at, end);
            m.gauge_set("bus.queue_depth", &self.label, queue_depth as u64, t_req);
            m.observe(
                "bus.grant_wait_ns",
                &self.label,
                granted_at.since(t_req).as_ns(),
            );
            if splits > 0 {
                m.counter_add("ahb.splits", &self.label, splits, end);
            }
            if retries > 0 {
                m.counter_add("ahb.retries", &self.label, retries, end);
            }
        }

        if ctx.txn_enabled() {
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Bus,
                op: "grant",
                resource: &self.label,
                start: t_req,
                end: granted_at,
                bytes: 0,
                ok: true,
            });
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Bus,
                op: if is_read { "read" } else { "write" },
                resource: &self.label,
                start: granted_at,
                end,
                bytes: len,
                ok: result.is_ok(),
            });
        }

        result.map(|mut resp| {
            resp.timing = TxTiming {
                start: t_req,
                end,
                total_cycles,
                wait_cycles,
            };
            resp
        })
    }

    fn target_name(&self) -> String {
        self.cfg.name.clone()
    }
}

impl fmt::Debug for AhbBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AhbBus")
            .field("name", &self.cfg.name)
            .field("arb", &self.cfg.arb)
            .field("split_slaves", &self.cfg.split_slaves)
            .field("transactions", &self.stats().transactions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_kind_follows_hburst_encoding() {
        assert_eq!(burst_kind(0, true), AhbBurst::Single);
        assert_eq!(burst_kind(1, true), AhbBurst::Single);
        assert_eq!(burst_kind(4, true), AhbBurst::Wrap4);
        assert_eq!(burst_kind(8, true), AhbBurst::Wrap8);
        assert_eq!(burst_kind(16, true), AhbBurst::Wrap16);
        assert_eq!(burst_kind(2, true), AhbBurst::Incr);
        assert_eq!(burst_kind(5, true), AhbBurst::Incr);
        assert_eq!(burst_kind(32, true), AhbBurst::Incr);
        // With wrap classification off, everything multi-beat is INCR.
        assert_eq!(burst_kind(4, false), AhbBurst::Incr);
        assert_eq!(burst_kind(16, false), AhbBurst::Incr);
    }

    #[test]
    fn wrap_addresses_wrap_at_the_aligned_boundary() {
        // WRAP4 on a 4-byte bus starting mid-block: wraps at 16B.
        assert_eq!(wrap_addresses(0x38, 4, 4), vec![0x38, 0x3C, 0x30, 0x34]);
        // Aligned start never wraps.
        assert_eq!(wrap_addresses(0x40, 4, 4), vec![0x40, 0x44, 0x48, 0x4C]);
        // WRAP8 on an 8-byte bus: 64-byte boundary.
        assert_eq!(
            wrap_addresses(0x70, 8, 8),
            vec![0x70, 0x78, 0x40, 0x48, 0x50, 0x58, 0x60, 0x68]
        );
        // Degenerate inputs stay total.
        assert_eq!(wrap_addresses(0x10, 0, 4), Vec::<u64>::new());
        assert_eq!(wrap_addresses(0x10, 1, 0), vec![0x10]);
    }

    #[test]
    fn wrap_addresses_cover_the_block_exactly_once() {
        for start_beat in 0..16u64 {
            let start = 0x100 + start_beat * 4;
            let mut addrs = wrap_addresses(start, 16, 4);
            addrs.sort_unstable();
            let expected: Vec<u64> = (0..16).map(|i| 0x100 + i * 4).collect();
            assert_eq!(addrs, expected, "start {start:#x}");
        }
    }
}
