//! # shiptlm-cam
//!
//! Communication architecture models (CAMs) for the `shiptlm` design flow
//! (Klingauf, DATE 2005, §3): CCATB bus models, a crossbar, a bus bridge,
//! arbitration policies, SHIP↔OCP wrappers and pin-level accessors.
//!
//! * [`bus::CcatbBus`] — a shared bus with cycle-count-accurate boundary
//!   timing; [`bus::BusConfig::plb`] and [`bus::BusConfig::opb`] provide
//!   CoreConnect-style presets.
//! * [`ahb::AhbBus`] — an AMBA AHB-style bus with SPLIT/RETRY arbitration,
//!   pipelined address/data phases and SINGLE/INCR/WRAP burst accounting.
//! * [`noc::MeshNoc`] — a 2D-mesh NoC with XY routing and per-link
//!   arbitration, scaling to 16×16 (256 PEs) and beyond.
//! * [`crossbar::Crossbar`] — parallel transfers, per-output arbitration.
//! * [`bridge::Bridge`] — PLB↔OPB-style bus coupling.
//! * [`arb::ArbPolicy`] — fixed priority, round-robin, TDMA.
//! * [`wrapper`] — maps a SHIP channel onto a bus without touching PE code.
//! * [`accessor::Accessor`] — pin-level attachment for prototype generation.
//!
//! ## Example: two masters contending on a PLB
//!
//! ```
//! use std::sync::Arc;
//! use shiptlm_kernel::prelude::*;
//! use shiptlm_ocp::prelude::*;
//! use shiptlm_cam::bus::{BusConfig, CcatbBus};
//!
//! let sim = Simulation::new();
//! let mut bus = CcatbBus::new(&sim.handle(), BusConfig::plb("plb"));
//! bus.map_slave(0..0x1000, Arc::new(Memory::new("ram", 0x1000)), true);
//! let bus = Arc::new(bus);
//! for m in 0..2 {
//!     let port = bus.master_port(MasterId(m));
//!     sim.spawn_thread(&format!("m{m}"), move |ctx| {
//!         for i in 0..16u64 {
//!             port.write(ctx, i * 64, vec![m as u8; 64]).unwrap();
//!         }
//!     });
//! }
//! sim.run();
//! assert_eq!(bus.stats().transactions, 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accessor;
pub mod ahb;
pub mod arb;
pub mod bridge;
pub mod bus;
pub mod crossbar;
pub mod noc;
pub mod dma;
pub mod wrapper;

/// Commonly used CAM items.
pub mod prelude {
    pub use crate::accessor::Accessor;
    pub use crate::ahb::{burst_kind, wrap_addresses, AhbBurst, AhbBus, AhbConfig, AhbStats};
    pub use crate::arb::{ArbPolicy, Ticket};
    pub use crate::bridge::Bridge;
    pub use crate::bus::{BusConfig, BusStats, CcatbBus, MasterStats};
    pub use crate::crossbar::{Crossbar, CrossbarConfig};
    pub use crate::noc::{MeshNoc, NocConfig, NocStats};
    pub use crate::dma::{
        dma_regs, DmaEngine, DMA_CTRL_CLEAR, DMA_CTRL_START, DMA_STATUS_BUSY, DMA_STATUS_DONE,
        DMA_STATUS_ERROR,
    };
    pub use crate::wrapper::{
        map_channel, MappedChannel, PendingMapping, ShipBusMasterEndpoint, ShipSlaveAdapter,
        WrapperConfig, ADAPTER_SIZE,
    };
}
