//! Bus arbitration policies.

use std::fmt;

use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_ocp::tl::MasterId;

/// How a bus grants access among competing masters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbPolicy {
    /// Lower master id wins (CoreConnect-style static priority; id order is
    /// the priority order).
    FixedPriority,
    /// Cyclic fairness: the master after the previous owner wins.
    RoundRobin,
    /// Time-division multiple access: master *i* owns slot *i* of a fixed
    /// rotation; a master may only be granted during its own slot.
    Tdma {
        /// Duration of one slot.
        slot: SimDur,
        /// Number of slots in the rotation (usually the master count).
        slots: usize,
    },
}

impl ArbPolicy {
    /// Short name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ArbPolicy::FixedPriority => "priority",
            ArbPolicy::RoundRobin => "round-robin",
            ArbPolicy::Tdma { .. } => "tdma",
        }
    }

    /// Picks a winner among `pending` tickets, or `None` when nobody may be
    /// granted right now (TDMA outside every pending master's slot).
    pub fn pick(
        &self,
        pending: &[Ticket],
        last_granted: Option<MasterId>,
        now: SimTime,
    ) -> Option<Ticket> {
        if pending.is_empty() {
            return None;
        }
        match self {
            ArbPolicy::FixedPriority => pending.iter().min_by_key(|t| (t.master, t.seq)).copied(),
            ArbPolicy::RoundRobin => {
                // Smallest cyclic distance from the master after the last
                // grantee wins; arrival order breaks ties.
                let start = last_granted.map(|m| m.0 as u64 + 1).unwrap_or(0);
                pending
                    .iter()
                    .min_by_key(|t| {
                        let m = t.master.0 as u64;
                        let d = if m >= start {
                            m - start
                        } else {
                            m + (1u64 << 32) - start
                        };
                        (d, t.seq)
                    })
                    .copied()
            }
            ArbPolicy::Tdma { slot, slots } => {
                let owner = self.slot_owner(now, *slot, *slots);
                pending
                    .iter()
                    .filter(|t| t.master.0 % slots == owner)
                    .min_by_key(|t| t.seq)
                    .copied()
            }
        }
    }

    fn slot_owner(&self, now: SimTime, slot: SimDur, slots: usize) -> usize {
        ((SimDur::ps(now.as_ps()) / slot) % slots as u64) as usize
    }

    /// For TDMA: the delay until the next slot boundary, when waiters must
    /// re-arbitrate. `None` for purely event-driven policies.
    pub fn recheck_delay(&self, now: SimTime) -> Option<SimDur> {
        match self {
            ArbPolicy::Tdma { slot, .. } => {
                let into = SimDur::ps(now.as_ps() % slot.as_ps());
                let d = *slot - into;
                Some(if d.is_zero() { *slot } else { d })
            }
            _ => None,
        }
    }
}

impl fmt::Display for ArbPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A pending bus request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Requesting master.
    pub master: MasterId,
    /// Monotonic arrival number (FIFO tie-break).
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(m: usize, seq: u64) -> Ticket {
        Ticket {
            master: MasterId(m),
            seq,
        }
    }

    #[test]
    fn fixed_priority_prefers_lowest_id() {
        let p = ArbPolicy::FixedPriority;
        let pending = [t(2, 0), t(0, 5), t(1, 1)];
        assert_eq!(p.pick(&pending, None, SimTime::ZERO), Some(t(0, 5)));
    }

    #[test]
    fn fixed_priority_breaks_ties_by_arrival() {
        let p = ArbPolicy::FixedPriority;
        let pending = [t(1, 7), t(1, 3)];
        assert_eq!(p.pick(&pending, None, SimTime::ZERO), Some(t(1, 3)));
    }

    #[test]
    fn round_robin_rotates_after_last_grant() {
        let p = ArbPolicy::RoundRobin;
        let pending = [t(0, 0), t(1, 0), t(2, 0)];
        assert_eq!(
            p.pick(&pending, Some(MasterId(0)), SimTime::ZERO),
            Some(t(1, 0))
        );
        assert_eq!(
            p.pick(&pending, Some(MasterId(2)), SimTime::ZERO),
            Some(t(0, 0)) // wraps: 3 is not pending, 0 is next in cycle
        );
        let pending2 = [t(0, 0), t(2, 0)];
        assert_eq!(
            p.pick(&pending2, Some(MasterId(0)), SimTime::ZERO),
            Some(t(2, 0)) // 1 missing, 2 is the next pending in the cycle
        );
    }

    #[test]
    fn round_robin_without_history_starts_at_zero() {
        let p = ArbPolicy::RoundRobin;
        let pending = [t(2, 0), t(1, 0)];
        assert_eq!(p.pick(&pending, None, SimTime::ZERO), Some(t(1, 0)));
    }

    #[test]
    fn tdma_grants_only_slot_owner() {
        let p = ArbPolicy::Tdma {
            slot: SimDur::ns(100),
            slots: 4,
        };
        let pending = [t(0, 0), t(1, 0), t(3, 0)];
        // At t=0 slot 0 owns the bus.
        assert_eq!(p.pick(&pending, None, SimTime::ZERO), Some(t(0, 0)));
        // At t=150ns slot 1 owns it.
        let at = SimTime::ZERO + SimDur::ns(150);
        assert_eq!(p.pick(&pending, None, at), Some(t(1, 0)));
        // At t=250ns slot 2 owns it, but master 2 is not pending: nobody.
        let at = SimTime::ZERO + SimDur::ns(250);
        assert_eq!(p.pick(&pending, None, at), None);
    }

    #[test]
    fn empty_pending_yields_none() {
        assert_eq!(
            ArbPolicy::FixedPriority.pick(&[], None, SimTime::ZERO),
            None
        );
    }
}
