//! # shiptlm-gateway
//!
//! Simulation as a service: a long-running gateway that accepts model and
//! sweep jobs over a length-prefixed wire protocol, schedules them onto
//! the shared exploration [`WorkerPool`], deduplicates identical work
//! through a content-addressed result cache, and streams deterministic
//! report rows (and optional latency traces) back to clients.
//!
//! The wire protocol is built on `ship::wire` — the same hardened
//! [`ByteReader`]/[`ByteWriter`] layer the SHIP channels use for payload
//! serialization — with a pluggable body codec negotiated per connection:
//! compact binary ([`codec::BinCodec`]) or self-describing JSON reusing
//! the testkit corpus format ([`codec::JsonCodec`]).
//!
//! ```no_run
//! use shiptlm_gateway::prelude::*;
//! use shiptlm_explore::prelude::ArchSpec;
//! use shiptlm_testkit::model::{GenConfig, ModelSpec};
//!
//! let gateway = Gateway::start(GatewayConfig::default()).unwrap();
//! let mut client = GatewayClient::connect(gateway.addr(), &BIN).unwrap();
//! let outcome = client
//!     .run_job(&JobRequest {
//!         id: 1,
//!         spec: ModelSpec::random(42, &GenConfig::default()),
//!         archs: vec![ArchSpec::plb(), ArchSpec::crossbar()],
//!         backend: BackendChoice::De,
//!         want_trace: false,
//!         trace: None,
//!         want_progress: false,
//!     })
//!     .unwrap();
//! assert!(outcome.is_done());
//! gateway.shutdown();
//! ```
//!
//! [`WorkerPool`]: shiptlm_explore::pool::WorkerPool
//! [`ByteReader`]: shiptlm_ship::wire::ByteReader
//! [`ByteWriter`]: shiptlm_ship::wire::ByteWriter

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod codec;
pub mod metrics;
pub mod proto;
pub mod server;

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, tolerating poison: gateway state stays usable even if a
/// holder panicked (the executor converts job panics to errors anyway).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Commonly used gateway items.
pub mod prelude {
    pub use crate::cache::{CacheOutcome, JobOutput, JobResult, ResultCache};
    pub use crate::client::{GatewayClient, JobOutcome, JobProgress, JobStatus};
    pub use crate::codec::{codec_for, BinCodec, JsonCodec, WireCodec, BIN, JSON};
    pub use crate::metrics::{http_get, GatewayMetrics};
    pub use crate::proto::{
        read_frame, write_frame, BackendChoice, GatewayError, JobRequest, Reply, ReportRow,
    };
    pub use crate::server::{Gateway, GatewayConfig};
}
