//! Gateway wire protocol: handshake, length-prefixed frames, and the
//! job/reply vocabulary shared by server and client.
//!
//! The framing layer is deliberately tiny: after a 6-byte handshake
//! (magic + version + codec tag), every message in either direction is a
//! `u64` little-endian length prefix followed by that many bytes of
//! codec-encoded body. The body encoding is pluggable (see
//! [`crate::codec`]); the frame layer itself never trusts the prefix —
//! lengths above the negotiated cap are rejected before any allocation.

use std::fmt;
use std::io::{self, Read, Write};

use shiptlm_explore::prelude::{ArchSpec, Backend, RunMetrics};
use shiptlm_kernel::causal::{CausalSpan, TraceCtx};
use shiptlm_ship::prelude::*;
use shiptlm_testkit::model::ModelSpec;
use shiptlm_testkit::wirecase::{get_archs, put_archs};

/// Handshake magic: the first four bytes of every gateway connection.
pub const MAGIC: [u8; 4] = *b"SHTG";

/// Protocol version carried in the handshake. Version 2 added the optional
/// causal-tracing / progress extension on [`JobRequest`] and the
/// [`Reply::Progress`] / [`Reply::Spans`] variants.
pub const VERSION: u8 = 2;

/// Oldest protocol version this build still serves. Version-1 peers get
/// byte-identical version-1 behavior: their requests carry no extension and
/// they are never sent a reply tag newer than their handshake.
pub const MIN_VERSION: u8 = 1;

/// Default cap on a single frame body, in bytes.
pub const DEFAULT_MAX_FRAME: u64 = 16 * 1024 * 1024;

/// Everything that can go wrong between a gateway client and server.
#[derive(Debug)]
pub enum GatewayError {
    /// Transport-level I/O failure.
    Io(io::Error),
    /// Structurally invalid binary body (classified by `ship::wire`).
    Wire(WireError),
    /// The body decoded as bytes but not as a protocol message.
    Codec(String),
    /// Frame-layer violation: oversized prefix, truncated prefix, or a
    /// connection cut mid-body.
    Frame(String),
    /// Bad magic, unsupported version, or unknown codec tag.
    Handshake(String),
    /// A well-formed message that violates the request/reply state
    /// machine (e.g. a reply for a different job id).
    Protocol(String),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "i/o error: {e}"),
            GatewayError::Wire(e) => write!(f, "wire decode error: {e}"),
            GatewayError::Codec(m) => write!(f, "codec error: {m}"),
            GatewayError::Frame(m) => write!(f, "frame error: {m}"),
            GatewayError::Handshake(m) => write!(f, "handshake error: {m}"),
            GatewayError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> Self {
        GatewayError::Io(e)
    }
}

impl From<WireError> for GatewayError {
    fn from(e: WireError) -> Self {
        GatewayError::Wire(e)
    }
}

/// Which execution backend the client wants for the job.
///
/// Mirrors [`Backend`] but lives in the protocol so the wire encoding is
/// stable even if the exploration enum grows variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// The delta-cycle kernel (deterministic default).
    #[default]
    De,
    /// Direct execution; fails if the model disqualifies.
    Direct,
    /// Direct execution with transparent DE fallback.
    Auto,
}

impl BackendChoice {
    /// Stable one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            BackendChoice::De => 0,
            BackendChoice::Direct => 1,
            BackendChoice::Auto => 2,
        }
    }

    /// Decodes a wire tag.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidValue`] for unknown tags.
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(BackendChoice::De),
            1 => Ok(BackendChoice::Direct),
            2 => Ok(BackendChoice::Auto),
            t => Err(WireError::InvalidValue(format!("unknown backend tag {t}"))),
        }
    }

    /// Stable textual name (used by the JSON codec).
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::De => "de",
            BackendChoice::Direct => "direct",
            BackendChoice::Auto => "auto",
        }
    }

    /// Parses the textual name.
    ///
    /// # Errors
    ///
    /// Returns a description of the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "de" => Ok(BackendChoice::De),
            "direct" => Ok(BackendChoice::Direct),
            "auto" => Ok(BackendChoice::Auto),
            other => Err(format!("unknown backend '{other}'")),
        }
    }

    /// The exploration backend this choice selects.
    pub fn to_backend(self) -> Backend {
        match self {
            BackendChoice::De => Backend::De,
            BackendChoice::Direct => Backend::Direct,
            BackendChoice::Auto => Backend::Auto,
        }
    }
}

/// One sweep job: a model, the candidate architectures to map it onto,
/// and execution knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Client-chosen correlation id, echoed on every reply.
    pub id: u64,
    /// The model to elaborate (testkit corpus format).
    pub spec: ModelSpec,
    /// Candidate architectures to sweep.
    pub archs: Vec<ArchSpec>,
    /// Execution backend for the component-assembly level.
    pub backend: BackendChoice,
    /// Stream the per-channel latency trace back in chunks.
    pub want_trace: bool,
    /// Version-2 extension: the client-minted causal trace context. When
    /// set, the server records admission/queue/cache/exec/candidate spans
    /// under it and streams them back as [`Reply::Spans`] before `Done`.
    /// Absent on version-1 connections.
    pub trace: Option<TraceCtx>,
    /// Version-2 extension: stream [`Reply::Progress`] samples at worker
    /// chunk boundaries while the job runs. Absent on version-1
    /// connections.
    pub want_progress: bool,
}

impl JobRequest {
    /// Content address of this job: the canonical binary encoding of
    /// everything that determines the result — model, architectures,
    /// backend, trace flag and *whether* causal tracing is on (traced
    /// entries carry spans, so they cannot share an entry with untraced
    /// ones) — but *not* the correlation id or the concrete trace/span
    /// ids, so identical work from different clients shares one cache
    /// entry and a cached traced job is replayed under each requester's
    /// own trace id. `want_progress` is pacing, not content, and is
    /// likewise excluded.
    pub fn cache_key(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.spec.serialize(&mut w);
        put_archs(&mut w, &self.archs);
        w.put_u8(self.backend.tag());
        w.put_bool(self.want_trace);
        if self.trace.is_some() {
            // Appended only when set, so version-1 jobs (and untraced
            // version-2 jobs) keep their pre-extension cache keys.
            w.put_bool(true);
        }
        w.into_bytes()
    }
}

/// One deterministic report row, the streamed unit of a job result.
///
/// Host wall-clock is deliberately excluded: two runs of the same job must
/// produce byte-identical rows so the content-addressed cache and the
/// soak test's cross-client comparisons hold exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportRow {
    /// Architecture label (see `ArchSpec::label`).
    pub label: String,
    /// Total simulated time in picoseconds.
    pub sim_time_ps: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Kernel delta cycles.
    pub delta_cycles: u64,
}

impl ReportRow {
    /// Projects the deterministic subset of a sweep row.
    pub fn from_metrics(m: &RunMetrics) -> ReportRow {
        ReportRow {
            label: m.label.clone(),
            sim_time_ps: m.sim_time.as_ps(),
            messages: m.messages,
            bytes: m.bytes,
            delta_cycles: m.delta_cycles,
        }
    }
}

impl ShipSerialize for ReportRow {
    fn serialize(&self, w: &mut ByteWriter) {
        self.label.serialize(w);
        w.put_u64(self.sim_time_ps);
        w.put_u64(self.messages);
        w.put_u64(self.bytes);
        w.put_u64(self.delta_cycles);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(ReportRow {
            label: String::deserialize(r)?,
            sim_time_ps: r.get_u64()?,
            messages: r.get_u64()?,
            bytes: r.get_u64()?,
            delta_cycles: r.get_u64()?,
        })
    }
}

/// Server-to-client messages. Every variant echoes the job id it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The job passed admission and is queued.
    Accepted {
        /// Echoed correlation id.
        id: u64,
    },
    /// The admission queue is full; retry after the given backoff.
    Rejected {
        /// Echoed correlation id.
        id: u64,
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// One report row of the running (or cached) job.
    Row {
        /// Echoed correlation id.
        id: u64,
        /// The row.
        row: ReportRow,
    },
    /// One chunk of the per-channel latency trace (CSV bytes).
    TraceChunk {
        /// Echoed correlation id.
        id: u64,
        /// Raw CSV bytes; concatenate chunks in arrival order.
        data: Vec<u8>,
    },
    /// The job finished; no more replies will arrive for this id.
    Done {
        /// Echoed correlation id.
        id: u64,
        /// Number of `Row` replies that were streamed.
        rows: u64,
        /// Whether the result came from the content-addressed cache.
        cached: bool,
    },
    /// The job failed (mapping error, model panic, or decode failure).
    Error {
        /// Echoed correlation id (0 when the request never decoded).
        id: u64,
        /// Human-readable failure description.
        message: String,
    },
    /// A live progress sample (version 2, only when the request set
    /// `want_progress`). Content is a pure function of the candidates
    /// completed so far — see `SweepProgress` in `shiptlm-explore`; pacing
    /// and sample count are outside the determinism contract.
    Progress {
        /// Echoed correlation id.
        id: u64,
        /// Candidates simulated to completion so far.
        done: u64,
        /// Total candidates in the job.
        total: u64,
        /// Candidates skipped by pruning so far.
        pruned: u64,
        /// Estimated remaining *simulated* picoseconds.
        eta_hint_ps: u64,
    },
    /// The job's causal spans (version 2, only when the request carried a
    /// [`TraceCtx`]). Sent once, after rows/trace and before `Done`;
    /// already stamped with the requester's trace id and parented under
    /// its `parent_span`.
    Spans {
        /// Echoed correlation id.
        id: u64,
        /// The spans, in collection order.
        spans: Vec<CausalSpan>,
    },
}

impl Reply {
    /// The job id this reply answers.
    pub fn id(&self) -> u64 {
        match self {
            Reply::Accepted { id }
            | Reply::Rejected { id, .. }
            | Reply::Row { id, .. }
            | Reply::TraceChunk { id, .. }
            | Reply::Done { id, .. }
            | Reply::Error { id, .. }
            | Reply::Progress { id, .. }
            | Reply::Spans { id, .. } => *id,
        }
    }

    /// `true` for reply variants that exist only in protocol version 2;
    /// the server never sends these to a version-1 peer.
    pub fn is_v2_only(&self) -> bool {
        matches!(self, Reply::Progress { .. } | Reply::Spans { .. })
    }
}

/// Encodes one causal span into the canonical binary body.
pub fn put_span(w: &mut ByteWriter, s: &CausalSpan) {
    w.put_u64(s.trace_id);
    w.put_u64(s.span_id);
    w.put_u64(s.parent_id);
    s.stage.serialize(w);
    s.name.serialize(w);
    w.put_u32(s.track);
    w.put_u64(s.ts_ns);
    w.put_u64(s.dur_ns);
    w.put_u64(s.args.len() as u64);
    for (k, v) in &s.args {
        k.serialize(w);
        v.serialize(w);
    }
}

/// Decodes one causal span.
///
/// # Errors
///
/// Returns a [`WireError`] on truncated or invalid bodies.
pub fn get_span(r: &mut ByteReader<'_>) -> Result<CausalSpan, WireError> {
    let trace_id = r.get_u64()?;
    let span_id = r.get_u64()?;
    let parent_id = r.get_u64()?;
    let stage = String::deserialize(r)?;
    let name = String::deserialize(r)?;
    let track = r.get_u32()?;
    let ts_ns = r.get_u64()?;
    let dur_ns = r.get_u64()?;
    let n = r.get_u64()?;
    // Cap pre-allocation by what the body could possibly hold (two length-
    // prefixed strings per arg cannot be smaller than 2 bytes each).
    let mut args = Vec::with_capacity((n as usize).min(r.remaining() / 2).min(1024));
    for _ in 0..n {
        args.push((String::deserialize(r)?, String::deserialize(r)?));
    }
    Ok(CausalSpan {
        trace_id,
        span_id,
        parent_id,
        stage,
        name,
        track,
        ts_ns,
        dur_ns,
        args,
    })
}

// Binary bodies for the request/reply vocabulary. These are the canonical
// encodings (the JSON codec is the self-describing alternative); they are
// defined here so `JobRequest::cache_key` and `codec::BinCodec` cannot
// drift apart.

impl ShipSerialize for JobRequest {
    fn serialize(&self, w: &mut ByteWriter) {
        w.put_u64(self.id);
        self.spec.serialize(w);
        put_archs(w, &self.archs);
        w.put_u8(self.backend.tag());
        w.put_bool(self.want_trace);
        // Version-2 extension, *always* appended by this encoder. The
        // decoder is self-extending: a version-1 body simply ends after
        // `want_trace` and the extension defaults apply.
        match self.trace {
            Some(ctx) => {
                w.put_bool(true);
                w.put_u64(ctx.trace_id);
                w.put_u64(ctx.parent_span);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.want_progress);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let id = r.get_u64()?;
        let spec = ModelSpec::deserialize(r)?;
        let archs = get_archs(r)?;
        let backend = BackendChoice::from_tag(r.get_u8()?)?;
        let want_trace = r.get_bool()?;
        // Trailing-optional extension: absent on version-1 bodies.
        let (trace, want_progress) = if r.remaining() == 0 {
            (None, false)
        } else {
            let trace = if r.get_bool()? {
                Some(TraceCtx {
                    trace_id: r.get_u64()?,
                    parent_span: r.get_u64()?,
                })
            } else {
                None
            };
            (trace, r.get_bool()?)
        };
        Ok(JobRequest {
            id,
            spec,
            archs,
            backend,
            want_trace,
            trace,
            want_progress,
        })
    }
}

impl ShipSerialize for Reply {
    fn serialize(&self, w: &mut ByteWriter) {
        match self {
            Reply::Accepted { id } => {
                w.put_u8(0);
                w.put_u64(*id);
            }
            Reply::Rejected { id, retry_after_ms } => {
                w.put_u8(1);
                w.put_u64(*id);
                w.put_u64(*retry_after_ms);
            }
            Reply::Row { id, row } => {
                w.put_u8(2);
                w.put_u64(*id);
                row.serialize(w);
            }
            Reply::TraceChunk { id, data } => {
                w.put_u8(3);
                w.put_u64(*id);
                data.serialize(w);
            }
            Reply::Done { id, rows, cached } => {
                w.put_u8(4);
                w.put_u64(*id);
                w.put_u64(*rows);
                w.put_bool(*cached);
            }
            Reply::Error { id, message } => {
                w.put_u8(5);
                w.put_u64(*id);
                message.serialize(w);
            }
            Reply::Progress {
                id,
                done,
                total,
                pruned,
                eta_hint_ps,
            } => {
                w.put_u8(6);
                w.put_u64(*id);
                w.put_u64(*done);
                w.put_u64(*total);
                w.put_u64(*pruned);
                w.put_u64(*eta_hint_ps);
            }
            Reply::Spans { id, spans } => {
                w.put_u8(7);
                w.put_u64(*id);
                w.put_u64(spans.len() as u64);
                for s in spans {
                    put_span(w, s);
                }
            }
        }
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Reply::Accepted { id: r.get_u64()? }),
            1 => Ok(Reply::Rejected {
                id: r.get_u64()?,
                retry_after_ms: r.get_u64()?,
            }),
            2 => Ok(Reply::Row {
                id: r.get_u64()?,
                row: ReportRow::deserialize(r)?,
            }),
            3 => Ok(Reply::TraceChunk {
                id: r.get_u64()?,
                data: Vec::<u8>::deserialize(r)?,
            }),
            4 => Ok(Reply::Done {
                id: r.get_u64()?,
                rows: r.get_u64()?,
                cached: r.get_bool()?,
            }),
            5 => Ok(Reply::Error {
                id: r.get_u64()?,
                message: String::deserialize(r)?,
            }),
            6 => Ok(Reply::Progress {
                id: r.get_u64()?,
                done: r.get_u64()?,
                total: r.get_u64()?,
                pruned: r.get_u64()?,
                eta_hint_ps: r.get_u64()?,
            }),
            7 => {
                let id = r.get_u64()?;
                let n = r.get_u64()?;
                let mut spans = Vec::with_capacity((n as usize).min(r.remaining()).min(4096));
                for _ in 0..n {
                    spans.push(get_span(r)?);
                }
                Ok(Reply::Spans { id, spans })
            }
            t => Err(WireError::InvalidValue(format!("unknown reply tag {t}"))),
        }
    }
}

/// Writes one frame: `u64` LE length prefix + body.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u64).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame, enforcing `max_frame` *before* allocating the body.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer closed between frames), which is how connection teardown is
/// distinguished from corruption.
///
/// # Errors
///
/// [`GatewayError::Frame`] when the stream ends mid-prefix or the prefix
/// exceeds `max_frame`; [`GatewayError::Io`] on transport failures
/// (including a stream cut mid-body).
pub fn read_frame(r: &mut impl Read, max_frame: u64) -> Result<Option<Vec<u8>>, GatewayError> {
    let mut prefix = [0u8; 8];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(GatewayError::Frame(format!(
                    "connection closed mid-prefix ({got}/8 bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(GatewayError::Io(e)),
        }
    }
    let len = u64::from_le_bytes(prefix);
    if len > max_frame {
        return Err(GatewayError::Frame(format!(
            "frame of {len} bytes exceeds the {max_frame}-byte limit"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes the 6-byte handshake (magic, [`VERSION`], codec tag).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_handshake(w: &mut impl Write, codec_tag: u8) -> io::Result<()> {
    write_handshake_version(w, VERSION, codec_tag)
}

/// Writes the 6-byte handshake at an explicit protocol version — how a
/// server echoes the version it negotiated, and how compatibility tests
/// speak as an old client.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_handshake_version(w: &mut impl Write, version: u8, codec_tag: u8) -> io::Result<()> {
    let mut buf = [0u8; 6];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4] = version;
    buf[5] = codec_tag;
    w.write_all(&buf)
}

/// Reads and validates the handshake, returning `(version, codec_tag)`.
/// Every version in `MIN_VERSION..=VERSION` is accepted; the caller pins
/// per-connection behavior to the returned version.
///
/// # Errors
///
/// [`GatewayError::Handshake`] on bad magic or a version outside the
/// supported range; [`GatewayError::Io`] when the stream ends early.
pub fn read_handshake(r: &mut impl Read) -> Result<(u8, u8), GatewayError> {
    let mut buf = [0u8; 6];
    r.read_exact(&mut buf)?;
    if buf[..4] != MAGIC {
        return Err(GatewayError::Handshake(format!(
            "bad magic {:02x?} (expected {:02x?})",
            &buf[..4],
            MAGIC
        )));
    }
    if !(MIN_VERSION..=VERSION).contains(&buf[4]) {
        return Err(GatewayError::Handshake(format!(
            "unsupported protocol version {} (this build speaks {MIN_VERSION}..={VERSION})",
            buf[4]
        )));
    }
    Ok((buf[4], buf[5]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shiptlm_explore::prelude::ArchSpec;
    use shiptlm_testkit::model::GenConfig;

    fn a_request() -> JobRequest {
        JobRequest {
            id: 7,
            spec: ModelSpec::random(42, &GenConfig::default()),
            archs: vec![ArchSpec::plb(), ArchSpec::crossbar().with_burst(16)],
            backend: BackendChoice::Auto,
            want_trace: true,
            trace: None,
            want_progress: false,
        }
    }

    #[test]
    fn request_round_trips_in_binary() {
        let req = a_request();
        let back: JobRequest = from_wire(&to_wire(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn traced_request_round_trips_in_binary() {
        let mut req = a_request();
        req.trace = Some(TraceCtx {
            trace_id: 0xdead_beef,
            parent_span: 42,
        });
        req.want_progress = true;
        let back: JobRequest = from_wire(&to_wire(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn version1_request_body_decodes_with_extension_defaults() {
        // A v1 peer encodes exactly the base fields — no extension bytes.
        let req = a_request();
        let mut w = ByteWriter::new();
        w.put_u64(req.id);
        req.spec.serialize(&mut w);
        put_archs(&mut w, &req.archs);
        w.put_u8(req.backend.tag());
        w.put_bool(req.want_trace);
        let back: JobRequest = from_wire(&w.into_bytes()).unwrap();
        assert_eq!(back, req, "v1 body must decode with trace=None/progress=false");
        // And the cache key of the extension-free request matches what the
        // v1 encoder produced — old and new clients share cache entries.
        assert_eq!(back.cache_key(), req.cache_key());
    }

    #[test]
    fn cache_key_ignores_the_correlation_id() {
        let a = a_request();
        let mut b = a.clone();
        b.id = 99;
        assert_eq!(a.cache_key(), b.cache_key());
        let mut c = a.clone();
        c.want_trace = false;
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn cache_key_separates_traced_from_untraced_but_not_by_ids() {
        let a = a_request();
        let mut traced = a.clone();
        traced.trace = Some(TraceCtx {
            trace_id: 1,
            parent_span: 2,
        });
        assert_ne!(
            a.cache_key(),
            traced.cache_key(),
            "traced entries carry spans; they must not alias untraced ones"
        );
        let mut traced2 = traced.clone();
        traced2.trace = Some(TraceCtx {
            trace_id: 777,
            parent_span: 888,
        });
        traced2.want_progress = true;
        assert_eq!(
            traced.cache_key(),
            traced2.cache_key(),
            "concrete ids and progress pacing must not fragment the cache"
        );
    }

    #[test]
    fn replies_round_trip_in_binary() {
        let replies = vec![
            Reply::Accepted { id: 1 },
            Reply::Rejected {
                id: 2,
                retry_after_ms: 50,
            },
            Reply::Row {
                id: 3,
                row: ReportRow {
                    label: "plb/fixed/b64".into(),
                    sim_time_ps: 123_456,
                    messages: 9,
                    bytes: 4096,
                    delta_cycles: 77,
                },
            },
            Reply::TraceChunk {
                id: 4,
                data: b"chan,count\n".to_vec(),
            },
            Reply::Done {
                id: 5,
                rows: 2,
                cached: true,
            },
            Reply::Error {
                id: 6,
                message: "boom".into(),
            },
            Reply::Progress {
                id: 7,
                done: 12,
                total: 48,
                pruned: 3,
                eta_hint_ps: 9_000_000,
            },
            Reply::Spans {
                id: 8,
                spans: vec![CausalSpan {
                    trace_id: 0xfeed,
                    span_id: 10,
                    parent_id: 3,
                    stage: "candidate".into(),
                    name: "plb/fixed/b64".into(),
                    track: 1,
                    ts_ns: 5_500,
                    dur_ns: 1_200,
                    args: vec![("index".into(), "0".into())],
                }],
            },
        ];
        for r in replies {
            let back: Reply = from_wire(&to_wire(&r)).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.id(), r.id());
        }
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(err, GatewayError::Frame(_)), "got {err}");
    }

    #[test]
    fn truncated_prefix_is_a_frame_error() {
        let buf = [1u8, 2, 3];
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(err, GatewayError::Frame(_)), "got {err}");
    }

    #[test]
    fn handshake_round_trips_and_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_handshake(&mut buf, 1).unwrap();
        assert_eq!(read_handshake(&mut &buf[..]).unwrap(), (VERSION, 1));
        buf[0] = b'X';
        let err = read_handshake(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, GatewayError::Handshake(_)), "got {err}");
    }

    #[test]
    fn handshake_accepts_the_whole_supported_version_range() {
        for v in MIN_VERSION..=VERSION {
            let mut buf = Vec::new();
            write_handshake_version(&mut buf, v, 0).unwrap();
            assert_eq!(read_handshake(&mut &buf[..]).unwrap(), (v, 0));
        }
        let mut buf = Vec::new();
        write_handshake_version(&mut buf, VERSION + 1, 0).unwrap();
        let err = read_handshake(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, GatewayError::Handshake(_)), "got {err}");
    }
}
