//! Gateway wire protocol: handshake, length-prefixed frames, and the
//! job/reply vocabulary shared by server and client.
//!
//! The framing layer is deliberately tiny: after a 6-byte handshake
//! (magic + version + codec tag), every message in either direction is a
//! `u64` little-endian length prefix followed by that many bytes of
//! codec-encoded body. The body encoding is pluggable (see
//! [`crate::codec`]); the frame layer itself never trusts the prefix —
//! lengths above the negotiated cap are rejected before any allocation.

use std::fmt;
use std::io::{self, Read, Write};

use shiptlm_explore::prelude::{ArchSpec, Backend, RunMetrics};
use shiptlm_ship::prelude::*;
use shiptlm_testkit::model::ModelSpec;
use shiptlm_testkit::wirecase::{get_archs, put_archs};

/// Handshake magic: the first four bytes of every gateway connection.
pub const MAGIC: [u8; 4] = *b"SHTG";

/// Protocol version carried in the handshake.
pub const VERSION: u8 = 1;

/// Default cap on a single frame body, in bytes.
pub const DEFAULT_MAX_FRAME: u64 = 16 * 1024 * 1024;

/// Everything that can go wrong between a gateway client and server.
#[derive(Debug)]
pub enum GatewayError {
    /// Transport-level I/O failure.
    Io(io::Error),
    /// Structurally invalid binary body (classified by `ship::wire`).
    Wire(WireError),
    /// The body decoded as bytes but not as a protocol message.
    Codec(String),
    /// Frame-layer violation: oversized prefix, truncated prefix, or a
    /// connection cut mid-body.
    Frame(String),
    /// Bad magic, unsupported version, or unknown codec tag.
    Handshake(String),
    /// A well-formed message that violates the request/reply state
    /// machine (e.g. a reply for a different job id).
    Protocol(String),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "i/o error: {e}"),
            GatewayError::Wire(e) => write!(f, "wire decode error: {e}"),
            GatewayError::Codec(m) => write!(f, "codec error: {m}"),
            GatewayError::Frame(m) => write!(f, "frame error: {m}"),
            GatewayError::Handshake(m) => write!(f, "handshake error: {m}"),
            GatewayError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> Self {
        GatewayError::Io(e)
    }
}

impl From<WireError> for GatewayError {
    fn from(e: WireError) -> Self {
        GatewayError::Wire(e)
    }
}

/// Which execution backend the client wants for the job.
///
/// Mirrors [`Backend`] but lives in the protocol so the wire encoding is
/// stable even if the exploration enum grows variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// The delta-cycle kernel (deterministic default).
    #[default]
    De,
    /// Direct execution; fails if the model disqualifies.
    Direct,
    /// Direct execution with transparent DE fallback.
    Auto,
}

impl BackendChoice {
    /// Stable one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            BackendChoice::De => 0,
            BackendChoice::Direct => 1,
            BackendChoice::Auto => 2,
        }
    }

    /// Decodes a wire tag.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidValue`] for unknown tags.
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(BackendChoice::De),
            1 => Ok(BackendChoice::Direct),
            2 => Ok(BackendChoice::Auto),
            t => Err(WireError::InvalidValue(format!("unknown backend tag {t}"))),
        }
    }

    /// Stable textual name (used by the JSON codec).
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::De => "de",
            BackendChoice::Direct => "direct",
            BackendChoice::Auto => "auto",
        }
    }

    /// Parses the textual name.
    ///
    /// # Errors
    ///
    /// Returns a description of the unknown name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "de" => Ok(BackendChoice::De),
            "direct" => Ok(BackendChoice::Direct),
            "auto" => Ok(BackendChoice::Auto),
            other => Err(format!("unknown backend '{other}'")),
        }
    }

    /// The exploration backend this choice selects.
    pub fn to_backend(self) -> Backend {
        match self {
            BackendChoice::De => Backend::De,
            BackendChoice::Direct => Backend::Direct,
            BackendChoice::Auto => Backend::Auto,
        }
    }
}

/// One sweep job: a model, the candidate architectures to map it onto,
/// and execution knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Client-chosen correlation id, echoed on every reply.
    pub id: u64,
    /// The model to elaborate (testkit corpus format).
    pub spec: ModelSpec,
    /// Candidate architectures to sweep.
    pub archs: Vec<ArchSpec>,
    /// Execution backend for the component-assembly level.
    pub backend: BackendChoice,
    /// Stream the per-channel latency trace back in chunks.
    pub want_trace: bool,
}

impl JobRequest {
    /// Content address of this job: the canonical binary encoding of
    /// everything that determines the result — model, architectures,
    /// backend and trace flag, but *not* the correlation id, so identical
    /// work from different clients shares one cache entry.
    pub fn cache_key(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.spec.serialize(&mut w);
        put_archs(&mut w, &self.archs);
        w.put_u8(self.backend.tag());
        w.put_bool(self.want_trace);
        w.into_bytes()
    }
}

/// One deterministic report row, the streamed unit of a job result.
///
/// Host wall-clock is deliberately excluded: two runs of the same job must
/// produce byte-identical rows so the content-addressed cache and the
/// soak test's cross-client comparisons hold exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportRow {
    /// Architecture label (see `ArchSpec::label`).
    pub label: String,
    /// Total simulated time in picoseconds.
    pub sim_time_ps: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Kernel delta cycles.
    pub delta_cycles: u64,
}

impl ReportRow {
    /// Projects the deterministic subset of a sweep row.
    pub fn from_metrics(m: &RunMetrics) -> ReportRow {
        ReportRow {
            label: m.label.clone(),
            sim_time_ps: m.sim_time.as_ps(),
            messages: m.messages,
            bytes: m.bytes,
            delta_cycles: m.delta_cycles,
        }
    }
}

impl ShipSerialize for ReportRow {
    fn serialize(&self, w: &mut ByteWriter) {
        self.label.serialize(w);
        w.put_u64(self.sim_time_ps);
        w.put_u64(self.messages);
        w.put_u64(self.bytes);
        w.put_u64(self.delta_cycles);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(ReportRow {
            label: String::deserialize(r)?,
            sim_time_ps: r.get_u64()?,
            messages: r.get_u64()?,
            bytes: r.get_u64()?,
            delta_cycles: r.get_u64()?,
        })
    }
}

/// Server-to-client messages. Every variant echoes the job id it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The job passed admission and is queued.
    Accepted {
        /// Echoed correlation id.
        id: u64,
    },
    /// The admission queue is full; retry after the given backoff.
    Rejected {
        /// Echoed correlation id.
        id: u64,
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// One report row of the running (or cached) job.
    Row {
        /// Echoed correlation id.
        id: u64,
        /// The row.
        row: ReportRow,
    },
    /// One chunk of the per-channel latency trace (CSV bytes).
    TraceChunk {
        /// Echoed correlation id.
        id: u64,
        /// Raw CSV bytes; concatenate chunks in arrival order.
        data: Vec<u8>,
    },
    /// The job finished; no more replies will arrive for this id.
    Done {
        /// Echoed correlation id.
        id: u64,
        /// Number of `Row` replies that were streamed.
        rows: u64,
        /// Whether the result came from the content-addressed cache.
        cached: bool,
    },
    /// The job failed (mapping error, model panic, or decode failure).
    Error {
        /// Echoed correlation id (0 when the request never decoded).
        id: u64,
        /// Human-readable failure description.
        message: String,
    },
}

impl Reply {
    /// The job id this reply answers.
    pub fn id(&self) -> u64 {
        match self {
            Reply::Accepted { id }
            | Reply::Rejected { id, .. }
            | Reply::Row { id, .. }
            | Reply::TraceChunk { id, .. }
            | Reply::Done { id, .. }
            | Reply::Error { id, .. } => *id,
        }
    }
}

// Binary bodies for the request/reply vocabulary. These are the canonical
// encodings (the JSON codec is the self-describing alternative); they are
// defined here so `JobRequest::cache_key` and `codec::BinCodec` cannot
// drift apart.

impl ShipSerialize for JobRequest {
    fn serialize(&self, w: &mut ByteWriter) {
        w.put_u64(self.id);
        self.spec.serialize(w);
        put_archs(w, &self.archs);
        w.put_u8(self.backend.tag());
        w.put_bool(self.want_trace);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(JobRequest {
            id: r.get_u64()?,
            spec: ModelSpec::deserialize(r)?,
            archs: get_archs(r)?,
            backend: BackendChoice::from_tag(r.get_u8()?)?,
            want_trace: r.get_bool()?,
        })
    }
}

impl ShipSerialize for Reply {
    fn serialize(&self, w: &mut ByteWriter) {
        match self {
            Reply::Accepted { id } => {
                w.put_u8(0);
                w.put_u64(*id);
            }
            Reply::Rejected { id, retry_after_ms } => {
                w.put_u8(1);
                w.put_u64(*id);
                w.put_u64(*retry_after_ms);
            }
            Reply::Row { id, row } => {
                w.put_u8(2);
                w.put_u64(*id);
                row.serialize(w);
            }
            Reply::TraceChunk { id, data } => {
                w.put_u8(3);
                w.put_u64(*id);
                data.serialize(w);
            }
            Reply::Done { id, rows, cached } => {
                w.put_u8(4);
                w.put_u64(*id);
                w.put_u64(*rows);
                w.put_bool(*cached);
            }
            Reply::Error { id, message } => {
                w.put_u8(5);
                w.put_u64(*id);
                message.serialize(w);
            }
        }
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Reply::Accepted { id: r.get_u64()? }),
            1 => Ok(Reply::Rejected {
                id: r.get_u64()?,
                retry_after_ms: r.get_u64()?,
            }),
            2 => Ok(Reply::Row {
                id: r.get_u64()?,
                row: ReportRow::deserialize(r)?,
            }),
            3 => Ok(Reply::TraceChunk {
                id: r.get_u64()?,
                data: Vec::<u8>::deserialize(r)?,
            }),
            4 => Ok(Reply::Done {
                id: r.get_u64()?,
                rows: r.get_u64()?,
                cached: r.get_bool()?,
            }),
            5 => Ok(Reply::Error {
                id: r.get_u64()?,
                message: String::deserialize(r)?,
            }),
            t => Err(WireError::InvalidValue(format!("unknown reply tag {t}"))),
        }
    }
}

/// Writes one frame: `u64` LE length prefix + body.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u64).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame, enforcing `max_frame` *before* allocating the body.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer closed between frames), which is how connection teardown is
/// distinguished from corruption.
///
/// # Errors
///
/// [`GatewayError::Frame`] when the stream ends mid-prefix or the prefix
/// exceeds `max_frame`; [`GatewayError::Io`] on transport failures
/// (including a stream cut mid-body).
pub fn read_frame(r: &mut impl Read, max_frame: u64) -> Result<Option<Vec<u8>>, GatewayError> {
    let mut prefix = [0u8; 8];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(GatewayError::Frame(format!(
                    "connection closed mid-prefix ({got}/8 bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(GatewayError::Io(e)),
        }
    }
    let len = u64::from_le_bytes(prefix);
    if len > max_frame {
        return Err(GatewayError::Frame(format!(
            "frame of {len} bytes exceeds the {max_frame}-byte limit"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes the 6-byte handshake (magic, version, codec tag).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_handshake(w: &mut impl Write, codec_tag: u8) -> io::Result<()> {
    let mut buf = [0u8; 6];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4] = VERSION;
    buf[5] = codec_tag;
    w.write_all(&buf)
}

/// Reads and validates the handshake, returning the codec tag.
///
/// # Errors
///
/// [`GatewayError::Handshake`] on bad magic or version;
/// [`GatewayError::Io`] when the stream ends early.
pub fn read_handshake(r: &mut impl Read) -> Result<u8, GatewayError> {
    let mut buf = [0u8; 6];
    r.read_exact(&mut buf)?;
    if buf[..4] != MAGIC {
        return Err(GatewayError::Handshake(format!(
            "bad magic {:02x?} (expected {:02x?})",
            &buf[..4],
            MAGIC
        )));
    }
    if buf[4] != VERSION {
        return Err(GatewayError::Handshake(format!(
            "unsupported protocol version {} (this build speaks {VERSION})",
            buf[4]
        )));
    }
    Ok(buf[5])
}

#[cfg(test)]
mod tests {
    use super::*;
    use shiptlm_explore::prelude::ArchSpec;
    use shiptlm_testkit::model::GenConfig;

    fn a_request() -> JobRequest {
        JobRequest {
            id: 7,
            spec: ModelSpec::random(42, &GenConfig::default()),
            archs: vec![ArchSpec::plb(), ArchSpec::crossbar().with_burst(16)],
            backend: BackendChoice::Auto,
            want_trace: true,
        }
    }

    #[test]
    fn request_round_trips_in_binary() {
        let req = a_request();
        let back: JobRequest = from_wire(&to_wire(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn cache_key_ignores_the_correlation_id() {
        let a = a_request();
        let mut b = a.clone();
        b.id = 99;
        assert_eq!(a.cache_key(), b.cache_key());
        let mut c = a.clone();
        c.want_trace = false;
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn replies_round_trip_in_binary() {
        let replies = vec![
            Reply::Accepted { id: 1 },
            Reply::Rejected {
                id: 2,
                retry_after_ms: 50,
            },
            Reply::Row {
                id: 3,
                row: ReportRow {
                    label: "plb/fixed/b64".into(),
                    sim_time_ps: 123_456,
                    messages: 9,
                    bytes: 4096,
                    delta_cycles: 77,
                },
            },
            Reply::TraceChunk {
                id: 4,
                data: b"chan,count\n".to_vec(),
            },
            Reply::Done {
                id: 5,
                rows: 2,
                cached: true,
            },
            Reply::Error {
                id: 6,
                message: "boom".into(),
            },
        ];
        for r in replies {
            let back: Reply = from_wire(&to_wire(&r)).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.id(), r.id());
        }
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(err, GatewayError::Frame(_)), "got {err}");
    }

    #[test]
    fn truncated_prefix_is_a_frame_error() {
        let buf = [1u8, 2, 3];
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(err, GatewayError::Frame(_)), "got {err}");
    }

    #[test]
    fn handshake_round_trips_and_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_handshake(&mut buf, 1).unwrap();
        assert_eq!(read_handshake(&mut &buf[..]).unwrap(), 1);
        buf[0] = b'X';
        let err = read_handshake(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, GatewayError::Handshake(_)), "got {err}");
    }
}
