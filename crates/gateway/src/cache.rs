//! Content-addressed, single-flight, bounded result cache.
//!
//! Jobs are keyed by [`JobRequest::cache_key`] — the canonical binary
//! encoding of everything that determines the result. The cache is
//! *single-flight*: when two executors pick up the same job concurrently,
//! the first computes and the second blocks on the slot's condvar instead
//! of duplicating the sweep. Failures are cached exactly like successes
//! (the sweep is deterministic, so a failed mapping fails identically on
//! every retry — recomputing it would only burn pool time).
//!
//! The cache is bounded: when filling an entry pushes the map past
//! `max_entries`, the least-recently-used *ready* slot is evicted. Pending
//! slots are never evicted — waiters are parked on their condvars and an
//! evicted pending slot would strand them.
//!
//! [`JobRequest::cache_key`]: crate::proto::JobRequest::cache_key

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use shiptlm_kernel::causal::CausalSpan;

use crate::lock;
use crate::proto::ReportRow;

/// Default entry bound for [`ResultCache::new`].
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// The materialized output of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// Deterministic report rows, one per candidate architecture.
    pub rows: Vec<ReportRow>,
    /// Per-channel latency trace (CSV bytes); empty unless the job asked
    /// for a trace.
    pub trace: Vec<u8>,
    /// Trace-neutral causal spans from the sweep (role-detect, chunk,
    /// candidate, and kernel txn spans), stored with
    /// [`shiptlm_kernel::causal::neutralize`] applied so one cached entry
    /// can be replayed under every requester's own trace id via
    /// [`shiptlm_kernel::causal::stamp`]. Empty unless the job was traced.
    pub spans: Vec<CausalSpan>,
    /// Kernel txn-recorder ring events dropped across every candidate of
    /// this job (capacity overflow), surfaced on `/metrics`.
    pub txn_dropped: u64,
}

/// What a job resolves to: output, or a deterministic failure message.
pub type JobResult = Result<JobOutput, String>;

/// How a [`ResultCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// This call ran the compute closure (the miss path).
    Computed,
    /// The entry was already filled when the call looked it up.
    Hit,
    /// Another executor was mid-compute; this call parked on the slot's
    /// condvar until the owner filled it (single-flight coalescing).
    Waited,
}

impl CacheOutcome {
    /// `true` when this call did *not* run the sweep itself.
    pub fn served_from_cache(self) -> bool {
        !matches!(self, CacheOutcome::Computed)
    }

    /// Stable label for span args and logs.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Computed => "miss",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Waited => "wait",
        }
    }
}

#[derive(Debug)]
enum SlotState {
    /// An executor is computing this entry; waiters park on the condvar.
    Pending,
    /// The entry is filled.
    Ready(JobResult),
}

#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
    /// LRU stamp from the cache-global tick; refreshed on every lookup.
    last_used: AtomicU64,
    /// Approximate heap bytes of the ready result (0 while pending).
    bytes: AtomicU64,
}

/// The gateway's result cache. Cheap to share behind an [`Arc`].
#[derive(Debug)]
pub struct ResultCache {
    slots: Mutex<HashMap<Vec<u8>, Arc<Slot>>>,
    max_entries: usize,
    tick: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::bounded(DEFAULT_CACHE_ENTRIES)
    }
}

impl ResultCache {
    /// An empty cache with the default entry bound.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// An empty cache evicting LRU entries beyond `max_entries` (clamped
    /// to at least 1).
    pub fn bounded(max_entries: usize) -> Self {
        ResultCache {
            slots: Mutex::new(HashMap::new()),
            max_entries: max_entries.max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Number of entries (both pending and ready).
    pub fn len(&self) -> usize {
        lock(&self.slots).len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Approximate heap bytes held by ready entries.
    pub fn approx_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Looks up `key`; on a miss, runs `compute` and fills the entry.
    ///
    /// Returns the result plus how the call was satisfied — see
    /// [`CacheOutcome`]. `compute` must not panic: the executor converts
    /// job panics into `Err` before they reach the cache, so a pending
    /// slot is always eventually filled and waiters cannot deadlock.
    pub fn get_or_compute(
        &self,
        key: Vec<u8>,
        compute: impl FnOnce() -> JobResult,
    ) -> (JobResult, CacheOutcome) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let (slot, owner) = {
            let mut map = lock(&self.slots);
            match map.get(&key) {
                Some(slot) => {
                    slot.last_used.store(stamp, Ordering::Relaxed);
                    (Arc::clone(slot), false)
                }
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        ready: Condvar::new(),
                        last_used: AtomicU64::new(stamp),
                        bytes: AtomicU64::new(0),
                    });
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if owner {
            let result = compute();
            let size = approx_result_bytes(&result);
            slot.bytes.store(size, Ordering::Relaxed);
            self.bytes.fetch_add(size, Ordering::Relaxed);
            {
                let mut state = lock(&slot.state);
                *state = SlotState::Ready(result.clone());
            }
            slot.ready.notify_all();
            self.evict_excess();
            (result, CacheOutcome::Computed)
        } else {
            let mut state = lock(&slot.state);
            let waited = matches!(*state, SlotState::Pending);
            while matches!(*state, SlotState::Pending) {
                state = slot
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            let outcome = if waited {
                CacheOutcome::Waited
            } else {
                CacheOutcome::Hit
            };
            match &*state {
                SlotState::Ready(result) => (result.clone(), outcome),
                SlotState::Pending => unreachable!("woken while still pending"),
            }
        }
    }

    /// Evicts least-recently-used *ready* slots until the map is within
    /// `max_entries`. Pending slots are skipped: their waiters are parked
    /// on condvars held through the slot's `Arc`, and the owner still has
    /// to fill them.
    fn evict_excess(&self) {
        let mut map = lock(&self.slots);
        while map.len() > self.max_entries {
            let victim = map
                .iter()
                .filter(|(_, slot)| {
                    matches!(*lock(&slot.state), SlotState::Ready(_))
                })
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(key, _)| key.clone());
            let Some(key) = victim else { break };
            if let Some(slot) = map.remove(&key) {
                let size = slot.bytes.load(Ordering::Relaxed);
                self.bytes.fetch_sub(size, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Rough heap footprint of one cached result, for the
/// `gateway_cache_bytes` gauge. An estimate, not an allocator audit:
/// strings and vectors are counted by length plus a small per-object
/// overhead.
fn approx_result_bytes(result: &JobResult) -> u64 {
    match result {
        Ok(output) => {
            let rows: usize = output
                .rows
                .iter()
                .map(|r| r.label.len() + 5 * std::mem::size_of::<u64>())
                .sum();
            let spans: usize = output
                .spans
                .iter()
                .map(|s| {
                    s.stage.len()
                        + s.name.len()
                        + s.args
                            .iter()
                            .map(|(k, v)| k.len() + v.len() + 16)
                            .sum::<usize>()
                        + 64
                })
                .sum();
            (rows + output.trace.len() + spans + 64) as u64
        }
        Err(message) => (message.len() + 64) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn output(n: u64) -> JobOutput {
        JobOutput {
            rows: vec![ReportRow {
                label: format!("row{n}"),
                sim_time_ps: n,
                messages: n,
                bytes: n,
                delta_cycles: n,
            }],
            trace: Vec::new(),
            spans: Vec::new(),
            txn_dropped: 0,
        }
    }

    #[test]
    fn second_lookup_is_a_hit_and_does_not_recompute() {
        let cache = ResultCache::new();
        let computed = AtomicUsize::new(0);
        let run = || {
            cache.get_or_compute(b"k".to_vec(), || {
                computed.fetch_add(1, Ordering::SeqCst);
                Ok(output(1))
            })
        };
        let (first, first_outcome) = run();
        let (second, second_outcome) = run();
        assert_eq!(first, second);
        assert_eq!(first_outcome, CacheOutcome::Computed);
        assert_eq!(second_outcome, CacheOutcome::Hit);
        assert!(second_outcome.served_from_cache());
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.approx_bytes() > 0, "ready entries are accounted");
    }

    #[test]
    fn errors_are_cached_like_successes() {
        let cache = ResultCache::new();
        let computed = AtomicUsize::new(0);
        for round in 0..3 {
            let (result, outcome) = cache.get_or_compute(b"bad".to_vec(), || {
                computed.fetch_add(1, Ordering::SeqCst);
                Err("deterministic failure".into())
            });
            assert_eq!(result, Err("deterministic failure".to_string()));
            assert_eq!(outcome.served_from_cache(), round > 0);
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_same_key_is_single_flight() {
        let cache = Arc::new(ResultCache::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let coalesced = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                let coalesced = Arc::clone(&coalesced);
                s.spawn(move || {
                    let (result, outcome) = cache.get_or_compute(b"shared".to_vec(), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Hold the slot pending long enough for the other
                        // threads to pile onto the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(output(42))
                    });
                    assert_eq!(result.unwrap(), output(42));
                    if outcome.served_from_cache() {
                        coalesced.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
        assert_eq!(coalesced.load(Ordering::SeqCst), 7, "everyone else hit");
    }

    #[test]
    fn lru_bound_evicts_the_coldest_ready_entry() {
        let cache = ResultCache::bounded(2);
        let (_, _) = cache.get_or_compute(b"a".to_vec(), || Ok(output(1)));
        let (_, _) = cache.get_or_compute(b"b".to_vec(), || Ok(output(2)));
        // Touch "a" so "b" becomes the LRU victim.
        let (_, outcome) = cache.get_or_compute(b"a".to_vec(), || unreachable!());
        assert_eq!(outcome, CacheOutcome::Hit);
        let (_, _) = cache.get_or_compute(b"c".to_vec(), || Ok(output(3)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // "b" was evicted; "a" survives.
        let (_, a_again) = cache.get_or_compute(b"a".to_vec(), || Ok(output(1)));
        assert_eq!(a_again, CacheOutcome::Hit);
        let (_, b_again) = cache.get_or_compute(b"b".to_vec(), || Ok(output(2)));
        assert_eq!(b_again, CacheOutcome::Computed, "evicted entry recomputes");
    }

    #[test]
    fn byte_accounting_shrinks_on_eviction() {
        let cache = ResultCache::bounded(1);
        let big = || {
            Ok(JobOutput {
                rows: Vec::new(),
                trace: vec![0u8; 4096],
                spans: Vec::new(),
                txn_dropped: 0,
            })
        };
        let (_, _) = cache.get_or_compute(b"x".to_vec(), big);
        let after_one = cache.approx_bytes();
        assert!(after_one >= 4096);
        let (_, _) = cache.get_or_compute(b"y".to_vec(), big);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.approx_bytes(), after_one, "evicted bytes released");
    }
}
