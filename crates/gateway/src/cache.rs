//! Content-addressed, single-flight result cache.
//!
//! Jobs are keyed by [`JobRequest::cache_key`] — the canonical binary
//! encoding of everything that determines the result. The cache is
//! *single-flight*: when two executors pick up the same job concurrently,
//! the first computes and the second blocks on the slot's condvar instead
//! of duplicating the sweep. Failures are cached exactly like successes
//! (the sweep is deterministic, so a failed mapping fails identically on
//! every retry — recomputing it would only burn pool time).
//!
//! [`JobRequest::cache_key`]: crate::proto::JobRequest::cache_key

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::lock;
use crate::proto::ReportRow;

/// The materialized output of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// Deterministic report rows, one per candidate architecture.
    pub rows: Vec<ReportRow>,
    /// Per-channel latency trace (CSV bytes); empty unless the job asked
    /// for a trace.
    pub trace: Vec<u8>,
}

/// What a job resolves to: output, or a deterministic failure message.
pub type JobResult = Result<JobOutput, String>;

#[derive(Debug)]
enum SlotState {
    /// An executor is computing this entry; waiters park on the condvar.
    Pending,
    /// The entry is filled.
    Ready(JobResult),
}

#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// The gateway's result cache. Cheap to share behind an [`Arc`].
#[derive(Debug, Default)]
pub struct ResultCache {
    slots: Mutex<HashMap<Vec<u8>, Arc<Slot>>>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Number of entries (both pending and ready).
    pub fn len(&self) -> usize {
        lock(&self.slots).len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`; on a miss, runs `compute` and fills the entry.
    ///
    /// Returns the result plus whether it was served from the cache
    /// (`true` for both ready hits and waits on an in-flight computation —
    /// either way, this call did not run the sweep).
    ///
    /// `compute` must not panic: the executor converts job panics into
    /// `Err` before they reach the cache, so a pending slot is always
    /// eventually filled and waiters cannot deadlock.
    pub fn get_or_compute(
        &self,
        key: Vec<u8>,
        compute: impl FnOnce() -> JobResult,
    ) -> (JobResult, bool) {
        let (slot, owner) = {
            let mut map = lock(&self.slots);
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        ready: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if owner {
            let result = compute();
            let mut state = lock(&slot.state);
            *state = SlotState::Ready(result.clone());
            slot.ready.notify_all();
            (result, false)
        } else {
            let mut state = lock(&slot.state);
            while matches!(*state, SlotState::Pending) {
                state = slot
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            match &*state {
                SlotState::Ready(result) => (result.clone(), true),
                SlotState::Pending => unreachable!("woken while still pending"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn output(n: u64) -> JobOutput {
        JobOutput {
            rows: vec![ReportRow {
                label: format!("row{n}"),
                sim_time_ps: n,
                messages: n,
                bytes: n,
                delta_cycles: n,
            }],
            trace: Vec::new(),
        }
    }

    #[test]
    fn second_lookup_is_a_hit_and_does_not_recompute() {
        let cache = ResultCache::new();
        let computed = AtomicUsize::new(0);
        let run = || {
            cache.get_or_compute(b"k".to_vec(), || {
                computed.fetch_add(1, Ordering::SeqCst);
                Ok(output(1))
            })
        };
        let (first, hit_a) = run();
        let (second, hit_b) = run();
        assert_eq!(first, second);
        assert!(!hit_a && hit_b);
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_cached_like_successes() {
        let cache = ResultCache::new();
        let computed = AtomicUsize::new(0);
        for round in 0..3 {
            let (result, hit) = cache.get_or_compute(b"bad".to_vec(), || {
                computed.fetch_add(1, Ordering::SeqCst);
                Err("deterministic failure".into())
            });
            assert_eq!(result, Err("deterministic failure".to_string()));
            assert_eq!(hit, round > 0);
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_same_key_is_single_flight() {
        let cache = Arc::new(ResultCache::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    let (result, hit) = cache.get_or_compute(b"shared".to_vec(), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Hold the slot pending long enough for the other
                        // threads to pile onto the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(output(42))
                    });
                    assert_eq!(result.unwrap(), output(42));
                    if hit {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
        assert_eq!(hits.load(Ordering::SeqCst), 7, "everyone else hit");
    }
}
