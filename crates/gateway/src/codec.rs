//! Pluggable frame-body codecs.
//!
//! The gateway negotiates one codec per connection in the handshake. Two
//! are built in:
//!
//! * [`BinCodec`] (tag 0) — the compact canonical binary encoding on
//!   `ship::wire`, shared with [`JobRequest::cache_key`];
//! * [`JsonCodec`] (tag 1) — self-describing text reusing the testkit
//!   corpus format for models and architectures, for hand-written clients
//!   and debugging with standard tools.
//!
//! Both sides of a connection must agree on the codec; the server echoes
//! the client's handshake so a mismatch is caught before any frame flows.

use std::fmt;

use shiptlm_kernel::causal::{CausalSpan, TraceCtx};
use shiptlm_ship::prelude::{from_wire, to_wire};
use shiptlm_testkit::corpus::{arch_from_json, arch_to_json};
use shiptlm_testkit::json::Json;
use shiptlm_testkit::model::ModelSpec;

use crate::proto::{BackendChoice, GatewayError, JobRequest, Reply, ReportRow};

/// One frame-body encoding, negotiated per connection.
pub trait WireCodec: Send + Sync + fmt::Debug {
    /// Stable one-byte handshake tag.
    fn tag(&self) -> u8;
    /// Human-readable name (shows up in errors and metrics).
    fn name(&self) -> &'static str;
    /// Encodes a request body.
    ///
    /// # Errors
    ///
    /// Returns [`GatewayError::Codec`] when the request cannot be
    /// represented (e.g. non-UTF-8 where the encoding requires text).
    fn encode_request(&self, req: &JobRequest) -> Result<Vec<u8>, GatewayError>;
    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// Returns a classified [`GatewayError`] on malformed input; never
    /// panics on untrusted bytes.
    fn decode_request(&self, body: &[u8]) -> Result<JobRequest, GatewayError>;
    /// Encodes a reply body.
    ///
    /// # Errors
    ///
    /// As [`WireCodec::encode_request`].
    fn encode_reply(&self, reply: &Reply) -> Result<Vec<u8>, GatewayError>;
    /// Decodes a reply body.
    ///
    /// # Errors
    ///
    /// As [`WireCodec::decode_request`].
    fn decode_reply(&self, body: &[u8]) -> Result<Reply, GatewayError>;
}

/// Compact canonical binary codec (handshake tag 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct BinCodec;

/// Self-describing JSON codec (handshake tag 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

/// The binary codec singleton.
pub static BIN: BinCodec = BinCodec;

/// The JSON codec singleton.
pub static JSON: JsonCodec = JsonCodec;

/// Resolves a handshake tag to its codec.
pub fn codec_for(tag: u8) -> Option<&'static dyn WireCodec> {
    match tag {
        0 => Some(&BIN),
        1 => Some(&JSON),
        _ => None,
    }
}

impl WireCodec for BinCodec {
    fn tag(&self) -> u8 {
        0
    }

    fn name(&self) -> &'static str {
        "bin"
    }

    fn encode_request(&self, req: &JobRequest) -> Result<Vec<u8>, GatewayError> {
        Ok(to_wire(req))
    }

    fn decode_request(&self, body: &[u8]) -> Result<JobRequest, GatewayError> {
        Ok(from_wire(body)?)
    }

    fn encode_reply(&self, reply: &Reply) -> Result<Vec<u8>, GatewayError> {
        Ok(to_wire(reply))
    }

    fn decode_reply(&self, body: &[u8]) -> Result<Reply, GatewayError> {
        Ok(from_wire(body)?)
    }
}

fn row_to_json(row: &ReportRow) -> Json {
    Json::obj(vec![
        ("label", Json::str(&row.label)),
        ("sim_time_ps", Json::u64_str(row.sim_time_ps)),
        ("messages", Json::u64_str(row.messages)),
        ("bytes", Json::u64_str(row.bytes)),
        ("delta_cycles", Json::u64_str(row.delta_cycles)),
    ])
}

fn get_str(v: &Json, key: &str) -> Result<String, GatewayError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| GatewayError::Codec(format!("missing or non-string '{key}'")))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, GatewayError> {
    v.get(key)
        .and_then(Json::as_u64_str)
        .ok_or_else(|| GatewayError::Codec(format!("missing or non-u64 '{key}'")))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, GatewayError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| GatewayError::Codec(format!("missing or non-bool '{key}'")))
}

fn span_to_json(s: &CausalSpan) -> Json {
    let args: Vec<Json> = s
        .args
        .iter()
        .map(|(k, v)| Json::Arr(vec![Json::str(k), Json::str(v)]))
        .collect();
    Json::obj(vec![
        ("trace_id", Json::u64_str(s.trace_id)),
        ("span_id", Json::u64_str(s.span_id)),
        ("parent_id", Json::u64_str(s.parent_id)),
        ("stage", Json::str(&s.stage)),
        ("name", Json::str(&s.name)),
        ("track", Json::u64_str(u64::from(s.track))),
        ("ts_ns", Json::u64_str(s.ts_ns)),
        ("dur_ns", Json::u64_str(s.dur_ns)),
        ("args", Json::Arr(args)),
    ])
}

fn span_from_json(v: &Json) -> Result<CausalSpan, GatewayError> {
    let args = v
        .get("args")
        .and_then(Json::as_arr)
        .ok_or_else(|| GatewayError::Codec("missing or non-array 'args'".into()))?
        .iter()
        .map(|pair| {
            let kv = pair
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| GatewayError::Codec("span arg is not a [k, v] pair".into()))?;
            let k = kv[0]
                .as_str()
                .ok_or_else(|| GatewayError::Codec("non-string span arg key".into()))?;
            let val = kv[1]
                .as_str()
                .ok_or_else(|| GatewayError::Codec("non-string span arg value".into()))?;
            Ok((k.to_string(), val.to_string()))
        })
        .collect::<Result<Vec<_>, GatewayError>>()?;
    let track = get_u64(v, "track")?;
    Ok(CausalSpan {
        trace_id: get_u64(v, "trace_id")?,
        span_id: get_u64(v, "span_id")?,
        parent_id: get_u64(v, "parent_id")?,
        stage: get_str(v, "stage")?,
        name: get_str(v, "name")?,
        track: u32::try_from(track)
            .map_err(|_| GatewayError::Codec(format!("span track {track} exceeds u32")))?,
        ts_ns: get_u64(v, "ts_ns")?,
        dur_ns: get_u64(v, "dur_ns")?,
        args,
    })
}

fn row_from_json(v: &Json) -> Result<ReportRow, GatewayError> {
    Ok(ReportRow {
        label: get_str(v, "label")?,
        sim_time_ps: get_u64(v, "sim_time_ps")?,
        messages: get_u64(v, "messages")?,
        bytes: get_u64(v, "bytes")?,
        delta_cycles: get_u64(v, "delta_cycles")?,
    })
}

fn parse(body: &[u8]) -> Result<Json, GatewayError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| GatewayError::Codec(format!("body is not UTF-8: {e}")))?;
    Json::parse(text).map_err(GatewayError::Codec)
}

impl WireCodec for JsonCodec {
    fn tag(&self) -> u8 {
        1
    }

    fn name(&self) -> &'static str {
        "json"
    }

    fn encode_request(&self, req: &JobRequest) -> Result<Vec<u8>, GatewayError> {
        let archs: Vec<Json> = req.archs.iter().map(arch_to_json).collect();
        let mut fields = vec![
            ("kind", Json::str("job")),
            ("id", Json::u64_str(req.id)),
            ("model", req.spec.to_json()),
            ("archs", Json::Arr(archs)),
            ("backend", Json::str(req.backend.name())),
            ("want_trace", Json::Bool(req.want_trace)),
        ];
        // Version-2 extension fields, emitted only when used so the JSON a
        // version-1 server would see is unchanged.
        if let Some(ctx) = req.trace {
            fields.push((
                "trace",
                Json::obj(vec![
                    ("trace_id", Json::u64_str(ctx.trace_id)),
                    ("parent_span", Json::u64_str(ctx.parent_span)),
                ]),
            ));
        }
        if req.want_progress {
            fields.push(("want_progress", Json::Bool(true)));
        }
        Ok(Json::obj(fields).to_string().into_bytes())
    }

    fn decode_request(&self, body: &[u8]) -> Result<JobRequest, GatewayError> {
        let v = parse(body)?;
        if get_str(&v, "kind")? != "job" {
            return Err(GatewayError::Codec("expected kind 'job'".into()));
        }
        let model = v
            .get("model")
            .ok_or_else(|| GatewayError::Codec("missing 'model'".into()))?;
        let spec = ModelSpec::from_json(model).map_err(GatewayError::Codec)?;
        let archs = v
            .get("archs")
            .and_then(Json::as_arr)
            .ok_or_else(|| GatewayError::Codec("missing or non-array 'archs'".into()))?
            .iter()
            .map(|a| arch_from_json(a).map_err(GatewayError::Codec))
            .collect::<Result<Vec<_>, _>>()?;
        let backend =
            BackendChoice::from_name(&get_str(&v, "backend")?).map_err(GatewayError::Codec)?;
        // Optional version-2 extension fields; absent means v1 semantics.
        let trace = match v.get("trace") {
            Some(t) => Some(TraceCtx {
                trace_id: get_u64(t, "trace_id")?,
                parent_span: get_u64(t, "parent_span")?,
            }),
            None => None,
        };
        let want_progress = match v.get("want_progress") {
            Some(b) => b
                .as_bool()
                .ok_or_else(|| GatewayError::Codec("non-bool 'want_progress'".into()))?,
            None => false,
        };
        Ok(JobRequest {
            id: get_u64(&v, "id")?,
            spec,
            archs,
            backend,
            want_trace: get_bool(&v, "want_trace")?,
            trace,
            want_progress,
        })
    }

    fn encode_reply(&self, reply: &Reply) -> Result<Vec<u8>, GatewayError> {
        let v = match reply {
            Reply::Accepted { id } => Json::obj(vec![
                ("kind", Json::str("accepted")),
                ("id", Json::u64_str(*id)),
            ]),
            Reply::Rejected { id, retry_after_ms } => Json::obj(vec![
                ("kind", Json::str("rejected")),
                ("id", Json::u64_str(*id)),
                ("retry_after_ms", Json::u64_str(*retry_after_ms)),
            ]),
            Reply::Row { id, row } => Json::obj(vec![
                ("kind", Json::str("row")),
                ("id", Json::u64_str(*id)),
                ("row", row_to_json(row)),
            ]),
            Reply::TraceChunk { id, data } => {
                let text = std::str::from_utf8(data).map_err(|e| {
                    GatewayError::Codec(format!("trace chunk is not UTF-8: {e}"))
                })?;
                Json::obj(vec![
                    ("kind", Json::str("trace")),
                    ("id", Json::u64_str(*id)),
                    ("data", Json::str(text)),
                ])
            }
            Reply::Done { id, rows, cached } => Json::obj(vec![
                ("kind", Json::str("done")),
                ("id", Json::u64_str(*id)),
                ("rows", Json::u64_str(*rows)),
                ("cached", Json::Bool(*cached)),
            ]),
            Reply::Error { id, message } => Json::obj(vec![
                ("kind", Json::str("error")),
                ("id", Json::u64_str(*id)),
                ("message", Json::str(message)),
            ]),
            Reply::Progress {
                id,
                done,
                total,
                pruned,
                eta_hint_ps,
            } => Json::obj(vec![
                ("kind", Json::str("progress")),
                ("id", Json::u64_str(*id)),
                ("done", Json::u64_str(*done)),
                ("total", Json::u64_str(*total)),
                ("pruned", Json::u64_str(*pruned)),
                ("eta_hint_ps", Json::u64_str(*eta_hint_ps)),
            ]),
            Reply::Spans { id, spans } => Json::obj(vec![
                ("kind", Json::str("spans")),
                ("id", Json::u64_str(*id)),
                ("spans", Json::Arr(spans.iter().map(span_to_json).collect())),
            ]),
        };
        Ok(v.to_string().into_bytes())
    }

    fn decode_reply(&self, body: &[u8]) -> Result<Reply, GatewayError> {
        let v = parse(body)?;
        let id = get_u64(&v, "id")?;
        match get_str(&v, "kind")?.as_str() {
            "accepted" => Ok(Reply::Accepted { id }),
            "rejected" => Ok(Reply::Rejected {
                id,
                retry_after_ms: get_u64(&v, "retry_after_ms")?,
            }),
            "row" => {
                let row = v
                    .get("row")
                    .ok_or_else(|| GatewayError::Codec("missing 'row'".into()))?;
                Ok(Reply::Row {
                    id,
                    row: row_from_json(row)?,
                })
            }
            "trace" => Ok(Reply::TraceChunk {
                id,
                data: get_str(&v, "data")?.into_bytes(),
            }),
            "done" => Ok(Reply::Done {
                id,
                rows: get_u64(&v, "rows")?,
                cached: get_bool(&v, "cached")?,
            }),
            "error" => Ok(Reply::Error {
                id,
                message: get_str(&v, "message")?,
            }),
            "progress" => Ok(Reply::Progress {
                id,
                done: get_u64(&v, "done")?,
                total: get_u64(&v, "total")?,
                pruned: get_u64(&v, "pruned")?,
                eta_hint_ps: get_u64(&v, "eta_hint_ps")?,
            }),
            "spans" => Ok(Reply::Spans {
                id,
                spans: v
                    .get("spans")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| GatewayError::Codec("missing or non-array 'spans'".into()))?
                    .iter()
                    .map(span_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            other => Err(GatewayError::Codec(format!("unknown reply kind '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shiptlm_explore::prelude::ArchSpec;
    use shiptlm_testkit::model::GenConfig;

    fn a_request() -> JobRequest {
        JobRequest {
            id: 11,
            spec: ModelSpec::random(7, &GenConfig::default()),
            archs: vec![ArchSpec::opb().with_burst(16), ArchSpec::crossbar()],
            backend: BackendChoice::De,
            want_trace: false,
            trace: None,
            want_progress: false,
        }
    }

    #[test]
    fn both_codecs_round_trip_requests() {
        let mut req = a_request();
        for codec in [&BIN as &dyn WireCodec, &JSON as &dyn WireCodec] {
            let body = codec.encode_request(&req).unwrap();
            let back = codec.decode_request(&body).unwrap();
            assert_eq!(back, req, "codec {}", codec.name());
        }
        // And with the version-2 extension populated.
        req.trace = Some(TraceCtx {
            trace_id: u64::MAX - 1,
            parent_span: 12,
        });
        req.want_progress = true;
        for codec in [&BIN as &dyn WireCodec, &JSON as &dyn WireCodec] {
            let body = codec.encode_request(&req).unwrap();
            let back = codec.decode_request(&body).unwrap();
            assert_eq!(back, req, "codec {} (traced)", codec.name());
        }
    }

    #[test]
    fn both_codecs_round_trip_replies() {
        let replies = vec![
            Reply::Accepted { id: 1 },
            Reply::Rejected {
                id: 2,
                retry_after_ms: 25,
            },
            Reply::Row {
                id: 3,
                row: ReportRow {
                    label: "plb/rr/b16".into(),
                    sim_time_ps: 1,
                    messages: 2,
                    bytes: 3,
                    delta_cycles: 4,
                },
            },
            Reply::TraceChunk {
                id: 4,
                data: b"channel,mean_ns\nc0,12.5\n".to_vec(),
            },
            Reply::Done {
                id: 5,
                rows: 9,
                cached: false,
            },
            Reply::Error {
                id: 6,
                message: "bad \"model\"\nline two".into(),
            },
            Reply::Progress {
                id: 7,
                done: 3,
                total: 13,
                pruned: 2,
                eta_hint_ps: 42_000_000,
            },
            Reply::Spans {
                id: 8,
                spans: vec![
                    CausalSpan {
                        trace_id: 0x1234_5678_9abc_def0,
                        span_id: 2,
                        parent_id: 1,
                        stage: "exec".into(),
                        name: "sweep".into(),
                        track: 0,
                        ts_ns: 100,
                        dur_ns: 5_000,
                        args: vec![("outcome".into(), "miss".into())],
                    },
                    CausalSpan {
                        trace_id: 0x1234_5678_9abc_def0,
                        span_id: 3,
                        parent_id: 2,
                        stage: "txn".into(),
                        name: "ship:send".into(),
                        track: 1,
                        ts_ns: 0,
                        dur_ns: 250,
                        args: vec![
                            ("resource".into(), "ch \"0\"\n".into()),
                            ("bytes".into(), "64".into()),
                        ],
                    },
                ],
            },
        ];
        for codec in [&BIN as &dyn WireCodec, &JSON as &dyn WireCodec] {
            for r in &replies {
                let body = codec.encode_reply(r).unwrap();
                let back = codec.decode_reply(&body).unwrap();
                assert_eq!(&back, r, "codec {}", codec.name());
            }
        }
    }

    #[test]
    fn garbage_bodies_are_classified_not_panics() {
        let garbage: &[&[u8]] = &[b"", b"\xff\xfe\x00", b"{", b"{\"kind\":42}", b"[1,2,3]"];
        for codec in [&BIN as &dyn WireCodec, &JSON as &dyn WireCodec] {
            for g in garbage {
                assert!(
                    codec.decode_request(g).is_err(),
                    "codec {} accepted garbage {:?}",
                    codec.name(),
                    g
                );
            }
        }
    }

    #[test]
    fn codec_tags_resolve() {
        assert_eq!(codec_for(0).unwrap().name(), "bin");
        assert_eq!(codec_for(1).unwrap().name(), "json");
        assert!(codec_for(7).is_none());
    }
}
