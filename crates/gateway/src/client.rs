//! A small synchronous gateway client, used by the soak test, the smoke
//! example, and anyone driving the gateway from Rust.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::codec::WireCodec;
use crate::proto::{
    read_frame, read_handshake, write_frame, write_handshake, GatewayError, JobRequest, Reply,
    ReportRow, DEFAULT_MAX_FRAME,
};

/// How one submitted job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran (or was served from cache) to completion.
    Done {
        /// Whether the server answered from its result cache.
        cached: bool,
    },
    /// Admission control bounced the job; retry after the hint.
    Rejected {
        /// Server-suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The server reported a failure for this job.
    Failed {
        /// Human-readable failure description.
        message: String,
    },
}

/// Everything a job streamed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Terminal status.
    pub status: JobStatus,
    /// Decoded report rows, in arrival order.
    pub rows: Vec<ReportRow>,
    /// Raw encoded `Row` reply bodies as received — for byte-identity
    /// checks across clients and codecs.
    pub raw_rows: Vec<Vec<u8>>,
    /// Concatenated trace chunks (CSV bytes).
    pub trace: Vec<u8>,
}

impl JobOutcome {
    /// Whether the job completed (from cache or fresh).
    pub fn is_done(&self) -> bool {
        matches!(self.status, JobStatus::Done { .. })
    }
}

/// One gateway connection speaking a fixed codec.
#[derive(Debug)]
pub struct GatewayClient {
    stream: TcpStream,
    codec: &'static dyn WireCodec,
    max_frame: u64,
}

impl GatewayClient {
    /// Connects and performs the handshake.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Io`] on connection failure;
    /// [`GatewayError::Handshake`] when the server does not echo the
    /// requested codec.
    pub fn connect(
        addr: impl ToSocketAddrs,
        codec: &'static dyn WireCodec,
    ) -> Result<GatewayClient, GatewayError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_handshake(&mut stream, codec.tag())?;
        let echoed = read_handshake(&mut stream)?;
        if echoed != codec.tag() {
            return Err(GatewayError::Handshake(format!(
                "server rejected codec '{}' (echoed tag {echoed:#x})",
                codec.name()
            )));
        }
        Ok(GatewayClient {
            stream,
            codec,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Submits one job and reads replies until it terminates.
    ///
    /// # Errors
    ///
    /// Transport or codec failures, or a reply carrying the wrong job id
    /// ([`GatewayError::Protocol`]). Job-level failures are *not* errors —
    /// they land in [`JobStatus`].
    pub fn run_job(&mut self, req: &JobRequest) -> Result<JobOutcome, GatewayError> {
        let body = self.codec.encode_request(req)?;
        write_frame(&mut self.stream, &body)?;

        let mut rows = Vec::new();
        let mut raw_rows = Vec::new();
        let mut trace = Vec::new();
        let mut accepted = false;
        loop {
            let Some(frame) = read_frame(&mut self.stream, self.max_frame)? else {
                return Err(GatewayError::Protocol(
                    "connection closed before the job terminated".into(),
                ));
            };
            let reply = self.codec.decode_reply(&frame)?;
            if reply.id() != req.id {
                return Err(GatewayError::Protocol(format!(
                    "reply for job {} while waiting on job {}",
                    reply.id(),
                    req.id
                )));
            }
            match reply {
                Reply::Accepted { .. } => accepted = true,
                Reply::Rejected { retry_after_ms, .. } => {
                    return Ok(JobOutcome {
                        status: JobStatus::Rejected { retry_after_ms },
                        rows,
                        raw_rows,
                        trace,
                    })
                }
                Reply::Row { row, .. } => {
                    rows.push(row);
                    raw_rows.push(frame);
                }
                Reply::TraceChunk { data, .. } => trace.extend_from_slice(&data),
                Reply::Done { cached, rows: n, .. } => {
                    if !accepted {
                        return Err(GatewayError::Protocol("Done before Accepted".into()));
                    }
                    if n != rows.len() as u64 {
                        return Err(GatewayError::Protocol(format!(
                            "server announced {n} rows but streamed {}",
                            rows.len()
                        )));
                    }
                    return Ok(JobOutcome {
                        status: JobStatus::Done { cached },
                        rows,
                        raw_rows,
                        trace,
                    });
                }
                Reply::Error { message, .. } => {
                    return Ok(JobOutcome {
                        status: JobStatus::Failed { message },
                        rows,
                        raw_rows,
                        trace,
                    })
                }
            }
        }
    }

    /// Submits with bounded retries on [`JobStatus::Rejected`], sleeping
    /// the server's backoff hint between attempts.
    ///
    /// # Errors
    ///
    /// As [`GatewayClient::run_job`], plus [`GatewayError::Protocol`]
    /// when every attempt was rejected.
    pub fn run_job_with_retry(
        &mut self,
        req: &JobRequest,
        max_attempts: usize,
    ) -> Result<JobOutcome, GatewayError> {
        let mut rejections = 0;
        for _ in 0..max_attempts.max(1) {
            let outcome = self.run_job(req)?;
            match outcome.status {
                JobStatus::Rejected { retry_after_ms } => {
                    rejections += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(1000)));
                }
                _ => return Ok(outcome),
            }
        }
        Err(GatewayError::Protocol(format!(
            "job {} rejected {rejections} times",
            req.id
        )))
    }
}
