//! A small synchronous gateway client, used by the soak test, the smoke
//! example, and anyone driving the gateway from Rust.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use shiptlm_kernel::causal::{CausalSpan, CausalTrace, TraceCtx, TRACK_HOST};

use crate::codec::WireCodec;
use crate::proto::{
    read_frame, read_handshake, write_frame, write_handshake, GatewayError, JobRequest, Reply,
    ReportRow, DEFAULT_MAX_FRAME,
};

/// How one submitted job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran (or was served from cache) to completion.
    Done {
        /// Whether the server answered from its result cache.
        cached: bool,
    },
    /// Admission control bounced the job; retry after the hint.
    Rejected {
        /// Server-suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The server reported a failure for this job.
    Failed {
        /// Human-readable failure description.
        message: String,
    },
}

/// One live progress sample streamed by the server while a job runs.
///
/// The *content* is deterministic — every field is a pure function of the
/// set of candidates completed so far — while the pacing (how many samples
/// arrive, and when) is not part of any contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Candidates simulated to completion so far.
    pub done: u64,
    /// Total candidates in the job.
    pub total: u64,
    /// Candidates skipped by pruning so far.
    pub pruned: u64,
    /// Estimated remaining *simulated* picoseconds.
    pub eta_hint_ps: u64,
}

/// Everything a job streamed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Terminal status.
    pub status: JobStatus,
    /// Decoded report rows, in arrival order.
    pub rows: Vec<ReportRow>,
    /// Raw encoded `Row` reply bodies as received — for byte-identity
    /// checks across clients and codecs.
    pub raw_rows: Vec<Vec<u8>>,
    /// Concatenated trace chunks (CSV bytes).
    pub trace: Vec<u8>,
    /// Causal spans streamed back for a traced job (server stage spans
    /// plus the sweep's own), already stamped with the request's trace id.
    pub spans: Vec<CausalSpan>,
    /// Progress samples in arrival order, for jobs that asked for them.
    pub progress: Vec<JobProgress>,
}

impl JobOutcome {
    /// Whether the job completed (from cache or fresh).
    pub fn is_done(&self) -> bool {
        matches!(self.status, JobStatus::Done { .. })
    }
}

/// One gateway connection speaking a fixed codec.
pub struct GatewayClient {
    stream: TcpStream,
    codec: &'static dyn WireCodec,
    max_frame: u64,
    /// Called on every [`Reply::Progress`] as it arrives, before the
    /// sample is appended to the outcome.
    on_progress: Option<Box<dyn FnMut(JobProgress) + Send>>,
}

impl std::fmt::Debug for GatewayClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayClient")
            .field("codec", &self.codec.name())
            .field("max_frame", &self.max_frame)
            .finish_non_exhaustive()
    }
}

impl GatewayClient {
    /// Connects and performs the handshake.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Io`] on connection failure;
    /// [`GatewayError::Handshake`] when the server does not echo the
    /// requested codec.
    pub fn connect(
        addr: impl ToSocketAddrs,
        codec: &'static dyn WireCodec,
    ) -> Result<GatewayClient, GatewayError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_handshake(&mut stream, codec.tag())?;
        let (_version, echoed) = read_handshake(&mut stream)?;
        if echoed != codec.tag() {
            return Err(GatewayError::Handshake(format!(
                "server rejected codec '{}' (echoed tag {echoed:#x})",
                codec.name()
            )));
        }
        Ok(GatewayClient {
            stream,
            codec,
            max_frame: DEFAULT_MAX_FRAME,
            on_progress: None,
        })
    }

    /// Installs a live progress callback, invoked from [`run_job`] as
    /// [`Reply::Progress`] frames arrive.
    ///
    /// [`run_job`]: GatewayClient::run_job
    pub fn set_progress_handler(&mut self, cb: impl FnMut(JobProgress) + Send + 'static) {
        self.on_progress = Some(Box::new(cb));
    }

    /// Submits one job and reads replies until it terminates.
    ///
    /// # Errors
    ///
    /// Transport or codec failures, or a reply carrying the wrong job id
    /// ([`GatewayError::Protocol`]). Job-level failures are *not* errors —
    /// they land in [`JobStatus`].
    pub fn run_job(&mut self, req: &JobRequest) -> Result<JobOutcome, GatewayError> {
        let body = self.codec.encode_request(req)?;
        write_frame(&mut self.stream, &body)?;

        let mut rows = Vec::new();
        let mut raw_rows = Vec::new();
        let mut trace = Vec::new();
        let mut spans = Vec::new();
        let mut progress = Vec::new();
        let mut accepted = false;
        loop {
            let Some(frame) = read_frame(&mut self.stream, self.max_frame)? else {
                return Err(GatewayError::Protocol(
                    "connection closed before the job terminated".into(),
                ));
            };
            let reply = self.codec.decode_reply(&frame)?;
            if reply.id() != req.id {
                return Err(GatewayError::Protocol(format!(
                    "reply for job {} while waiting on job {}",
                    reply.id(),
                    req.id
                )));
            }
            match reply {
                Reply::Accepted { .. } => accepted = true,
                Reply::Rejected { retry_after_ms, .. } => {
                    return Ok(JobOutcome {
                        status: JobStatus::Rejected { retry_after_ms },
                        rows,
                        raw_rows,
                        trace,
                        spans,
                        progress,
                    })
                }
                Reply::Row { row, .. } => {
                    rows.push(row);
                    raw_rows.push(frame);
                }
                Reply::TraceChunk { data, .. } => trace.extend_from_slice(&data),
                Reply::Progress {
                    done,
                    total,
                    pruned,
                    eta_hint_ps,
                    ..
                } => {
                    let sample = JobProgress {
                        done,
                        total,
                        pruned,
                        eta_hint_ps,
                    };
                    if let Some(cb) = &mut self.on_progress {
                        cb(sample);
                    }
                    progress.push(sample);
                }
                Reply::Spans { spans: batch, .. } => spans.extend(batch),
                Reply::Done { cached, rows: n, .. } => {
                    if !accepted {
                        return Err(GatewayError::Protocol("Done before Accepted".into()));
                    }
                    if n != rows.len() as u64 {
                        return Err(GatewayError::Protocol(format!(
                            "server announced {n} rows but streamed {}",
                            rows.len()
                        )));
                    }
                    return Ok(JobOutcome {
                        status: JobStatus::Done { cached },
                        rows,
                        raw_rows,
                        trace,
                        spans,
                        progress,
                    });
                }
                Reply::Error { message, .. } => {
                    return Ok(JobOutcome {
                        status: JobStatus::Failed { message },
                        rows,
                        raw_rows,
                        trace,
                        spans,
                        progress,
                    })
                }
            }
        }
    }

    /// Mints a fresh trace context, runs `req` under it, and returns the
    /// outcome together with the merged causal trace: a client-side `job`
    /// root span (timestamp 0, duration = the RPC wall time) with every
    /// server/sweep span streamed back parented underneath.
    ///
    /// Any `trace` already on `req` is replaced; `want_progress` is left
    /// as the caller set it.
    ///
    /// # Errors
    ///
    /// As [`GatewayClient::run_job`].
    pub fn run_job_traced(
        &mut self,
        req: &JobRequest,
    ) -> Result<(JobOutcome, CausalTrace), GatewayError> {
        let ctx = TraceCtx::mint();
        let root = CausalSpan::new(ctx, "job", format!("job:{}", req.id), TRACK_HOST);
        let mut traced = req.clone();
        traced.trace = Some(ctx.child(root.span_id));
        let started = Instant::now();
        let outcome = self.run_job(&traced)?;
        let root = root.at(0, started.elapsed().as_nanos() as u64);
        let mut spans = Vec::with_capacity(1 + outcome.spans.len());
        spans.push(root);
        spans.extend(outcome.spans.iter().cloned());
        Ok((outcome, CausalTrace::new(spans)))
    }

    /// Submits with bounded retries on [`JobStatus::Rejected`], sleeping
    /// the server's backoff hint between attempts.
    ///
    /// # Errors
    ///
    /// As [`GatewayClient::run_job`], plus [`GatewayError::Protocol`]
    /// when every attempt was rejected.
    pub fn run_job_with_retry(
        &mut self,
        req: &JobRequest,
        max_attempts: usize,
    ) -> Result<JobOutcome, GatewayError> {
        let mut rejections = 0;
        for _ in 0..max_attempts.max(1) {
            let outcome = self.run_job(req)?;
            match outcome.status {
                JobStatus::Rejected { retry_after_ms } => {
                    rejections += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(1000)));
                }
                _ => return Ok(outcome),
            }
        }
        Err(GatewayError::Protocol(format!(
            "job {} rejected {rejections} times",
            req.id
        )))
    }
}
