//! `gatewayd` — run a simulation-as-a-service gateway in the foreground.
//!
//! ```text
//! gatewayd [JOB_ADDR] [METRICS_ADDR]
//! ```
//!
//! Defaults: jobs on `127.0.0.1:7465`, metrics on `127.0.0.1:7466`.
//! Environment overrides: `GATEWAY_QUEUE_CAPACITY`, `GATEWAY_EXECUTORS`,
//! `GATEWAY_THREADS_PER_JOB`. The process serves until killed.

use shiptlm_gateway::prelude::{Gateway, GatewayConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cfg = GatewayConfig {
        addr: args.next().unwrap_or_else(|| "127.0.0.1:7465".into()),
        metrics_addr: Some(args.next().unwrap_or_else(|| "127.0.0.1:7466".into())),
        queue_capacity: env_usize("GATEWAY_QUEUE_CAPACITY", 64),
        executors: env_usize("GATEWAY_EXECUTORS", 2),
        threads_per_job: env_usize("GATEWAY_THREADS_PER_JOB", 2),
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::start(cfg) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("gatewayd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "gatewayd: jobs on {}, metrics on {}",
        gateway.addr(),
        gateway
            .metrics_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "<disabled>".into())
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
