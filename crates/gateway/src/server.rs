//! The gateway server: accept loop, per-connection readers, bounded
//! admission queue, and executor threads driving sweeps on the shared
//! worker pool.
//!
//! ## Threading model
//!
//! * one **accept** thread (non-blocking, polls the shutdown flag);
//! * one **reader** thread per connection: handshake, then decode frames
//!   and push jobs through admission;
//! * `executors` **executor** threads: pop jobs, consult the
//!   content-addressed cache, run sweeps via
//!   [`Sweep::run_on`]`(`[`WorkerPool::global()`]`, threads_per_job)`,
//!   stream replies back;
//! * optionally one **metrics** thread serving `GET /metrics`.
//!
//! Replies for one connection are serialized through a mutex around the
//! write half, so rows from an executor never interleave mid-frame with
//! an `Accepted` from the reader (or a `Progress` from a sweep callback).
//!
//! ## Admission and shutdown
//!
//! The queue is bounded: a submission finding it full is answered with
//! [`Reply::Rejected`] and a retry hint — the gateway sheds load instead
//! of buffering unboundedly. Shutdown is drain-based: stop accepting,
//! unblock the readers, join them (no new jobs can arrive), then let the
//! executors drain what was admitted before joining them — every job that
//! got an `Accepted` gets its rows and `Done` before the sockets close.
//!
//! ## Causal tracing
//!
//! A version-2 request may carry a client-minted [`TraceCtx`]. The server
//! then records one span per stage the job passes through — `gateway`
//! (the whole server residency), `admission`, `queue-wait`, `cache`
//! (with an `outcome` arg of `hit`/`miss`/`wait`), and `exec` on a miss —
//! and parents the sweep's own spans (role-detect, chunk, candidate,
//! kernel txn) underneath. Sweep spans are cached *trace-neutral*
//! ([`neutralize`]) and re-stamped per requester ([`stamp`]), so a cache
//! hit replays the original execution's spans under the requester's own
//! trace id. Version-1 connections never see any of this: extension
//! fields are stripped at the reader and v2-only reply tags are never
//! emitted toward them.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use shiptlm_explore::prelude::{RunOptions, Sweep, SweepProgress, WorkerPool};
use shiptlm_kernel::causal::{neutralize, stamp, CausalSpan, SpanSink, TraceCtx, TRACK_HOST};

use crate::cache::{CacheOutcome, JobOutput, JobResult, ResultCache};
use crate::codec::{codec_for, WireCodec};
use crate::lock;
use crate::metrics::{spawn_metrics_server, GatewayMetrics};
use crate::proto::{
    read_frame, read_handshake, write_frame, write_handshake_version, GatewayError, JobRequest,
    Reply, ReportRow, DEFAULT_MAX_FRAME,
};

/// Trace CSV is streamed in chunks of this many bytes.
const TRACE_CHUNK_BYTES: usize = 64 * 1024;

/// Kernel txn-recorder capacity (events per candidate) enabled for traced
/// jobs, so candidate spans carry their transaction children without the
/// client having to size a ring.
const TRACED_TXN_CAPACITY: usize = 2048;

/// Tuning knobs for one gateway instance.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Job-socket bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Optional `/metrics` bind address.
    pub metrics_addr: Option<String>,
    /// Admission-queue bound; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Executor threads (jobs running concurrently).
    pub executors: usize,
    /// Worker-pool threads each job's sweep fans out over.
    pub threads_per_job: usize,
    /// Backoff hint carried by [`Reply::Rejected`].
    pub retry_after_ms: u64,
    /// Per-frame size cap, enforced before allocation.
    pub max_frame_bytes: u64,
    /// Result-cache entry bound; least-recently-used ready entries beyond
    /// it are evicted.
    pub cache_max_entries: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: None,
            queue_capacity: 64,
            executors: 2,
            threads_per_job: 2,
            retry_after_ms: 50,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            cache_max_entries: crate::cache::DEFAULT_CACHE_ENTRIES,
        }
    }
}

/// One admitted job waiting for an executor.
struct QueuedJob {
    req: JobRequest,
    writer: Arc<Mutex<TcpStream>>,
    codec: &'static dyn WireCodec,
    /// When the request frame arrived — the epoch every span timestamp of
    /// this job is measured from.
    received: Instant,
    /// When admission pushed the job onto the queue.
    enqueued: Instant,
}

/// State shared by every gateway thread.
struct Shared {
    cfg: GatewayConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    /// Read-half clones of live connections, so shutdown can unblock
    /// readers parked in `read_frame`.
    conns: Mutex<Vec<TcpStream>>,
    metrics: Arc<GatewayMetrics>,
    cache: ResultCache,
}

/// A running gateway. Dropping it without calling [`Gateway::shutdown`]
/// leaks the service threads; shut it down explicitly.
pub struct Gateway {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept_thread: JoinHandle<Vec<JoinHandle<()>>>,
    executor_threads: Vec<JoinHandle<()>>,
    metrics_thread: Option<(JoinHandle<()>, Arc<AtomicBool>)>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.addr)
            .field("metrics_addr", &self.metrics_addr)
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Binds the sockets and spawns the service threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn start(cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(GatewayMetrics::new());
        let mut metrics_addr = None;
        let mut metrics_listener = None;
        if let Some(maddr) = &cfg.metrics_addr {
            let l = TcpListener::bind(maddr)?;
            metrics_addr = Some(l.local_addr()?);
            metrics_listener = Some(l);
        }

        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(cfg.queue_capacity)),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            metrics: Arc::clone(&metrics),
            cache: ResultCache::bounded(cfg.cache_max_entries),
            cfg,
        });

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        let executor_threads = (0..shared.cfg.executors.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared))
            })
            .collect();

        let metrics_thread = match metrics_listener {
            Some(l) => {
                let flag = Arc::new(AtomicBool::new(false));
                let handle = spawn_metrics_server(l, metrics, Arc::clone(&flag))?;
                Some((handle, flag))
            }
            None => None,
        };

        Ok(Gateway {
            addr,
            metrics_addr,
            shared,
            accept_thread,
            executor_threads,
            metrics_thread,
        })
    }

    /// The bound job-socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` address, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// This gateway's metrics (shared with the `/metrics` endpoint).
    pub fn metrics(&self) -> Arc<GatewayMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Number of distinct results in the content-addressed cache.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Entries evicted from the result cache by its LRU bound so far.
    pub fn cache_evictions(&self) -> u64 {
        self.shared.cache.evictions()
    }

    /// Drain-based shutdown: stop accepting, let readers finish, drain
    /// every admitted job (each gets its replies), then tear down.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);

        // Unblock readers parked in `read_frame`; they exit after
        // processing whatever was already submitted.
        for conn in lock(&self.shared.conns).iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let readers = self.accept_thread.join().unwrap_or_default();
        for reader in readers {
            let _ = reader.join();
        }

        // No new jobs can arrive now; wake the executors so they drain the
        // queue and exit when it is empty.
        self.shared.queue_ready.notify_all();
        for executor in self.executor_threads {
            let _ = executor.join();
        }

        if let Some((handle, flag)) = self.metrics_thread {
            flag.store(true, Ordering::Release);
            let _ = handle.join();
        }
        // Write halves close when the last Arc<Mutex<TcpStream>> drops.
        lock(&self.shared.conns).clear();
    }
}

/// Accepts connections until shutdown; returns the reader handles so the
/// shutdown path can join them.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut readers = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Replies are many small frames; Nagle + delayed ACK adds
                // ~40ms per job round-trip without this.
                stream.set_nodelay(true).ok();
                if let Ok(read_clone) = stream.try_clone() {
                    lock(&shared.conns).push(read_clone);
                }
                let shared = Arc::clone(shared);
                readers.push(std::thread::spawn(move || reader_loop(stream, &shared)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return readers;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return readers;
                }
            }
        }
    }
}

/// Serializes one reply onto the shared write half.
fn send_reply(
    writer: &Mutex<TcpStream>,
    codec: &'static dyn WireCodec,
    reply: &Reply,
) -> Result<(), GatewayError> {
    let body = codec.encode_reply(reply)?;
    let mut stream = lock(writer);
    write_frame(&mut *stream, &body)?;
    Ok(())
}

/// Per-connection reader: handshake, then frames until EOF or a fatal
/// frame error. The negotiated protocol version sticks to the connection:
/// version-1 peers have extension fields stripped at admission so no
/// executor can ever emit a v2-only reply toward them.
fn reader_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let (version, tag) = match read_handshake(&mut stream) {
        Ok(pair) => pair,
        Err(_) => return,
    };
    let Some(codec) = codec_for(tag) else {
        // Unknown codec: echo back tag 0xFF so the client can tell the
        // negotiation failed, then drop the connection.
        let _ = write_handshake_version(&mut stream, version, 0xFF);
        return;
    };
    // Echo the handshake at the *negotiated* version: a version-1 client
    // sees its own version back and never learns about v2 extensions.
    if write_handshake_version(&mut stream, version, tag).is_err() {
        return;
    }

    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };

    loop {
        match read_frame(&mut stream, shared.cfg.max_frame_bytes) {
            Ok(Some(body)) => {
                let received = Instant::now();
                match codec.decode_request(&body) {
                    Ok(mut req) => {
                        if version < 2 {
                            // A v1 peer cannot receive Progress/Spans
                            // replies; drop any extension fields a hostile
                            // encoder smuggled into the body.
                            req.trace = None;
                            req.want_progress = false;
                        }
                        submit(req, received, &writer, codec, shared);
                    }
                    Err(e) => {
                        // The frame layer is still in sync (the length
                        // prefix was honoured), so report and keep the
                        // connection.
                        shared.metrics.decode_error();
                        let _ = send_reply(
                            &writer,
                            codec,
                            &Reply::Error {
                                id: 0,
                                message: format!("request decode failed: {e}"),
                            },
                        );
                    }
                }
            }
            // Clean EOF at a frame boundary: the client is done.
            Ok(None) => return,
            Err(e) => {
                // Frame-layer corruption: the stream position is unknown,
                // so report once and drop the connection.
                let _ = send_reply(
                    &writer,
                    codec,
                    &Reply::Error {
                        id: 0,
                        message: format!("connection dropped: {e}"),
                    },
                );
                return;
            }
        }
    }
}

/// Admission control: reject when the queue is at capacity, otherwise
/// acknowledge and enqueue.
fn submit(
    req: JobRequest,
    received: Instant,
    writer: &Arc<Mutex<TcpStream>>,
    codec: &'static dyn WireCodec,
    shared: &Arc<Shared>,
) {
    let id = req.id;
    let mut queue = lock(&shared.queue);
    if queue.len() >= shared.cfg.queue_capacity {
        drop(queue);
        shared.metrics.job_rejected();
        let _ = send_reply(
            writer,
            codec,
            &Reply::Rejected {
                id,
                retry_after_ms: shared.cfg.retry_after_ms,
            },
        );
        return;
    }
    // Acknowledge while holding the queue lock so the Accepted frame is
    // on the wire before any executor can race a Row for the same job.
    if send_reply(writer, codec, &Reply::Accepted { id }).is_err() {
        return;
    }
    queue.push_back(QueuedJob {
        req,
        writer: Arc::clone(writer),
        codec,
        received,
        enqueued: Instant::now(),
    });
    shared.metrics.queue_push();
    drop(queue);
    shared.queue_ready.notify_one();
}

/// Executor: pop, run (through the cache), stitch the server-side spans,
/// stream replies.
fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .queue_ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let Some(job) = job else { return };

        let popped = Instant::now();
        shared.metrics.queue_pop(popped.duration_since(job.enqueued));
        shared.metrics.job_started();
        let key = job.req.cache_key();
        let (result, outcome) = shared
            .cache
            .get_or_compute(key, || run_job(&job, shared.cfg.threads_per_job));
        let finished = Instant::now();
        let cached = outcome.served_from_cache();
        shared
            .metrics
            .job_finished(&job.req.spec.name, finished.duration_since(popped), cached);
        if !cached {
            if let Ok(output) = &result {
                shared.metrics.add_txn_dropped(output.txn_dropped);
            }
        }
        shared
            .metrics
            .sample_cache(shared.cache.evictions(), shared.cache.approx_bytes());

        let spans = job
            .req
            .trace
            .map(|ctx| job_spans(&job, ctx, &result, outcome, popped, finished))
            .unwrap_or_default();
        stream_result(&job, &result, cached, spans);
    }
}

/// Builds the server-side stage spans for one traced job and stitches the
/// (cached, trace-neutral) sweep spans underneath. All timestamps are
/// nanoseconds since the job's receipt.
fn job_spans(
    job: &QueuedJob,
    ctx: TraceCtx,
    result: &JobResult,
    outcome: CacheOutcome,
    popped: Instant,
    finished: Instant,
) -> Vec<CausalSpan> {
    let ns = |t: Instant| t.duration_since(job.received).as_nanos() as u64;
    let mut spans = Vec::new();

    let gateway = CausalSpan::new(ctx, "gateway", format!("job:{}", job.req.id), TRACK_HOST)
        .at(0, ns(finished));
    let under_gateway = ctx.child(gateway.span_id);
    spans.push(gateway);

    spans.push(
        CausalSpan::new(under_gateway, "admission", "admit", TRACK_HOST).at(0, ns(job.enqueued)),
    );
    spans.push(
        CausalSpan::new(under_gateway, "queue-wait", "queue", TRACK_HOST)
            .at(ns(job.enqueued), ns(popped) - ns(job.enqueued)),
    );
    let cache_span = CausalSpan::new(under_gateway, "cache", "lookup", TRACK_HOST)
        .at(ns(popped), ns(finished) - ns(popped))
        .arg("outcome", outcome.label());
    let cache_id = cache_span.span_id;
    spans.push(cache_span);

    // Sweep spans hang under `exec` on a miss (this executor ran them) and
    // under `cache` on a hit/wait (they are a replay of the original run).
    let attach_under = if matches!(outcome, CacheOutcome::Computed) {
        let exec = CausalSpan::new(under_gateway, "exec", "sweep", TRACK_HOST)
            .at(ns(popped), ns(finished) - ns(popped));
        let exec_id = exec.span_id;
        spans.push(exec);
        exec_id
    } else {
        cache_id
    };

    if let Ok(output) = result {
        if !output.spans.is_empty() {
            let mut sweep_spans = output.spans.clone();
            stamp(&mut sweep_spans, ctx.child(attach_under));
            // Sweep timestamps are relative to the sweep's own start;
            // shift host-track spans onto this job's receipt epoch.
            // Candidate tracks carry *simulated* time and stay untouched.
            let offset = ns(popped);
            for span in &mut sweep_spans {
                if span.track == TRACK_HOST {
                    span.ts_ns += offset;
                }
            }
            spans.extend(sweep_spans);
        }
    }
    spans
}

/// Runs one sweep on the shared worker pool, converting mapping errors
/// *and panics* into deterministic failure strings. A panicking model
/// must not take the executor thread (or the pool) down with it.
///
/// Traced jobs run with a neutral causal context (trace id 0) and get
/// [`neutralize`]d before caching, so the stored spans can be re-stamped
/// under any requester's trace id. Progress jobs stream
/// [`Reply::Progress`] directly from the sweep callback — live, never
/// cached.
fn run_job(job: &QueuedJob, threads_per_job: usize) -> JobResult {
    let req = &job.req;
    let sink = req.trace.map(|_| SpanSink::new());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut sweep = Sweep::new(req.spec.to_app())
            .archs(req.archs.iter().cloned())
            .with_options(RunOptions::default().with_backend(req.backend.to_backend()));
        if let Some(sink) = &sink {
            sweep = sweep
                .with_causal(
                    TraceCtx {
                        trace_id: 0,
                        parent_span: 0,
                    },
                    sink.clone(),
                )
                .with_recorder(TRACED_TXN_CAPACITY);
        }
        if req.want_progress {
            let writer = Arc::clone(&job.writer);
            let codec = job.codec;
            let id = req.id;
            sweep = sweep.with_progress(move |p: SweepProgress| {
                let _ = send_reply(
                    &writer,
                    codec,
                    &Reply::Progress {
                        id,
                        done: p.done as u64,
                        total: p.total as u64,
                        pruned: p.pruned as u64,
                        eta_hint_ps: p.eta_hint_ps,
                    },
                );
            });
        }
        sweep.run_on(WorkerPool::global(), threads_per_job.max(1))
    }));
    match outcome {
        Ok(Ok(report)) => {
            let rows = report.rows().iter().map(ReportRow::from_metrics).collect();
            let trace = if req.want_trace {
                report.channel_latency_csv().into_bytes()
            } else {
                Vec::new()
            };
            let txn_dropped = report
                .rows()
                .iter()
                .filter_map(|row| row.txn.as_ref())
                .map(|t| t.dropped())
                .sum();
            let spans = sink
                .map(|s| {
                    let mut spans = s.take();
                    neutralize(&mut spans);
                    spans
                })
                .unwrap_or_default();
            Ok(JobOutput {
                rows,
                trace,
                spans,
                txn_dropped,
            })
        }
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("job panicked: {}", panic_message(&payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Streams a finished job back to its client: rows, trace chunks, spans
/// (traced jobs only), `Done` (or a single `Error`). Write failures mean
/// the client went away; the result stays cached either way.
fn stream_result(job: &QueuedJob, result: &JobResult, cached: bool, spans: Vec<CausalSpan>) {
    let id = job.req.id;
    match result {
        Ok(output) => {
            for row in &output.rows {
                if send_reply(
                    &job.writer,
                    job.codec,
                    &Reply::Row {
                        id,
                        row: row.clone(),
                    },
                )
                .is_err()
                {
                    return;
                }
            }
            for chunk in output.trace.chunks(TRACE_CHUNK_BYTES) {
                if send_reply(
                    &job.writer,
                    job.codec,
                    &Reply::TraceChunk {
                        id,
                        data: chunk.to_vec(),
                    },
                )
                .is_err()
                {
                    return;
                }
            }
            if !spans.is_empty()
                && send_reply(&job.writer, job.codec, &Reply::Spans { id, spans }).is_err()
            {
                return;
            }
            let _ = send_reply(
                &job.writer,
                job.codec,
                &Reply::Done {
                    id,
                    rows: output.rows.len() as u64,
                    cached,
                },
            );
        }
        Err(message) => {
            let _ = send_reply(
                &job.writer,
                job.codec,
                &Reply::Error {
                    id,
                    message: message.clone(),
                },
            );
        }
    }
}
