//! Gateway-local metrics and the `/metrics` Prometheus endpoint.
//!
//! Rendering goes through [`shiptlm_kernel::metrics::prom_name`] and
//! [`prom_label`] so the gateway's exposition is character-for-character
//! consistent with the kernel exporter — including label-value escaping,
//! which matters here because one label (`model`) carries *user-supplied*
//! model names straight off the wire.
//!
//! Besides the job counters, the gateway exports per-stage latency
//! histograms mirroring the causal span stages: `queue_wait_ms`
//! (admission enqueue → executor pop), `cache_wait_ms` (host time of jobs
//! answered from the cache, including single-flight waits), and `exec_ms`
//! (host time of jobs that ran a sweep).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use shiptlm_kernel::metrics::{prom_label, prom_name};

use crate::lock;

/// Number of power-of-two latency buckets before `+Inf`
/// (`le="1"` … `le="1024"` milliseconds).
const MS_BUCKETS: usize = 11;

/// A lock-free power-of-two millisecond histogram (non-cumulative
/// internally, rendered cumulative as Prometheus requires).
#[derive(Debug, Default)]
struct MsHistogram {
    buckets: [AtomicU64; MS_BUCKETS + 1],
    sum_ms: AtomicU64,
}

impl MsHistogram {
    fn observe(&self, d: Duration) {
        let ms = d.as_millis() as u64;
        self.buckets[ms_bucket(ms)].fetch_add(1, Ordering::Relaxed);
        self.sum_ms.fetch_add(ms, Ordering::Relaxed);
    }

    #[cfg(test)]
    fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    fn render(&self, out: &mut String, family: &str) {
        let hist = prom_name(family);
        out.push_str(&format!("# TYPE {hist} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if i < MS_BUCKETS {
                out.push_str(&format!(
                    "{hist}_bucket{{le=\"{}\"}} {cumulative}\n",
                    1u64 << i
                ));
            } else {
                out.push_str(&format!("{hist}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            }
        }
        out.push_str(&format!(
            "{hist}_sum {}\n{hist}_count {cumulative}\n",
            self.sum_ms.load(Ordering::Relaxed)
        ));
    }
}

/// Counters and gauges for one gateway instance. Cheap to share behind an
/// [`Arc`]; every field is updated lock-free except the per-model map.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Jobs currently queued for admission (gauge).
    queue_depth: AtomicU64,
    /// Jobs currently executing on the pool (gauge).
    jobs_inflight: AtomicU64,
    /// Jobs answered from the content-addressed cache.
    cache_hits: AtomicU64,
    /// Jobs that ran a sweep.
    cache_misses: AtomicU64,
    /// Jobs bounced by admission control.
    rejected: AtomicU64,
    /// Request frames that failed to decode.
    decode_errors: AtomicU64,
    /// Host-time histogram of completed jobs (cached or not).
    host: MsHistogram,
    /// Admission enqueue → executor pop.
    queue_wait: MsHistogram,
    /// Host time of jobs answered from the cache (hits and single-flight
    /// waits).
    cache_wait: MsHistogram,
    /// Host time of jobs that actually ran a sweep.
    exec: MsHistogram,
    /// Result-cache entries evicted by the LRU bound (sampled counter).
    cache_evictions: AtomicU64,
    /// Approximate result-cache heap bytes (sampled gauge).
    cache_bytes: AtomicU64,
    /// Kernel txn-recorder ring events dropped across traced jobs.
    txn_dropped: AtomicU64,
    /// Completed-job counts keyed by (untrusted) model name.
    per_model: Mutex<BTreeMap<String, u64>>,
}

impl GatewayMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        GatewayMetrics::default()
    }

    /// Records a job entering the admission queue.
    pub fn queue_push(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job leaving the admission queue after `waited` in it.
    pub fn queue_pop(&self, waited: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait.observe(waited);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Records a job starting execution.
    pub fn job_started(&self) {
        self.jobs_inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job finishing execution (cached or not), with its host
    /// time and the model name it carried. The host time also lands in the
    /// stage histogram matching how the job resolved: `cache_wait_ms` when
    /// served from the cache, `exec_ms` when it ran a sweep.
    pub fn job_finished(&self, model: &str, host: Duration, cached: bool) {
        self.jobs_inflight.fetch_sub(1, Ordering::Relaxed);
        if cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.cache_wait.observe(host);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            self.exec.observe(host);
        }
        self.host.observe(host);
        *lock(&self.per_model).entry(model.to_string()).or_insert(0) += 1;
    }

    /// Records an admission rejection.
    pub fn job_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request frame that failed to decode.
    pub fn decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples the result cache's eviction counter and byte gauge (both
    /// owned by the cache; the executor mirrors them here after each job).
    pub fn sample_cache(&self, evictions: u64, bytes: u64) {
        self.cache_evictions.store(evictions, Ordering::Relaxed);
        self.cache_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Adds kernel txn-recorder ring drops observed by one freshly
    /// computed job.
    pub fn add_txn_dropped(&self, dropped: u64) {
        if dropped > 0 {
            self.txn_dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Jobs currently executing.
    pub fn jobs_inflight(&self) -> u64 {
        self.jobs_inflight.load(Ordering::Relaxed)
    }

    /// Total cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Total cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Total admission rejections so far.
    pub fn rejections(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Total txn-recorder ring drops observed so far.
    pub fn txn_dropped(&self) -> u64 {
        self.txn_dropped.load(Ordering::Relaxed)
    }

    /// Last-sampled result-cache eviction count.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text 0.0.4 exposition.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let gauge = |out: &mut String, family: &str, v: u64| {
            let name = prom_name(family);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        };
        let counter = |out: &mut String, family: &str, v: u64| {
            let name = prom_name(family);
            out.push_str(&format!("# TYPE {name} counter\n{name}_total {v}\n"));
        };
        gauge(&mut out, "gateway.queue_depth", self.queue_depth());
        gauge(
            &mut out,
            "gateway.jobs_inflight",
            self.jobs_inflight.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "gateway.cache_bytes",
            self.cache_bytes.load(Ordering::Relaxed),
        );
        counter(&mut out, "gateway.cache_hits", self.cache_hits());
        counter(&mut out, "gateway.cache_misses", self.cache_misses());
        counter(&mut out, "gateway.cache_evictions", self.cache_evictions());
        counter(&mut out, "gateway.jobs_rejected", self.rejections());
        counter(
            &mut out,
            "gateway.decode_errors",
            self.decode_errors.load(Ordering::Relaxed),
        );
        counter(&mut out, "gateway.txn_trace_dropped", self.txn_dropped());

        self.host.render(&mut out, "gateway.job_host_ms");
        self.queue_wait.render(&mut out, "gateway.queue_wait_ms");
        self.cache_wait.render(&mut out, "gateway.cache_wait_ms");
        self.exec.render(&mut out, "gateway.exec_ms");

        let jobs = prom_name("gateway.jobs");
        out.push_str(&format!("# TYPE {jobs} counter\n"));
        for (model, count) in lock(&self.per_model).iter() {
            out.push_str(&format!(
                "{jobs}_total{{model=\"{}\"}} {count}\n",
                prom_label(model)
            ));
        }
        out
    }
}

/// Index of the power-of-two bucket covering `ms`: the smallest `i` with
/// `ms <= 1 << i`, clamped to the `+Inf` bucket.
fn ms_bucket(ms: u64) -> usize {
    if ms <= 1 {
        0
    } else {
        ((u64::BITS - (ms - 1).leading_zeros()) as usize).min(MS_BUCKETS)
    }
}

/// Serves `GET /metrics` over plain HTTP/1.0 until `shutdown` is set.
///
/// Returns the join handle; the listener must already be bound and in
/// non-blocking mode is *not* required — this function sets it.
///
/// # Errors
///
/// Propagates the `set_nonblocking` failure, the only fallible setup step.
pub(crate) fn spawn_metrics_server(
    listener: TcpListener,
    metrics: Arc<GatewayMetrics>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    Ok(std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => serve_one(stream, &metrics),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }))
}

fn serve_one(mut stream: std::net::TcpStream, metrics: &GatewayMetrics) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let response = if path == "/metrics" {
        let body = metrics.to_prometheus();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_string()
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Fetches `path` from an HTTP/1.0 server at `addr` and returns the body.
///
/// A test/client convenience kept next to the server so the soak test and
/// the smoke example scrape `/metrics` without an HTTP dependency.
///
/// # Errors
///
/// Returns a description of connection, read, or status-line failures.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: gateway\r\n\r\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("unexpected status line '{status}'"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shiptlm_testkit::prom::{PromKind, PromText};

    #[test]
    fn exposition_parses_and_counts_match() {
        let m = GatewayMetrics::new();
        m.queue_push();
        m.queue_push();
        m.queue_pop(Duration::from_millis(2));
        m.job_started();
        m.job_finished("alpha", Duration::from_millis(3), false);
        m.job_started();
        m.job_finished("alpha", Duration::from_millis(700), true);
        m.job_rejected();
        let text = m.to_prometheus();
        let parsed = PromText::parse(&text).unwrap();
        assert_eq!(
            parsed.types.get("shiptlm_gateway_job_host_ms"),
            Some(&PromKind::Histogram)
        );
        let depth = parsed
            .samples
            .iter()
            .find(|s| s.name == "shiptlm_gateway_queue_depth")
            .unwrap();
        assert_eq!(depth.value, 1.0);
        let hits = parsed
            .samples
            .iter()
            .find(|s| s.name == "shiptlm_gateway_cache_hits_total")
            .unwrap();
        assert_eq!(hits.value, 1.0);
        let alpha = parsed
            .sample("shiptlm_gateway_jobs_total", "model", "alpha")
            .unwrap();
        assert_eq!(alpha.value, 2.0);
        // Histogram buckets are cumulative and the count covers both jobs.
        let count = parsed
            .samples
            .iter()
            .find(|s| s.name == "shiptlm_gateway_job_host_ms_count")
            .unwrap();
        assert_eq!(count.value, 2.0);
    }

    #[test]
    fn stage_histograms_split_cached_from_executed() {
        let m = GatewayMetrics::new();
        m.queue_push();
        m.queue_pop(Duration::from_millis(5));
        m.job_started();
        m.job_finished("m", Duration::from_millis(40), false);
        m.job_started();
        m.job_finished("m", Duration::from_millis(1), true);
        assert_eq!(m.exec.count(), 1);
        assert_eq!(m.cache_wait.count(), 1);
        assert_eq!(m.queue_wait.count(), 1);
        let parsed = PromText::parse(&m.to_prometheus()).unwrap();
        for family in [
            "shiptlm_gateway_queue_wait_ms",
            "shiptlm_gateway_cache_wait_ms",
            "shiptlm_gateway_exec_ms",
        ] {
            assert_eq!(
                parsed.types.get(family),
                Some(&PromKind::Histogram),
                "{family} must be exported as a histogram"
            );
            let count = parsed
                .samples
                .iter()
                .find(|s| s.name == format!("{family}_count"))
                .unwrap();
            assert_eq!(count.value, 1.0, "{family} saw exactly one observation");
        }
    }

    #[test]
    fn cache_and_txn_drop_families_render() {
        let m = GatewayMetrics::new();
        m.sample_cache(3, 4096);
        m.add_txn_dropped(7);
        m.add_txn_dropped(0); // no-op
        let parsed = PromText::parse(&m.to_prometheus()).unwrap();
        let bytes = parsed
            .samples
            .iter()
            .find(|s| s.name == "shiptlm_gateway_cache_bytes")
            .unwrap();
        assert_eq!(bytes.value, 4096.0);
        let evictions = parsed
            .samples
            .iter()
            .find(|s| s.name == "shiptlm_gateway_cache_evictions_total")
            .unwrap();
        assert_eq!(evictions.value, 3.0);
        let dropped = parsed
            .samples
            .iter()
            .find(|s| s.name == "shiptlm_gateway_txn_trace_dropped_total")
            .unwrap();
        assert_eq!(dropped.value, 7.0);
    }

    #[test]
    fn hostile_model_names_render_and_round_trip() {
        let m = GatewayMetrics::new();
        let nasty = "mo\"del\\with}newline\nand,comma";
        m.job_started();
        m.job_finished(nasty, Duration::from_millis(1), false);
        let text = m.to_prometheus();
        let parsed = PromText::parse(&text).unwrap();
        let sample = parsed
            .sample("shiptlm_gateway_jobs_total", "model", nasty)
            .expect("escaped label value must round-trip through the parser");
        assert_eq!(sample.value, 1.0);
    }

    #[test]
    fn http_endpoint_serves_metrics() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let metrics = Arc::new(GatewayMetrics::new());
        metrics.job_rejected();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle =
            spawn_metrics_server(listener, Arc::clone(&metrics), Arc::clone(&shutdown)).unwrap();
        let body = http_get(addr, "/metrics").unwrap();
        let parsed = PromText::parse(&body).unwrap();
        let rejected = parsed
            .samples
            .iter()
            .find(|s| s.name == "shiptlm_gateway_jobs_rejected_total")
            .unwrap();
        assert_eq!(rejected.value, 1.0);
        assert!(http_get(addr, "/nope").is_err());
        shutdown.store(true, Ordering::Release);
        handle.join().unwrap();
    }
}
