//! End-to-end gateway smoke: start a gateway, drive it with both codecs,
//! verify cache hits and the `/metrics` endpoint, shut down cleanly.
//!
//! Run with `cargo run -p shiptlm-gateway --example gateway_smoke`.
//! Exits non-zero (panics) on any failed check; CI treats the printed
//! `gateway smoke OK` as the pass marker.

use std::time::Instant;

use shiptlm_explore::prelude::ArchSpec;
use shiptlm_gateway::prelude::*;
use shiptlm_testkit::model::{GenConfig, ModelSpec};
use shiptlm_testkit::prom::PromText;

fn main() {
    let gateway = Gateway::start(GatewayConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        queue_capacity: 8,
        executors: 2,
        threads_per_job: 2,
        ..GatewayConfig::default()
    })
    .expect("gateway start");
    println!(
        "gateway on {}, metrics on {:?}",
        gateway.addr(),
        gateway.metrics_addr()
    );

    let spec = ModelSpec::random(2026, &GenConfig::default());
    let archs = vec![
        ArchSpec::plb(),
        ArchSpec::opb().with_burst(16),
        ArchSpec::crossbar(),
    ];
    let request = |id| JobRequest {
        id,
        spec: spec.clone(),
        archs: archs.clone(),
        backend: BackendChoice::De,
        want_trace: true,
        trace: None,
        want_progress: false,
    };

    // Same job over both codecs: the binary client computes it, the JSON
    // client must hit the cache and see identical rows.
    let mut bin_client = GatewayClient::connect(gateway.addr(), &BIN).expect("bin connect");
    let mut json_client = GatewayClient::connect(gateway.addr(), &JSON).expect("json connect");

    let t0 = Instant::now();
    let first = bin_client.run_job(&request(1)).expect("bin job");
    assert!(first.is_done(), "first job must complete: {:?}", first.status);
    assert_eq!(first.rows.len(), archs.len());
    assert!(!first.trace.is_empty(), "trace was requested");
    println!(
        "first run: {} rows in {:.1} ms",
        first.rows.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let second = json_client.run_job(&request(2)).expect("json job");
    assert_eq!(
        second.status,
        JobStatus::Done { cached: true },
        "identical job must be a cache hit"
    );
    assert_eq!(second.rows, first.rows, "rows must match across codecs");
    assert_eq!(second.trace, first.trace);

    // Throughput probe: distinct tiny jobs, then the same batch again as
    // pure cache hits.
    let t1 = Instant::now();
    let batch = 10u64;
    for i in 0..batch {
        let req = JobRequest {
            id: 100 + i,
            spec: ModelSpec::random(3000 + i, &GenConfig::default()),
            archs: vec![ArchSpec::plb(), ArchSpec::crossbar()],
            backend: BackendChoice::De,
            want_trace: false,
            trace: None,
            want_progress: false,
        };
        let out = bin_client.run_job_with_retry(&req, 20).expect("batch job");
        assert!(out.is_done(), "batch job {i} failed: {:?}", out.status);
    }
    let cold = t1.elapsed();
    let t2 = Instant::now();
    for i in 0..batch {
        let req = JobRequest {
            id: 200 + i,
            spec: ModelSpec::random(3000 + i, &GenConfig::default()),
            archs: vec![ArchSpec::plb(), ArchSpec::crossbar()],
            backend: BackendChoice::De,
            want_trace: false,
            trace: None,
            want_progress: false,
        };
        let out = bin_client.run_job_with_retry(&req, 20).expect("cached job");
        assert_eq!(out.status, JobStatus::Done { cached: true });
    }
    let warm = t2.elapsed();
    println!(
        "throughput: {:.1} jobs/s cold, {:.1} jobs/s cached",
        batch as f64 / cold.as_secs_f64(),
        batch as f64 / warm.as_secs_f64()
    );

    // The exporter must produce parseable text 0.0.4 with the counts we
    // just generated.
    let body = http_get(gateway.metrics_addr().unwrap(), "/metrics").expect("scrape");
    let parsed = PromText::parse(&body).expect("prometheus parse");
    let hits = parsed
        .samples
        .iter()
        .find(|s| s.name == "shiptlm_gateway_cache_hits_total")
        .expect("cache hit counter");
    assert!(hits.value >= 11.0, "expected ≥11 cache hits, saw {}", hits.value);

    gateway.shutdown();
    println!("gateway smoke OK");
}
