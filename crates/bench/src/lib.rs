//! Shared helpers for the shiptlm benchmark harness.
//!
//! The benches themselves live in `benches/`; see `EXPERIMENTS.md` at the
//! repository root for the experiment index.
pub use shiptlm;
