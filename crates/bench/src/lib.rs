//! Shared helpers for the shiptlm benchmark harness.
//!
//! The benches themselves live in `benches/`; see `EXPERIMENTS.md` at the
//! repository root for the experiment index. They run on [`minibench`], a
//! small self-contained harness exposing the subset of the `criterion` API
//! the benches use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `criterion_group!`/`criterion_main!`), so the workspace
//! builds without network access to crates.io.
pub use shiptlm;

pub mod minibench {
    //! Minimal wall-clock benchmark harness with a `criterion`-shaped API.
    //!
    //! Each benchmark is warmed up for `warm_up_time`, then timed for up to
    //! `measurement_time` or `sample_size` batches, whichever comes first.
    //! Results (mean ns/iter and, when a throughput is declared, MB/s) are
    //! printed to stdout and recorded in a process-wide registry that
    //! [`write_json`] can dump as a machine-readable `BENCH_*.json` artifact.
    //! Setting `MINIBENCH_QUICK=1` shrinks every timing budget to smoke-test
    //! size for CI (see [`quick_mode`]).

    use std::fmt::Display;
    use std::hint;
    use std::io::Write as _;
    use std::path::Path;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// Opaque value barrier preventing the optimizer from deleting the
    /// benchmarked computation.
    pub fn black_box<T>(v: T) -> T {
        hint::black_box(v)
    }

    /// True when the `MINIBENCH_QUICK` environment variable is set (to any
    /// value other than `0` or the empty string). Quick mode shrinks every
    /// group's timing budget to a smoke-test size so CI can exercise the
    /// bench binaries in seconds; the numbers it produces are not
    /// publication-grade.
    pub fn quick_mode() -> bool {
        match std::env::var("MINIBENCH_QUICK") {
            Ok(v) => !v.is_empty() && v != "0",
            Err(_) => false,
        }
    }

    /// One finished measurement, as recorded by the results registry.
    #[derive(Debug, Clone)]
    pub struct BenchResult {
        /// Group name (`Criterion::benchmark_group` argument).
        pub group: String,
        /// Benchmark id within the group.
        pub id: String,
        /// Mean nanoseconds per iteration.
        pub mean_ns: f64,
        /// Timed iterations behind the mean.
        pub iters: u64,
        /// Derived MB/s (or Melem/s), when a throughput was declared.
        pub throughput: Option<f64>,
    }

    static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

    fn record_result(r: BenchResult) {
        RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push(r);
    }

    /// Snapshot of every result recorded so far in this process.
    pub fn results() -> Vec<BenchResult> {
        RESULTS.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn json_escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Writes every recorded result as a small self-describing JSON document
    /// (no external serializer — the format is flat enough to hand-roll).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or writing `path`.
    pub fn write_json(bench: &str, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"bench\": \"{}\",", json_escape(bench))?;
        writeln!(f, "  \"quick\": {},", quick_mode())?;
        writeln!(f, "  \"results\": [")?;
        let rows = results();
        for (i, r) in rows.iter().enumerate() {
            let tp = match r.throughput {
                Some(t) => format!("{t:.2}"),
                None => "null".to_string(),
            };
            let comma = if i + 1 == rows.len() { "" } else { "," };
            writeln!(
                f,
                "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \"throughput\": {}}}{}",
                json_escape(&r.group),
                json_escape(&r.id),
                r.mean_ns,
                r.iters,
                tp,
                comma
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        eprintln!("bench results written to {}", path.display());
        Ok(())
    }

    /// Declared units of work per iteration, used to derive throughput.
    #[derive(Debug, Clone, Copy)]
    pub enum Throughput {
        /// Bytes processed per iteration.
        Bytes(u64),
        /// Logical elements processed per iteration.
        Elements(u64),
    }

    /// A benchmark identifier: `function_name/parameter`.
    #[derive(Debug, Clone)]
    pub struct BenchmarkId {
        id: String,
    }

    impl BenchmarkId {
        /// Builds an id from a function name and a displayed parameter.
        pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
            BenchmarkId {
                id: format!("{}/{}", function.into(), parameter),
            }
        }
    }

    impl From<&str> for BenchmarkId {
        fn from(s: &str) -> Self {
            BenchmarkId { id: s.to_string() }
        }
    }

    /// Per-iteration timer handed to benchmark closures.
    #[derive(Debug)]
    pub struct Bencher {
        warm_up: Duration,
        measurement: Duration,
        samples: usize,
        /// Mean nanoseconds per iteration, filled in by `iter`.
        mean_ns: f64,
        iters: u64,
    }

    impl Bencher {
        /// Times `f` repeatedly and records the mean cost per call.
        pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
            // Warm-up: run untimed until the warm-up budget is spent.
            let start = Instant::now();
            while start.elapsed() < self.warm_up {
                black_box(f());
            }
            // Measure: time batches until the measurement budget or the
            // sample count is exhausted.
            let mut total = Duration::ZERO;
            let mut iters: u64 = 0;
            for _ in 0..self.samples {
                let t0 = Instant::now();
                black_box(f());
                total += t0.elapsed();
                iters += 1;
                if total >= self.measurement {
                    break;
                }
            }
            self.iters = iters.max(1);
            self.mean_ns = total.as_nanos() as f64 / self.iters as f64;
        }
    }

    /// A named group of benchmarks sharing timing configuration.
    ///
    /// Under [`quick_mode`] the timing setters become no-ops: the group keeps
    /// its smoke-test budget no matter what the bench asks for, so CI runs
    /// finish fast without editing each bench.
    #[derive(Debug)]
    pub struct BenchmarkGroup {
        name: String,
        sample_size: usize,
        warm_up: Duration,
        measurement: Duration,
        throughput: Option<Throughput>,
        quick: bool,
    }

    impl BenchmarkGroup {
        /// Sets how many timed samples to collect per benchmark.
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            if !self.quick {
                self.sample_size = n.max(1);
            }
            self
        }

        /// Sets the untimed warm-up budget.
        pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
            if !self.quick {
                self.warm_up = d;
            }
            self
        }

        /// Sets the timed measurement budget.
        pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
            if !self.quick {
                self.measurement = d;
            }
            self
        }

        /// Declares per-iteration throughput for subsequent benchmarks.
        pub fn throughput(&mut self, t: Throughput) -> &mut Self {
            self.throughput = Some(t);
            self
        }

        /// Runs one benchmark under this group's configuration.
        pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
        where
            F: FnMut(&mut Bencher),
        {
            let id = id.into();
            let mut b = Bencher {
                warm_up: self.warm_up,
                measurement: self.measurement,
                samples: self.sample_size,
                mean_ns: 0.0,
                iters: 0,
            };
            f(&mut b);
            self.report(&id.id, &b);
            self
        }

        /// Runs one parameterized benchmark.
        pub fn bench_with_input<I: ?Sized, F>(
            &mut self,
            id: BenchmarkId,
            input: &I,
            mut f: F,
        ) -> &mut Self
        where
            F: FnMut(&mut Bencher, &I),
        {
            let mut b = Bencher {
                warm_up: self.warm_up,
                measurement: self.measurement,
                samples: self.sample_size,
                mean_ns: 0.0,
                iters: 0,
            };
            f(&mut b, input);
            self.report(&id.id, &b);
            self
        }

        fn report(&self, id: &str, b: &Bencher) {
            let mut line = format!(
                "{}/{:<40} {:>14.1} ns/iter ({} iters)",
                self.name, id, b.mean_ns, b.iters
            );
            let mut rate = None;
            if let Some(tp) = self.throughput {
                let (per_iter, unit) = match tp {
                    Throughput::Bytes(n) => (n as f64, "MB/s"),
                    Throughput::Elements(n) => (n as f64, "Melem/s"),
                };
                if b.mean_ns > 0.0 {
                    let r = per_iter * 1e3 / b.mean_ns;
                    line += &format!("  {r:>10.2} {unit}");
                    rate = Some(r);
                }
            }
            println!("{line}");
            record_result(BenchResult {
                group: self.name.clone(),
                id: id.to_string(),
                mean_ns: b.mean_ns,
                iters: b.iters,
                throughput: rate,
            });
        }

        /// Ends the group (kept for criterion API parity).
        pub fn finish(&mut self) {}
    }

    /// Top-level harness handle passed to each benchmark function.
    #[derive(Debug, Default)]
    pub struct Criterion {
        _private: (),
    }

    impl Criterion {
        /// Opens a named benchmark group with default timing settings
        /// (smoke-test settings under [`quick_mode`]).
        pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
            let quick = quick_mode();
            let (sample_size, warm_up, measurement) = if quick {
                (3, Duration::from_millis(10), Duration::from_millis(50))
            } else {
                (20, Duration::from_millis(200), Duration::from_secs(1))
            };
            BenchmarkGroup {
                name: name.into(),
                sample_size,
                warm_up,
                measurement,
                throughput: None,
                quick,
            }
        }

        /// Runs an ungrouped benchmark with default settings.
        pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
        where
            F: FnMut(&mut Bencher),
        {
            self.benchmark_group("bench").bench_function(id, f);
            self
        }
    }

    /// Bundles benchmark functions into a single runner, mirroring
    /// `criterion_group!`.
    #[macro_export]
    macro_rules! criterion_group {
        ($name:ident, $($target:path),+ $(,)?) => {
            fn $name() {
                let mut c = $crate::minibench::Criterion::default();
                $($target(&mut c);)+
            }
        };
    }

    /// Emits `main`, mirroring `criterion_main!`.
    #[macro_export]
    macro_rules! criterion_main {
        ($($group:ident),+ $(,)?) => {
            fn main() {
                $($group();)+
            }
        };
    }

    pub use crate::{criterion_group, criterion_main};
}

#[cfg(test)]
mod tests {
    use super::minibench::*;
    use std::time::Duration;

    #[test]
    fn minibench_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::new("sized", 7), &7u32, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();

        let recorded = results();
        assert!(recorded.iter().any(|r| r.group == "t" && r.id == "sum"));
        let sum = recorded.iter().find(|r| r.id == "sum").unwrap();
        assert!(sum.mean_ns > 0.0 && sum.iters >= 1);
        assert!(
            sum.throughput.is_some(),
            "Bytes throughput should derive MB/s"
        );
    }

    #[test]
    fn json_output_is_well_formed() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("json");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        g.finish();

        let dir = std::env::temp_dir().join("shiptlm-minibench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_json("unit-test", &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"unit-test\""));
        assert!(text.contains("\"group\": \"json\""));
        assert!(text.contains("\"id\": \"noop\""));
        // Flat sanity checks on JSON shape: balanced braces/brackets, no
        // trailing comma before the closing bracket.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(!text.contains(",\n  ]"));
        std::fs::remove_file(&path).ok();
    }
}
