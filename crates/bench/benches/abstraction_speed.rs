//! **E1 — Simulation speed vs abstraction level** (paper §1: "very high
//! simulation speeds become feasible enabling fast communication
//! architecture exploration").
//!
//! The same 8-PE pipeline workload is simulated at the untimed
//! component-assembly level, the CCATB (bus CAM) level, and the pin-accurate
//! prototype level. The expected shape: each refinement costs roughly an
//! order of magnitude in host simulation speed (messages per host second).

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion};

const STAGES: usize = 6;
const BLOCKS: u32 = 16;

fn app(block_bytes: usize) -> AppSpec {
    workload::pipeline(STAGES, BLOCKS, block_bytes, SimDur::ZERO)
}

fn bench_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("abstraction_speed");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    for &bytes in &[16usize, 256] {
        let roles = run_component_assembly(&app(bytes)).unwrap().roles;
        g.bench_with_input(
            BenchmarkId::new("component_assembly", bytes),
            &bytes,
            |b, &bytes| b.iter(|| run_component_assembly(&app(bytes)).unwrap()),
        );
        g.bench_with_input(BenchmarkId::new("ccatb", bytes), &bytes, |b, &bytes| {
            b.iter(|| run_mapped(&app(bytes), &roles, &ArchSpec::plb()).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("pin_accurate", bytes),
            &bytes,
            |b, &bytes| b.iter(|| run_pin_accurate(&app(bytes), &roles, &ArchSpec::plb()).unwrap()),
        );
    }
    g.finish();

    // Simulation-effort table: host speed and kernel effort per level.
    println!("\n=== E1: simulation speed vs abstraction level (6-PE pipeline, 16x256B) ===");
    println!(
        "{:<22} {:>12} {:>14} {:>16} {:>14}",
        "level", "messages", "delta cycles", "msgs/host-sec", "sim time"
    );
    let ca = run_component_assembly(&app(256)).unwrap();
    let roles = ca.roles.clone();
    let rows = [
        ("component-assembly", ca.output),
        (
            "ccatb",
            run_mapped(&app(256), &roles, &ArchSpec::plb())
                .unwrap()
                .output,
        ),
        (
            "pin-accurate",
            run_pin_accurate(&app(256), &roles, &ArchSpec::plb())
                .unwrap()
                .output,
        ),
    ];
    let mut speeds = Vec::new();
    for (name, out) in rows {
        let msgs = out
            .log
            .to_vec()
            .iter()
            .filter(|r| r.op == ShipOp::Recv)
            .count();
        let speed = msgs as f64 / out.wall_seconds;
        println!(
            "{:<22} {:>12} {:>14} {:>16.0} {:>14}",
            name,
            msgs,
            out.delta_cycles,
            speed,
            out.sim_time.to_string()
        );
        speeds.push(speed);
    }
    println!(
        "speedup component-assembly vs ccatb: {:.1}x, ccatb vs pin: {:.1}x\n",
        speeds[0] / speeds[1],
        speeds[1] / speeds[2]
    );
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
