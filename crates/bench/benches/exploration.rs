//! **E2 — Fast communication architecture exploration** (paper §3: "fast
//! yet timing-accurate communication architecture exploration is feasible").
//!
//! Sweeps {PLB, OPB, crossbar} × {priority, round-robin, TDMA} × burst
//! {16, 64, 256} over a parallel-streams workload, printing the full
//! latency/throughput/utilization table and benchmarking the host cost of
//! one sweep (the "fast" part of the claim).

use shiptlm_bench::minibench::{criterion_group, criterion_main, Criterion};
use shiptlm::prelude::*;

fn the_app() -> AppSpec {
    workload::parallel_streams(4, 24, 256)
}

fn candidates() -> Vec<ArchSpec> {
    let mut v = Vec::new();
    for burst in [16usize, 64, 256] {
        v.push(ArchSpec::plb().with_burst(burst));
        v.push(
            ArchSpec::plb()
                .with_arb(ArbPolicy::RoundRobin)
                .with_burst(burst),
        );
        v.push(ArchSpec::opb().with_burst(burst));
        v.push(ArchSpec::crossbar().with_burst(burst));
    }
    v.push(ArchSpec::plb().with_arb(ArbPolicy::Tdma {
        slot: SimDur::us(2),
        slots: 4,
    }));
    v
}

fn bench_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("exploration");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("sweep_13_configs", |b| {
        b.iter(|| {
            Sweep::new(the_app())
                .archs(candidates())
                .run()
                .unwrap()
        })
    });
    g.bench_function("single_candidate", |b| {
        let roles = run_component_assembly(&the_app()).unwrap().roles;
        b.iter(|| run_mapped(&the_app(), &roles, &ArchSpec::plb()).unwrap())
    });
    g.finish();

    println!("\n=== E2: architecture exploration table (4 parallel streams, 24x256B) ===");
    let report = Sweep::new(the_app())
        .with_untimed_baseline()
        .archs(candidates())
        .run()
        .unwrap();
    println!("{report}");
    println!("csv:\n{}", report.to_csv());
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
