//! **E2 — Fast communication architecture exploration** (paper §3: "fast
//! yet timing-accurate communication architecture exploration is feasible").
//!
//! Sweeps {PLB, OPB, crossbar} × {priority, round-robin, TDMA} × burst
//! {16, 64, 256} over a parallel-streams workload, printing the full
//! latency/throughput/utilization table and benchmarking the host cost of
//! one sweep (the "fast" part of the claim) — serially and fanned out over
//! worker threads via `Sweep::run_parallel`.
//!
//! Results are also written to `BENCH_exploration.json` at the workspace
//! root for the CI artifact and EXPERIMENTS.md tables.

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, write_json, Criterion};

fn the_app() -> AppSpec {
    workload::parallel_streams(4, 24, 256)
}

fn candidates() -> Vec<ArchSpec> {
    let mut v = Vec::new();
    for burst in [16usize, 64, 256] {
        v.push(ArchSpec::plb().with_burst(burst));
        v.push(
            ArchSpec::plb()
                .with_arb(ArbPolicy::RoundRobin)
                .with_burst(burst),
        );
        v.push(ArchSpec::opb().with_burst(burst));
        v.push(ArchSpec::crossbar().with_burst(burst));
    }
    v.push(ArchSpec::plb().with_arb(ArbPolicy::Tdma {
        slot: SimDur::us(2),
        slots: 4,
    }));
    v
}

fn bench_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("exploration");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("sweep_13_configs/serial", |b| {
        b.iter(|| Sweep::new(the_app()).archs(candidates()).run().unwrap())
    });
    for threads in [2usize, 4, 8] {
        let id = format!("sweep_13_configs/parallel_t{threads}");
        g.bench_function(id.as_str(), |b| {
            b.iter(|| {
                Sweep::new(the_app())
                    .archs(candidates())
                    .run_parallel(threads)
                    .unwrap()
            })
        });
    }
    g.bench_function("single_candidate", |b| {
        let roles = run_component_assembly(&the_app()).unwrap().roles;
        b.iter(|| run_mapped(&the_app(), &roles, &ArchSpec::plb()).unwrap())
    });

    // The ROADMAP-1 scale: ~1k candidates of a tiny workload, where
    // per-candidate cost is milliseconds and scheduling overhead decides
    // the outcome. This is the case the persistent pool + batched claiming
    // were built for, and what the perf guard pins.
    let tiny_app = || workload::parallel_streams(2, 6, 64);
    let grid = || ArchGrid::exploration_default().generate_n(1024);
    g.bench_function("sweep_1024/serial", |b| {
        b.iter(|| Sweep::new(tiny_app()).archs(grid()).run().unwrap())
    });
    for threads in [2usize, 8] {
        let id = format!("sweep_1024/parallel_t{threads}");
        g.bench_function(id.as_str(), |b| {
            b.iter(|| {
                Sweep::new(tiny_app())
                    .archs(grid())
                    .run_parallel(threads)
                    .unwrap()
            })
        });
    }
    g.bench_function("sweep_1024/pruned_t8", |b| {
        b.iter(|| {
            Sweep::new(tiny_app())
                .archs(grid())
                .with_pruning(PruneConfig::sim_time())
                .run_parallel(8)
                .unwrap()
        })
    });

    // Mesh-NoC scaling: one uniform-traffic candidate per mesh size, so
    // the table shows how host cost grows with the node count (the 16×16
    // point is the 256-PE scale the NoC CAM is specified to reach).
    for n in [4usize, 8, 16] {
        let id = format!("noc_mesh/{n}x{n}");
        let app = || workload::uniform_traffic(8, 6, 64, 0xE2);
        let roles = run_component_assembly(&app()).unwrap().roles;
        g.bench_function(id.as_str(), |b| {
            b.iter(|| run_mapped(&app(), &roles, &ArchSpec::noc(n as u8, n as u8)).unwrap())
        });
    }
    g.finish();

    println!("\n=== E2: architecture exploration table (4 parallel streams, 24x256B) ===");
    let report = Sweep::new(the_app())
        .with_untimed_baseline()
        .archs(candidates())
        .run_parallel(std::thread::available_parallelism().map_or(2, |n| n.get()))
        .unwrap();
    println!("{report}");
    println!("csv:\n{}", report.to_csv());

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exploration.json");
    write_json("exploration", out).expect("write BENCH_exploration.json");
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
