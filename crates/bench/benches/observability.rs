//! **E9 — Observability overhead**: cost of the time-resolved metrics
//! registry, the transaction recorder and the host-time profiler relative
//! to an uninstrumented run.
//!
//! The disabled path is designed to cost one relaxed atomic load per
//! instrumented operation, so `baseline` vs the instrumented variants is
//! the headline number. Also prints the per-message cost breakdown.

use shiptlm::kernel::causal::{SpanSink, TraceCtx};
use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, write_json, Criterion};

fn the_app() -> AppSpec {
    workload::parallel_streams(4, 24, 256)
}

fn bench_observability(c: &mut Criterion) {
    let roles = run_component_assembly(&the_app()).unwrap().roles;
    let arch = ArchSpec::plb();
    let run = |opts: &RunOptions| run_mapped_with(&the_app(), &roles, &arch, opts).unwrap();

    let mut g = c.benchmark_group("observability");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    let baseline = RunOptions::default();
    let metrics = RunOptions::default().with_metrics(SimDur::us(1));
    let recorder = RunOptions::with_recorder(1 << 20);
    let both = RunOptions::with_recorder(1 << 20).with_metrics(SimDur::us(1));

    g.bench_function("baseline", |b| b.iter(|| run(&baseline)));
    g.bench_function("metrics", |b| b.iter(|| run(&metrics)));
    g.bench_function("recorder", |b| b.iter(|| run(&recorder)));
    g.bench_function("metrics+recorder", |b| b.iter(|| run(&both)));

    // Causal tracing across a whole sweep. The untraced variant goes
    // through every span decision point with tracing disabled — that path
    // is one relaxed atomic load / `Option` branch per decision, so
    // `sweep-untraced` vs the plain per-run baseline above is the
    // disabled-cost number, and `sweep-traced` is the armed cost
    // (span construction + sink pushes + txn stitching).
    let the_archs = || vec![ArchSpec::plb(), ArchSpec::opb().with_burst(16)];
    g.bench_function("sweep-untraced", |b| {
        b.iter(|| {
            Sweep::new(the_app())
                .archs(the_archs())
                .run()
                .unwrap()
        })
    });
    g.bench_function("sweep-traced", |b| {
        b.iter(|| {
            let sink = SpanSink::new();
            let ctx = TraceCtx {
                trace_id: 0x0b5e,
                parent_span: 0,
            };
            Sweep::new(the_app())
                .archs(the_archs())
                .with_recorder(1 << 16)
                .with_causal(ctx, sink.clone())
                .run()
                .unwrap();
            assert!(!sink.is_empty());
            sink.take()
        })
    });
    g.finish();

    // Sanity: instrumentation must not change the simulation.
    let plain = run(&baseline);
    let observed = run(&both);
    plain
        .output
        .log
        .content_equivalent(&observed.output.log)
        .expect("observability must not perturb content");
    assert_eq!(plain.output.sim_time, observed.output.sim_time);
    assert_eq!(plain.output.delta_cycles, observed.output.delta_cycles);
    let snap = observed.output.metrics.expect("metrics enabled");
    println!(
        "instrumented run: {} series, {} bus txns, identical sim time/deltas ✓\n",
        snap.series.len(),
        snap.counter_total("bus.txns", "plb"),
    );

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_observability.json"
    );
    write_json("observability", out).expect("write BENCH_observability.json");
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
