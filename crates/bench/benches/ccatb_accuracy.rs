//! **A2 — CCATB timing accuracy** (design-choice ablation from DESIGN.md):
//! how close the CCATB bus model's boundary timing comes to the
//! pin-accurate reference, per the CCATB trade-off of Pasricha et al. [4]
//! that the paper's CAM layer adopts.
//!
//! Expected shape: the CCATB model is consistently *faster to simulate* yet
//! tracks the pin-accurate end-to-end time within a bounded factor; the gap
//! grows with per-transaction pin overhead (small payloads) and shrinks for
//! bulk transfers.

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, Criterion};

fn app(blocks: u32, bytes: usize) -> AppSpec {
    workload::pipeline(3, blocks, bytes, SimDur::ZERO)
}

fn bench_accuracy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ccatb_accuracy");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let roles = run_component_assembly(&app(16, 256)).unwrap().roles;
    g.bench_function("ccatb_16x256", |b| {
        b.iter(|| run_mapped(&app(16, 256), &roles, &ArchSpec::plb()).unwrap())
    });
    g.bench_function("pin_16x256", |b| {
        b.iter(|| run_pin_accurate(&app(16, 256), &roles, &ArchSpec::plb()).unwrap())
    });
    g.finish();

    println!("\n=== A2: CCATB vs pin-accurate end-to-end time ===");
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>14} {:>14}",
        "workload", "ccatb time", "pin time", "ratio", "ccatb deltas", "pin deltas"
    );
    for (blocks, bytes) in [(16u32, 32usize), (16, 256), (8, 2048)] {
        let a = app(blocks, bytes);
        let roles = run_component_assembly(&a).unwrap().roles;
        let ccatb = run_mapped(&a, &roles, &ArchSpec::plb()).unwrap();
        let pin = run_pin_accurate(&a, &roles, &ArchSpec::plb()).unwrap();
        println!(
            "{:<16} {:>14} {:>14} {:>9.2}x {:>14} {:>14}",
            format!("{blocks}x{bytes}B"),
            ccatb.output.sim_time.to_string(),
            pin.output.sim_time.to_string(),
            pin.output.sim_time.as_ps() as f64 / ccatb.output.sim_time.as_ps().max(1) as f64,
            ccatb.output.delta_cycles,
            pin.output.delta_cycles,
        );
    }
    println!("(ratio > 1: the pin interface adds per-beat handshake cycles the\n CCATB model intentionally abstracts into its analytic cycle counts)\n");
}

criterion_group!(benches, bench_accuracy);
criterion_main!(benches);
