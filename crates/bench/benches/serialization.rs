//! **E5 — SHIP serialization** (paper §2: the channel "transfers any C++
//! object that implements the `ship_serializable_if` interface … to
//! transform communication objects into serial data streams and vice
//! versa").
//!
//! Measures serialize/deserialize throughput of the wire codec for the
//! object shapes embedded workloads move: raw byte blocks, numeric vectors,
//! nested structures, across payload sizes 16 B – 64 KiB.

use shiptlm_bench::minibench::{
    black_box, criterion_group, criterion_main, write_json, BenchmarkId, Criterion, Throughput,
};
use shiptlm_ship::bytes::ShipBytes;
use shiptlm_ship::codec::{from_bytes, to_bytes, Serde};
use shiptlm_ship::prelude::{ByteReader, ByteWriter, ShipSerialize, WireError};
use shiptlm_ship::serialize::{from_wire, to_wire};

#[derive(Clone, PartialEq, Debug)]
struct Frame {
    seq: u32,
    ts: u64,
    kind: FrameKind,
    payload: Vec<u8>,
}

#[derive(Clone, PartialEq, Debug)]
enum FrameKind {
    Video { width: u16, height: u16 },
    Audio { rate: u32 },
    Control(String),
}

impl ShipSerialize for FrameKind {
    fn serialize(&self, w: &mut ByteWriter) {
        match self {
            FrameKind::Video { width, height } => {
                w.put_u8(0);
                width.serialize(w);
                height.serialize(w);
            }
            FrameKind::Audio { rate } => {
                w.put_u8(1);
                rate.serialize(w);
            }
            FrameKind::Control(s) => {
                w.put_u8(2);
                s.serialize(w);
            }
        }
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(FrameKind::Video {
                width: u16::deserialize(r)?,
                height: u16::deserialize(r)?,
            }),
            1 => Ok(FrameKind::Audio {
                rate: u32::deserialize(r)?,
            }),
            2 => Ok(FrameKind::Control(String::deserialize(r)?)),
            v => Err(WireError::InvalidValue(format!("frame kind {v}"))),
        }
    }
}

impl ShipSerialize for Frame {
    fn serialize(&self, w: &mut ByteWriter) {
        self.seq.serialize(w);
        self.ts.serialize(w);
        self.kind.serialize(w);
        self.payload.serialize(w);
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Frame {
            seq: u32::deserialize(r)?,
            ts: u64::deserialize(r)?,
            kind: FrameKind::deserialize(r)?,
            payload: Vec::deserialize(r)?,
        })
    }
}

fn frame(size: usize) -> Frame {
    Frame {
        seq: 7,
        ts: 123_456_789,
        kind: FrameKind::Video {
            width: 640,
            height: 480,
        },
        payload: (0..size).map(|i| i as u8).collect(),
    }
}

fn bench_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("serialization");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    for &size in &[16usize, 256, 4096, 65536] {
        g.throughput(Throughput::Bytes(size as u64));

        let bytes_vec: Vec<u8> = (0..size).map(|i| i as u8).collect();
        g.bench_with_input(BenchmarkId::new("vec_u8/encode", size), &size, |b, _| {
            b.iter(|| to_wire(&bytes_vec))
        });
        let encoded = to_wire(&bytes_vec);
        g.bench_with_input(BenchmarkId::new("vec_u8/decode", size), &size, |b, _| {
            b.iter(|| from_wire::<Vec<u8>>(&encoded).unwrap())
        });

        let words: Vec<u32> = (0..size / 4).map(|i| i as u32).collect();
        g.bench_with_input(BenchmarkId::new("vec_u32/encode", size), &size, |b, _| {
            b.iter(|| to_wire(&words))
        });

        let f = frame(size);
        g.bench_with_input(
            BenchmarkId::new("serde_struct/encode", size),
            &size,
            |b, _| b.iter(|| to_bytes(&f).unwrap()),
        );
        let fe = to_bytes(&f).unwrap();
        g.bench_with_input(
            BenchmarkId::new("serde_struct/decode", size),
            &size,
            |b, _| b.iter(|| from_bytes::<Frame>(&fe).unwrap()),
        );

        let wrapped = Serde(f.clone());
        g.bench_with_input(
            BenchmarkId::new("serde_wrapper/roundtrip", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let bytes = to_wire(&wrapped);
                    from_wire::<Serde<Frame>>(&bytes).unwrap()
                })
            },
        );
    }
    g.finish();

    // Payload hand-off cost: what each hop of the SHIP stack used to pay
    // (deep Vec clone) versus what it pays now (ShipBytes = Arc bump).
    let mut g = c.benchmark_group("payload_handoff");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_secs(1));
    for &size in &[16usize, 256, 4096, 65536] {
        g.throughput(Throughput::Bytes(size as u64));
        let payload: Vec<u8> = (0..size).map(|i| i as u8).collect();
        g.bench_with_input(BenchmarkId::new("vec_clone", size), &payload, |b, p| {
            b.iter(|| black_box(p.clone()))
        });
        let shared = ShipBytes::from(payload.clone());
        g.bench_with_input(
            BenchmarkId::new("ship_bytes_clone", size),
            &shared,
            |b, p| b.iter(|| black_box(p.clone())),
        );
    }
    g.finish();

    println!("\n=== E5: wire sizes ===");
    for size in [16usize, 256, 4096] {
        let f = frame(size);
        println!(
            "frame payload {size} B -> wire {} B (overhead {} B)",
            to_bytes(&f).unwrap().len(),
            to_bytes(&f).unwrap().len() - size
        );
    }
    println!();

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serialization.json"
    );
    write_json("serialization", out).expect("write BENCH_serialization.json");
}

criterion_group!(benches, bench_serialization);
criterion_main!(benches);
