//! **E4 — Transaction-based HW/SW communication** (paper §4: "fully
//! transaction-based HW/SW communication … without requiring any changes to
//! the source code").
//!
//! The same RPC application runs (a) with both PEs in hardware and (b) with
//! the client generated as eSW on the RTOS. Measures the simulated-time
//! overhead per transaction of the HW/SW interface (driver + bus + mailbox +
//! wakeup) against the HW↔HW wrapper path, plus host cost of each variant.

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn the_app(payload: usize) -> AppSpec {
    workload::rpc(1, 8, payload, SimDur::ZERO)
}

fn bench_hwsw(c: &mut Criterion) {
    let mut g = c.benchmark_group("hwsw_overhead");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &payload in &[64usize, 1024, 4096] {
        let roles = run_component_assembly(&the_app(payload)).unwrap().roles;
        g.bench_with_input(BenchmarkId::new("hw_hw", payload), &payload, |b, &p| {
            b.iter(|| run_mapped(&the_app(p), &roles, &ArchSpec::plb()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("hw_sw", payload), &payload, |b, &p| {
            b.iter(|| {
                run_partitioned(
                    &the_app(p),
                    &roles,
                    &ArchSpec::plb(),
                    &Partition::software(["client0"]),
                )
                .unwrap()
            })
        });
    }
    g.finish();

    println!("\n=== E4: HW/SW interface overhead per RPC transaction ===");
    println!(
        "{:<10} {:>16} {:>16} {:>10} {:>12} {:>10}",
        "payload", "hw rpc (ns)", "hw/sw rpc (ns)", "overhead", "bus txns", "ctx sw"
    );
    for payload in [64usize, 256, 1024, 4096] {
        let app = the_app(payload);
        let ca = run_component_assembly(&app).unwrap();
        let hw = run_mapped(&app, &ca.roles, &ArchSpec::plb()).unwrap();
        let sw = run_partitioned(
            &app,
            &ca.roles,
            &ArchSpec::plb(),
            &Partition::software(["client0"]).with_poll_interval(SimDur::ns(500)),
        )
        .unwrap();
        // Content must be identical whichever side of the boundary runs it.
        ca.output.log.content_equivalent(&hw.output.log).unwrap();
        ca.output
            .log
            .content_equivalent(&sw.mapped.output.log)
            .unwrap();
        let rpc_ns = |log: &TransactionLog| {
            let recs = log.to_vec();
            let reqs: Vec<_> = recs.iter().filter(|r| r.op == ShipOp::Request).collect();
            reqs.iter()
                .map(|r| r.end.saturating_since(r.start).as_ns() as f64)
                .sum::<f64>()
                / reqs.len() as f64
        };
        let hw_ns = rpc_ns(&hw.output.log);
        let sw_ns = rpc_ns(&sw.mapped.output.log);
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>9.2}x {:>12} {:>10}",
            payload,
            hw_ns,
            sw_ns,
            sw_ns / hw_ns,
            sw.mapped.bus.transactions,
            sw.rtos.ctx_switches
        );
    }
    println!();
}

criterion_group!(benches, bench_hwsw);
criterion_main!(benches);
