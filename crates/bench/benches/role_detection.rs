//! **E3 — Automatic master/slave detection** (paper §2: "when consequently
//! applied, this allows for automatic master/slave detection").
//!
//! Benchmarks role detection over apps of growing channel count and checks
//! detection correctness against ground truth for every topology shape.

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("role_detection");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &pairs in &[2usize, 8, 32] {
        g.bench_with_input(
            BenchmarkId::new("parallel_streams", pairs),
            &pairs,
            |b, &pairs| {
                b.iter(|| {
                    run_component_assembly(&workload::parallel_streams(pairs, 2, 16)).unwrap()
                })
            },
        );
    }
    for &stages in &[4usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("pipeline", stages),
            &stages,
            |b, &stages| {
                b.iter(|| {
                    run_component_assembly(&workload::pipeline(stages, 2, 16, SimDur::ZERO))
                        .unwrap()
                })
            },
        );
    }
    g.finish();

    // Correctness summary across topologies.
    println!("\n=== E3: detection correctness ===");
    let mut checked = 0;
    let mut correct = 0;

    // Pipelines: the upstream end of every hop is the master.
    for stages in 2..10 {
        let ca = run_component_assembly(&workload::pipeline(stages, 2, 16, SimDur::ZERO)).unwrap();
        for (k, (_ch, master)) in ca.roles.master_of.iter().enumerate() {
            checked += 1;
            let expected = if k == 0 {
                "source".to_string()
            } else {
                format!("stage{}", k - 1)
            };
            if *master == expected {
                correct += 1;
            }
        }
    }
    // RPC: the client is always the master.
    for clients in 1..6 {
        let ca = run_component_assembly(&workload::rpc(clients, 2, 16, SimDur::ZERO)).unwrap();
        for (ch, master) in &ca.roles.master_of {
            checked += 1;
            let idx: String = ch.chars().filter(|c| c.is_ascii_digit()).collect();
            if *master == format!("client{idx}") {
                correct += 1;
            }
        }
    }
    println!("{correct}/{checked} channel roles detected correctly");
    assert_eq!(correct, checked, "role detection must be exact");

    // Inconsistent PEs must be rejected, not mis-mapped.
    let mut bad = AppSpec::new("bad");
    bad.add_pe("x", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            ports[0].send(ctx, &1u8).unwrap();
            let _: u8 = ports[0].recv(ctx).unwrap();
        })
    });
    bad.add_pe("y", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            let _: u8 = ports[0].recv(ctx).unwrap();
            ports[0].send(ctx, &2u8).unwrap();
        })
    });
    bad.connect("c", "x", "y");
    assert!(run_component_assembly(&bad).is_err());
    println!("inconsistent call usage correctly rejected\n");
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
