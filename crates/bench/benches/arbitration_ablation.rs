//! **A1 — Arbitration policy ablation** (design-choice ablation from
//! DESIGN.md): how the CCATB bus arbitration policy shapes per-master wait
//! under an asymmetric hotspot load.
//!
//! Expected shape: fixed priority minimizes the favoured master's wait but
//! starves the rest; round-robin evens mean waits out; TDMA bounds the
//! worst case at the cost of idle slots (lower utilization, longer total).

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn the_app() -> AppSpec {
    workload::hotspot(3, 8, 256)
}

fn policies() -> Vec<(&'static str, ArbPolicy)> {
    vec![
        ("priority", ArbPolicy::FixedPriority),
        ("round_robin", ArbPolicy::RoundRobin),
        (
            "tdma",
            ArbPolicy::Tdma {
                slot: SimDur::us(1),
                slots: 6,
            },
        ),
    ]
}

fn bench_arbitration(c: &mut Criterion) {
    let roles = run_component_assembly(&the_app()).unwrap().roles;
    let mut g = c.benchmark_group("arbitration_ablation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, policy) in policies() {
        g.bench_with_input(BenchmarkId::new("hotspot", name), &policy, |b, p| {
            b.iter(|| run_mapped(&the_app(), &roles, &ArchSpec::plb().with_arb(p.clone())).unwrap())
        });
    }
    g.finish();

    println!("\n=== A1: per-master wait cycles by arbitration policy (3-master hotspot) ===");
    println!(
        "{:<12} {:>12} {:>8} | {:>24}",
        "policy", "total time", "util", "mean wait cycles per master"
    );
    for (name, policy) in policies() {
        let run = run_mapped(&the_app(), &roles, &ArchSpec::plb().with_arb(policy)).unwrap();
        let waits: Vec<String> = run
            .bus
            .per_master
            .iter()
            .map(|(m, s)| format!("M{m}:{:.1}", s.wait_cycles.mean()))
            .collect();
        println!(
            "{:<12} {:>12} {:>7.0}% | {}",
            name,
            run.output.sim_time.to_string(),
            run.bus.utilization(run.output.sim_time) * 100.0,
            waits.join("  ")
        );
    }
    println!();
}

criterion_group!(benches, bench_arbitration);
criterion_main!(benches);
