//! **Direct-execution backend vs the DE kernel** at the untimed
//! component-assembly level (ROADMAP item 2: the level designers iterate
//! in, so its msgs/host-sec bounds exploration throughput).
//!
//! The same three untimed workloads — pipeline, fan-out, RPC — run on the
//! delta-cycle kernel and on the direct backend; throughput is application
//! messages per host second. Results land in `BENCH_direct.json` for the CI
//! artifact and EXPERIMENTS.md.

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{
    criterion_group, criterion_main, write_json, BenchmarkId, Criterion, Throughput,
};

const BLOCKS: u32 = 16;
const BYTES: usize = 256;

/// One source feeding `sinks` independent sinks round-robin.
fn fanout_app(sinks: usize) -> AppSpec {
    let mut app = AppSpec::new("fanout");
    app.add_pe("source", move || {
        Box::new(move |ctx, ports: Vec<ShipPort>| {
            for i in 0..BLOCKS {
                for port in &ports {
                    let data = workload::block(u64::from(i), BYTES);
                    port.send(ctx, &data).unwrap();
                }
            }
        })
    });
    for s in 0..sinks {
        let name = format!("sink{s}");
        app.add_pe(&name, move || {
            Box::new(move |ctx, ports: Vec<ShipPort>| {
                for i in 0..BLOCKS {
                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                    assert_eq!(data, workload::block(u64::from(i), BYTES));
                }
            })
        });
        app.connect(&format!("f{s}"), "source", &name);
    }
    app
}

/// (name, app factory, application messages delivered per run).
type Workload = (&'static str, fn() -> AppSpec, u64);

fn workloads() -> Vec<Workload> {
    vec![
        (
            "pipeline",
            || workload::pipeline(6, BLOCKS, BYTES, SimDur::ZERO),
            5 * u64::from(BLOCKS),
        ),
        ("fanout", || fanout_app(4), 4 * u64::from(BLOCKS)),
        (
            "rpc",
            || workload::rpc(2, BLOCKS, BYTES, SimDur::ZERO),
            2 * 2 * u64::from(BLOCKS),
        ),
    ]
}

fn backend_opts(backend: Backend) -> RunOptions {
    RunOptions::default().with_backend(backend)
}

fn bench_direct(c: &mut Criterion) {
    let mut g = c.benchmark_group("direct");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    for (name, app, messages) in workloads() {
        g.throughput(Throughput::Elements(messages));
        for backend in [Backend::De, Backend::Direct] {
            let opts = backend_opts(backend);
            // The run must actually use the requested backend, not fall
            // back: assert once outside the timed loop.
            let probe = run_component_assembly_with(&app(), &opts).unwrap();
            assert_eq!(probe.backend.used, backend, "{name} fell back");
            g.bench_with_input(BenchmarkId::new(name, backend), &opts, |b, opts| {
                b.iter(|| run_component_assembly_with(&app(), opts).unwrap())
            });
        }
    }
    g.finish();

    // msgs/host-sec table for EXPERIMENTS.md E1.
    println!("\n=== Direct execution vs DE kernel (untimed level, msgs/host-sec) ===");
    println!(
        "{:<10} {:>10} {:>16} {:>16} {:>9}",
        "workload", "messages", "de", "direct", "speedup"
    );
    for (name, app, messages) in workloads() {
        let speed = |backend| {
            // Median-of-5 wall times: single runs are microseconds and
            // jittery, and this table feeds a committed artifact.
            let mut secs: Vec<f64> = (0..5)
                .map(|_| {
                    run_component_assembly_with(&app(), &backend_opts(backend))
                        .unwrap()
                        .output
                        .wall_seconds
                })
                .collect();
            secs.sort_by(f64::total_cmp);
            messages as f64 / secs[2]
        };
        let de = speed(Backend::De);
        let direct = speed(Backend::Direct);
        println!(
            "{:<10} {:>10} {:>16.0} {:>16.0} {:>8.1}x",
            name,
            messages,
            de,
            direct,
            direct / de
        );
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_direct.json");
    write_json("direct", out).expect("write BENCH_direct.json");
}

criterion_group!(benches, bench_direct);
criterion_main!(benches);
