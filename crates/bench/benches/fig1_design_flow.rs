//! **F1 — Figure 1 (the design flow).**
//!
//! One source application refined through component-assembly → CCATB →
//! pin-accurate, with transaction-log equivalence checked at every step.
//! Measures the host cost of each flow stage and prints the per-level
//! comparison table (the reproduction's rendition of Figure 1's flow).

use shiptlm::prelude::*;
use shiptlm_bench::minibench::{criterion_group, criterion_main, Criterion};

fn the_app() -> AppSpec {
    workload::pipeline(4, 16, 256, SimDur::us(1))
}

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_design_flow");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));

    g.bench_function("component_assembly", |b| {
        b.iter(|| run_component_assembly(&the_app()).unwrap())
    });
    let roles = run_component_assembly(&the_app()).unwrap().roles;
    g.bench_function("ccatb_mapping", |b| {
        b.iter(|| run_mapped(&the_app(), &roles, &ArchSpec::plb()).unwrap())
    });
    g.bench_function("pin_accurate", |b| {
        b.iter(|| run_pin_accurate(&the_app(), &roles, &ArchSpec::plb()).unwrap())
    });
    g.bench_function("full_flow_with_checks", |b| {
        b.iter(|| {
            DesignFlow::new(the_app(), ArchSpec::plb())
                .with_pin_level()
                .run()
                .unwrap()
        })
    });
    g.finish();

    // The per-level table (printed once per bench run).
    let run = DesignFlow::new(the_app(), ArchSpec::plb())
        .with_pin_level()
        .run()
        .unwrap();
    println!("\n=== F1: per-level summary (pipeline 4 stages, 16x256B) ===");
    println!("{}", run.report());
    println!(
        "detected roles: {:?}",
        run.component_assembly.roles.master_of
    );
    println!("equivalence: all levels content-equivalent\n");
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
