//! Application netlists: processing elements connected by SHIP channels.
//!
//! An [`AppSpec`] is the *component-assembly model* of the paper's Figure 1:
//! PEs plus directed point-to-point SHIP channels, with no notion of the
//! target architecture. The same spec elaborates to every abstraction level.

use std::fmt;
use std::sync::Arc;

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_ship::channel::ShipPort;

/// A PE behaviour: runs once, communicating through its ports.
///
/// Ports arrive in the order the PE's channels were added to the
/// [`AppSpec`]. The same behaviour object is used at every abstraction
/// level — only the port backing changes (paper §4's "no source change").
pub type PeBehavior = Box<dyn FnOnce(&mut ThreadCtx, Vec<ShipPort>) + Send>;

/// Factory producing a fresh behaviour per elaboration.
pub type PeFactory = Arc<dyn Fn() -> PeBehavior + Send + Sync>;

/// One processing element.
#[derive(Clone)]
pub struct PeSpec {
    /// PE name (unique within the app).
    pub name: String,
    pub(crate) factory: PeFactory,
}

impl fmt::Debug for PeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PeSpec").field("name", &self.name).finish()
    }
}

/// One directed point-to-point channel between two PEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Channel name (unique within the app).
    pub name: String,
    /// PE at end A.
    pub a: String,
    /// PE at end B.
    pub b: String,
}

/// A platform-independent application: the component-assembly netlist.
///
/// ```
/// use shiptlm_explore::app::AppSpec;
///
/// let mut app = AppSpec::new("demo");
/// app.add_pe("producer", || Box::new(|ctx, ports| {
///     ports[0].send(ctx, &42u32).unwrap();
/// }));
/// app.add_pe("consumer", || Box::new(|ctx, ports| {
///     let _: u32 = ports[0].recv(ctx).unwrap();
/// }));
/// app.connect("link", "producer", "consumer");
/// assert_eq!(app.channels().len(), 1);
/// ```
#[derive(Clone)]
pub struct AppSpec {
    name: String,
    pes: Vec<PeSpec>,
    channels: Vec<ChannelSpec>,
}

impl AppSpec {
    /// Creates an empty application.
    pub fn new(name: &str) -> Self {
        AppSpec {
            name: name.to_string(),
            pes: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a PE with a behaviour factory (a fresh behaviour is created per
    /// elaboration).
    ///
    /// # Panics
    ///
    /// Panics on duplicate PE names.
    pub fn add_pe<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> PeBehavior + Send + Sync + 'static,
    {
        assert!(
            self.pes.iter().all(|p| p.name != name),
            "duplicate PE name '{name}'"
        );
        self.pes.push(PeSpec {
            name: name.to_string(),
            factory: Arc::new(factory),
        });
    }

    /// Connects two PEs with a named channel.
    ///
    /// # Panics
    ///
    /// Panics when either PE is unknown or the channel name repeats.
    pub fn connect(&mut self, channel: &str, a: &str, b: &str) {
        assert!(self.pe(a).is_some(), "unknown PE '{a}'");
        assert!(self.pe(b).is_some(), "unknown PE '{b}'");
        assert!(
            self.channels.iter().all(|c| c.name != channel),
            "duplicate channel name '{channel}'"
        );
        self.channels.push(ChannelSpec {
            name: channel.to_string(),
            a: a.to_string(),
            b: b.to_string(),
        });
    }

    /// The PEs in declaration order.
    pub fn pes(&self) -> &[PeSpec] {
        &self.pes
    }

    /// The channels in declaration order.
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// Finds a PE by name.
    pub fn pe(&self, name: &str) -> Option<&PeSpec> {
        self.pes.iter().find(|p| p.name == name)
    }

    /// The channels a PE is attached to, in port order.
    pub fn channels_of(&self, pe: &str) -> Vec<&ChannelSpec> {
        self.channels
            .iter()
            .filter(|c| c.a == pe || c.b == pe)
            .collect()
    }

    /// Instantiates a fresh behaviour for `pe`.
    ///
    /// # Panics
    ///
    /// Panics when the PE is unknown.
    pub fn behavior(&self, pe: &str) -> PeBehavior {
        (self.pe(pe).expect("unknown PE").factory)()
    }
}

impl fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("pes", &self.pes.len())
            .field("channels", &self.channels.len())
            .finish()
    }
}
