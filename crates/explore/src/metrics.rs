//! Run metrics derived from transaction logs and interconnect statistics.

use std::collections::BTreeMap;
use std::fmt;

use shiptlm_cam::bus::BusStats;
use shiptlm_kernel::metrics::{csv_escape, MetricsSnapshot};
use shiptlm_kernel::stats::RunningStats;
use shiptlm_kernel::time::SimDur;
use shiptlm_kernel::txn::TxnTrace;
use shiptlm_ship::record::{ShipOp, TransactionLog};

/// Summary of one exploration run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Configuration label (from [`ArchSpec::label`](crate::arch::ArchSpec::label)).
    pub label: String,
    /// Total simulated time.
    pub sim_time: SimDur,
    /// Messages delivered (completed `recv` operations).
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// RPC round-trip latency observed at masters (from `request` records).
    pub rpc_latency: RunningStats,
    /// Blocking time of `send` calls at masters.
    pub send_blocking: RunningStats,
    /// Interconnect statistics (absent for untimed runs).
    pub bus: Option<BusStats>,
    /// Kernel delta cycles (simulation effort proxy).
    pub delta_cycles: u64,
    /// Host wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-channel blocking-call latency in nanoseconds (all SHIP ops),
    /// keyed by channel name.
    pub channel_latency: BTreeMap<String, RunningStats>,
    /// Transaction-level trace captured during the run, when the recorder
    /// was enabled (see [`RunOptions`](crate::mapper::RunOptions)).
    pub txn: Option<TxnTrace>,
    /// Time-resolved metric series captured during the run, when the
    /// registry was enabled (see [`RunOptions`](crate::mapper::RunOptions)).
    pub metrics: Option<MetricsSnapshot>,
}

impl RunMetrics {
    /// Builds metrics from a run's artifacts.
    pub fn from_log(
        label: &str,
        log: &TransactionLog,
        sim_time: SimDur,
        bus: Option<BusStats>,
        delta_cycles: u64,
        wall_seconds: f64,
    ) -> Self {
        let mut messages = 0;
        let mut bytes = 0;
        let mut rpc_latency = RunningStats::new();
        let mut send_blocking = RunningStats::new();
        let mut channel_latency: BTreeMap<String, RunningStats> = BTreeMap::new();
        // Visit the records in place: a 1k-candidate sweep builds 1k+ rows,
        // and cloning every log (plus one String per record for the channel
        // key) showed up as the dominant per-candidate allocation churn.
        log.with_records(|records| {
            for r in records {
                let latency_ns = r.end.saturating_since(r.start).as_ps() as f64 / 1_000.0;
                match channel_latency.get_mut(&*r.channel) {
                    Some(stats) => stats.record(latency_ns),
                    None => channel_latency
                        .entry(r.channel.to_string())
                        .or_default()
                        .record(latency_ns),
                }
                match r.op {
                    ShipOp::Recv => {
                        messages += 1;
                        bytes += r.len as u64;
                    }
                    ShipOp::Request => rpc_latency.record(latency_ns),
                    ShipOp::Send => send_blocking.record(latency_ns),
                    ShipOp::Reply => {}
                }
            }
        });
        RunMetrics {
            label: label.to_string(),
            sim_time,
            messages,
            bytes,
            rpc_latency,
            send_blocking,
            bus,
            delta_cycles,
            wall_seconds,
            channel_latency,
            txn: None,
            metrics: None,
        }
    }

    /// Delivered payload throughput in MB per simulated second.
    pub fn throughput_mbps(&self) -> f64 {
        if self.sim_time.is_zero() {
            return 0.0;
        }
        (self.bytes as f64 / 1e6) / (self.sim_time.as_ps() as f64 * 1e-12)
    }

    /// Interconnect utilization over the run, when available.
    pub fn utilization(&self) -> Option<f64> {
        self.bus.as_ref().map(|b| b.utilization(self.sim_time))
    }

    /// Simulated transactions per host second (simulation speed).
    pub fn sim_speed_msgs_per_sec(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            0.0
        } else {
            self.messages as f64 / self.wall_seconds
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} msgs, {} B, sim {}, {:.1} MB/s, util {}",
            self.label,
            self.messages,
            self.bytes,
            self.sim_time,
            self.throughput_mbps(),
            self.utilization()
                .map(|u| format!("{:.1}%", u * 100.0))
                .unwrap_or_else(|| "-".into()),
        )
    }
}

/// A formatted comparison table over several runs.
#[derive(Debug, Clone, Default)]
pub struct Report {
    rows: Vec<RunMetrics>,
    pruned: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a run.
    pub fn push(&mut self, m: RunMetrics) {
        self.rows.push(m);
    }

    /// The collected rows.
    pub fn rows(&self) -> &[RunMetrics] {
        &self.rows
    }

    /// Records a candidate skipped by Pareto-guided pruning (see
    /// [`Sweep::with_pruning`](crate::sweep::Sweep::with_pruning)).
    pub fn note_pruned(&mut self, label: impl Into<String>) {
        self.pruned.push(label.into());
    }

    /// Labels of candidates skipped by Pareto-guided pruning, in candidate
    /// order. Empty unless the sweep ran with pruning enabled.
    pub fn pruned(&self) -> &[String] {
        &self.pruned
    }

    /// Renders a CSV representation.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "config,sim_time_ns,messages,bytes,throughput_mbps,utilization,mean_rpc_ns,mean_wait_cycles,delta_cycles,wall_s\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{:.3},{},{:.1},{},{},{:.4}\n",
                csv_escape(&r.label),
                r.sim_time.as_ns(),
                r.messages,
                r.bytes,
                r.throughput_mbps(),
                r.utilization()
                    .map(|u| format!("{:.4}", u))
                    .unwrap_or_default(),
                r.rpc_latency.mean(),
                r.bus
                    .as_ref()
                    .map(|b| format!("{:.2}", b.wait_cycles.mean()))
                    .unwrap_or_default(),
                r.delta_cycles,
                r.wall_seconds,
            ));
        }
        out
    }

    /// Renders per-channel blocking latency (min/mean/max ns) as CSV, one
    /// row per `(config, channel)` pair.
    pub fn channel_latency_csv(&self) -> String {
        let mut out = String::from("config,channel,calls,min_ns,mean_ns,max_ns\n");
        for r in &self.rows {
            for (ch, s) in &r.channel_latency {
                out.push_str(&format!(
                    "{},{},{},{:.1},{:.1},{:.1}\n",
                    csv_escape(&r.label),
                    csv_escape(ch),
                    s.count(),
                    s.min().unwrap_or(0.0),
                    s.mean(),
                    s.max().unwrap_or(0.0),
                ));
            }
        }
        out
    }

    /// Renders every candidate's time-resolved metric series as one CSV,
    /// prefixing each row of
    /// [`MetricsSnapshot::to_timeseries_csv`] with the configuration
    /// label. Rows without a snapshot (metrics disabled) are skipped.
    pub fn timeseries_csv(&self) -> String {
        let mut out =
            String::from("config,family,resource,kind,window_start_ns,value,min,max,last\n");
        for r in &self.rows {
            let Some(snap) = &r.metrics else { continue };
            let label = csv_escape(&r.label);
            for line in snap.to_timeseries_csv().lines().skip(1) {
                out.push_str(&label);
                out.push(',');
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>12} {:>8} {:>10} {:>10} {:>7} {:>12} {:>10}",
            "config", "sim time", "msgs", "bytes", "MB/s", "util", "rpc ns", "wait cyc"
        )?;
        writeln!(f, "{}", "-".repeat(100))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<24} {:>12} {:>8} {:>10} {:>10.1} {:>7} {:>12.0} {:>10}",
                r.label,
                r.sim_time.to_string(),
                r.messages,
                r.bytes,
                r.throughput_mbps(),
                r.utilization()
                    .map(|u| format!("{:.0}%", u * 100.0))
                    .unwrap_or_else(|| "-".into()),
                r.rpc_latency.mean(),
                r.bus
                    .as_ref()
                    .map(|b| format!("{:.1}", b.wait_cycles.mean()))
                    .unwrap_or_else(|| "-".into()),
            )?;
        }
        if !self.pruned.is_empty() {
            writeln!(
                f,
                "({} dominated candidates pruned before simulation)",
                self.pruned.len()
            )?;
        }
        Ok(())
    }
}
