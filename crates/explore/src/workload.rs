//! Synthetic workload generators producing [`AppSpec`]s.
//!
//! These stand in for the embedded applications the paper's flow targets
//! (multimedia pipelines, control + accelerator splits); each generator is
//! deterministic given its seed.

use shiptlm_kernel::rng::Rng;
use shiptlm_kernel::time::SimDur;

use crate::app::AppSpec;

/// Deterministic pseudo-random block of `len` bytes.
pub fn block(seed: u64, len: usize) -> Vec<u8> {
    Rng::seed_from_u64(seed).bytes(len)
}

/// A linear processing pipeline: `source → stage1 → … → sink`.
///
/// The source emits `blocks` blocks of `block_bytes`; every middle stage
/// transforms (adds 1 to each byte) after `compute` of processing time; the
/// sink checks the expected content. Middle stages are slaves on their input
/// channel and masters on their output channel.
pub fn pipeline(stages: usize, blocks: u32, block_bytes: usize, compute: SimDur) -> AppSpec {
    assert!(stages >= 2, "a pipeline needs at least source and sink");
    let mut app = AppSpec::new("pipeline");
    let middle = stages - 2;

    app.add_pe("source", move || {
        Box::new(move |ctx, ports| {
            for i in 0..blocks {
                let data = block(i as u64, block_bytes);
                ports[0].send(ctx, &data).unwrap();
            }
        })
    });
    for s in 0..middle {
        let name = format!("stage{s}");
        app.add_pe(&name, move || {
            Box::new(move |ctx, ports| {
                // Port order = channel declaration order: input first.
                for _ in 0..blocks {
                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                    if !compute.is_zero() {
                        ctx.wait_for(compute);
                    }
                    let out: Vec<u8> = data.iter().map(|b| b.wrapping_add(1)).collect();
                    ports[1].send(ctx, &out).unwrap();
                }
            })
        });
    }
    let hops = middle as u8;
    app.add_pe("sink", move || {
        Box::new(move |ctx, ports| {
            for i in 0..blocks {
                let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                let expected: Vec<u8> = block(i as u64, block_bytes)
                    .iter()
                    .map(|b| b.wrapping_add(hops))
                    .collect();
                assert_eq!(data, expected, "pipeline corrupted block {i}");
            }
        })
    });

    // Wire them: source → stage0 → … → sink.
    let mut names = vec!["source".to_string()];
    names.extend((0..middle).map(|s| format!("stage{s}")));
    names.push("sink".to_string());
    for w in 0..names.len() - 1 {
        app.connect(&format!("ch{w}"), &names[w], &names[w + 1]);
    }
    app
}

/// `pairs` independent producer→consumer streams (bus-level contention with
/// no application-level coupling).
pub fn parallel_streams(pairs: usize, blocks: u32, block_bytes: usize) -> AppSpec {
    let mut app = AppSpec::new("parallel_streams");
    for p in 0..pairs {
        let prod = format!("prod{p}");
        let cons = format!("cons{p}");
        app.add_pe(&prod, move || {
            Box::new(move |ctx, ports| {
                for i in 0..blocks {
                    let data = block((p as u64) << 32 | i as u64, block_bytes);
                    ports[0].send(ctx, &data).unwrap();
                }
            })
        });
        app.add_pe(&cons, move || {
            Box::new(move |ctx, ports| {
                for i in 0..blocks {
                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                    let expected = block((p as u64) << 32 | i as u64, block_bytes);
                    assert_eq!(data, expected, "stream {p} corrupted block {i}");
                }
            })
        });
        app.connect(&format!("s{p}"), &prod, &cons);
    }
    app
}

/// `clients` request/reply clients, each with its own compute server
/// (crypto-offload style): client sends a block, the server transforms it
/// after `server_compute`, the client checks the reply.
pub fn rpc(clients: usize, requests: u32, req_bytes: usize, server_compute: SimDur) -> AppSpec {
    let mut app = AppSpec::new("rpc");
    for c in 0..clients {
        let client = format!("client{c}");
        let server = format!("server{c}");
        app.add_pe(&client, move || {
            Box::new(move |ctx, ports| {
                for i in 0..requests {
                    let data = block((c as u64) << 32 | i as u64, req_bytes);
                    let expected: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
                    let reply: Vec<u8> = ports[0].request(ctx, &data).unwrap();
                    assert_eq!(reply, expected, "client {c} got a bad reply for {i}");
                }
            })
        });
        app.add_pe(&server, move || {
            Box::new(move |ctx, ports| {
                for _ in 0..requests {
                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                    if !server_compute.is_zero() {
                        ctx.wait_for(server_compute);
                    }
                    let out: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
                    ports[0].reply(ctx, &out).unwrap();
                }
            })
        });
        app.connect(&format!("rpc{c}"), &client, &server);
    }
    app
}

/// SplitMix64-style mixer: the single source of randomness for the
/// multi-master traffic generators. Destinations and payloads are pure
/// functions of `(seed, master, round)` through this, so producers and
/// consumers agree on the schedule without any shared state and the same
/// seed reproduces the exact per-PE request streams on every backend.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared skeleton of the multi-master generators: `masters` transmitters
/// (`tx{m}`) each send exactly one `bytes`-byte message per round to the
/// receiver (`rx{j}`) chosen by `dest(m, round)`; receivers drain each
/// round in producer order and check payload content.
///
/// The round structure makes the traffic deadlock-free on any interconnect
/// that delivers messages: whoever a receiver waits on in round `r` is
/// either already past that send or still working through a round `< r`
/// whose messages other receivers are (by induction) draining. Channels
/// exist only for `(m, j)` pairs that actually carry traffic, and the PE
/// bodies never wait on simulated time, so these apps qualify for the
/// direct-execution backend.
fn traffic_app(
    name: &str,
    masters: usize,
    rounds: u32,
    bytes: usize,
    seed: u64,
    dest: impl Fn(usize, u32) -> usize + Copy + Send + Sync + 'static,
) -> AppSpec {
    assert!(masters >= 1, "traffic needs at least one master");
    let mut app = AppSpec::new(name);

    // The full (master → receivers) schedule, so channels are declared only
    // where traffic flows. Sorted target lists double as port maps: ports
    // arrive in channel-declaration order, which the m-then-j loop below
    // makes j-ascending on transmitters and m-ascending on receivers.
    let mut targets: Vec<Vec<usize>> = vec![Vec::new(); masters];
    for (m, t) in targets.iter_mut().enumerate() {
        for r in 0..rounds {
            let j = dest(m, r);
            assert!(j < masters, "dest out of range");
            if !t.contains(&j) {
                t.push(j);
            }
        }
        t.sort_unstable();
    }
    let sources: Vec<Vec<usize>> = (0..masters)
        .map(|j| (0..masters).filter(|m| targets[*m].contains(&j)).collect())
        .collect();

    for (m, t) in targets.iter().enumerate() {
        let my_targets = t.clone();
        app.add_pe(&format!("tx{m}"), move || {
            let my_targets = my_targets.clone();
            Box::new(move |ctx, ports| {
                for r in 0..rounds {
                    let j = dest(m, r);
                    let port = my_targets.binary_search(&j).unwrap();
                    let data = block(mix(seed, m as u64, r as u64), bytes);
                    ports[port].send(ctx, &data).unwrap();
                }
            })
        });
    }
    for (j, s) in sources.iter().enumerate() {
        let my_sources = s.clone();
        app.add_pe(&format!("rx{j}"), move || {
            let my_sources = my_sources.clone();
            Box::new(move |ctx, ports| {
                for r in 0..rounds {
                    for (port, &m) in my_sources.iter().enumerate() {
                        if dest(m, r) != j {
                            continue;
                        }
                        let data: Vec<u8> = ports[port].recv(ctx).unwrap();
                        let expected = block(mix(seed, m as u64, r as u64), bytes);
                        assert_eq!(data, expected, "rx{j} got bad round {r} from tx{m}");
                    }
                }
            })
        });
    }
    for (m, t) in targets.iter().enumerate() {
        for &j in t {
            app.connect(&format!("t{m}_{j}"), &format!("tx{m}"), &format!("rx{j}"));
        }
    }
    app
}

/// Uniform multi-master traffic: every round, master `m` sends to a
/// pseudo-randomly drawn receiver, uniformly over all `masters` nodes.
/// Same seed ⇒ identical per-PE request streams on every backend.
pub fn uniform_traffic(masters: usize, rounds: u32, bytes: usize, seed: u64) -> AppSpec {
    traffic_app("uniform_traffic", masters, rounds, bytes, seed, move |m, r| {
        (mix(seed, m as u64, r as u64 | 1 << 63) % masters as u64) as usize
    })
}

/// Hotspot multi-master traffic: `hot_percent` of each master's rounds
/// target receiver 0, the rest are uniform — the classic NoC contention
/// pattern concentrating load on one ejection port.
pub fn hotspot_traffic(
    masters: usize,
    rounds: u32,
    bytes: usize,
    hot_percent: u32,
    seed: u64,
) -> AppSpec {
    let hot = u64::from(hot_percent.min(100));
    traffic_app("hotspot_traffic", masters, rounds, bytes, seed, move |m, r| {
        let draw = mix(seed, m as u64, r as u64 | 1 << 63);
        if draw % 100 < hot {
            0
        } else {
            ((draw >> 8) % masters as u64) as usize
        }
    })
}

/// Bursty multi-master traffic: each master streams `burst_len`
/// consecutive rounds to one receiver before redrawing — long
/// point-to-point bursts that reward pipelined/burst transfers.
pub fn bursty_traffic(
    masters: usize,
    rounds: u32,
    bytes: usize,
    burst_len: u32,
    seed: u64,
) -> AppSpec {
    let burst = burst_len.max(1);
    traffic_app("bursty_traffic", masters, rounds, bytes, seed, move |m, r| {
        (mix(seed, m as u64, u64::from(r / burst) | 1 << 63) % masters as u64) as usize
    })
}

/// An asymmetric hotspot: producers of different intensities all feed
/// separate sinks; producer `i` sends `blocks * (i + 1)` blocks, exposing
/// arbitration fairness effects.
pub fn hotspot(producers: usize, blocks: u32, block_bytes: usize) -> AppSpec {
    let mut app = AppSpec::new("hotspot");
    for p in 0..producers {
        let prod = format!("prod{p}");
        let sink = format!("sink{p}");
        let n = blocks * (p as u32 + 1);
        app.add_pe(&prod, move || {
            Box::new(move |ctx, ports| {
                for i in 0..n {
                    let data = block(i as u64, block_bytes);
                    ports[0].send(ctx, &data).unwrap();
                }
            })
        });
        app.add_pe(&sink, move || {
            Box::new(move |ctx, ports| {
                for _ in 0..n {
                    let _: Vec<u8> = ports[0].recv(ctx).unwrap();
                }
            })
        });
        app.connect(&format!("h{p}"), &prod, &sink);
    }
    app
}
