//! Synthetic workload generators producing [`AppSpec`]s.
//!
//! These stand in for the embedded applications the paper's flow targets
//! (multimedia pipelines, control + accelerator splits); each generator is
//! deterministic given its seed.

use shiptlm_kernel::rng::Rng;
use shiptlm_kernel::time::SimDur;

use crate::app::AppSpec;

/// Deterministic pseudo-random block of `len` bytes.
pub fn block(seed: u64, len: usize) -> Vec<u8> {
    Rng::seed_from_u64(seed).bytes(len)
}

/// A linear processing pipeline: `source → stage1 → … → sink`.
///
/// The source emits `blocks` blocks of `block_bytes`; every middle stage
/// transforms (adds 1 to each byte) after `compute` of processing time; the
/// sink checks the expected content. Middle stages are slaves on their input
/// channel and masters on their output channel.
pub fn pipeline(stages: usize, blocks: u32, block_bytes: usize, compute: SimDur) -> AppSpec {
    assert!(stages >= 2, "a pipeline needs at least source and sink");
    let mut app = AppSpec::new("pipeline");
    let middle = stages - 2;

    app.add_pe("source", move || {
        Box::new(move |ctx, ports| {
            for i in 0..blocks {
                let data = block(i as u64, block_bytes);
                ports[0].send(ctx, &data).unwrap();
            }
        })
    });
    for s in 0..middle {
        let name = format!("stage{s}");
        app.add_pe(&name, move || {
            Box::new(move |ctx, ports| {
                // Port order = channel declaration order: input first.
                for _ in 0..blocks {
                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                    if !compute.is_zero() {
                        ctx.wait_for(compute);
                    }
                    let out: Vec<u8> = data.iter().map(|b| b.wrapping_add(1)).collect();
                    ports[1].send(ctx, &out).unwrap();
                }
            })
        });
    }
    let hops = middle as u8;
    app.add_pe("sink", move || {
        Box::new(move |ctx, ports| {
            for i in 0..blocks {
                let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                let expected: Vec<u8> = block(i as u64, block_bytes)
                    .iter()
                    .map(|b| b.wrapping_add(hops))
                    .collect();
                assert_eq!(data, expected, "pipeline corrupted block {i}");
            }
        })
    });

    // Wire them: source → stage0 → … → sink.
    let mut names = vec!["source".to_string()];
    names.extend((0..middle).map(|s| format!("stage{s}")));
    names.push("sink".to_string());
    for w in 0..names.len() - 1 {
        app.connect(&format!("ch{w}"), &names[w], &names[w + 1]);
    }
    app
}

/// `pairs` independent producer→consumer streams (bus-level contention with
/// no application-level coupling).
pub fn parallel_streams(pairs: usize, blocks: u32, block_bytes: usize) -> AppSpec {
    let mut app = AppSpec::new("parallel_streams");
    for p in 0..pairs {
        let prod = format!("prod{p}");
        let cons = format!("cons{p}");
        app.add_pe(&prod, move || {
            Box::new(move |ctx, ports| {
                for i in 0..blocks {
                    let data = block((p as u64) << 32 | i as u64, block_bytes);
                    ports[0].send(ctx, &data).unwrap();
                }
            })
        });
        app.add_pe(&cons, move || {
            Box::new(move |ctx, ports| {
                for i in 0..blocks {
                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                    let expected = block((p as u64) << 32 | i as u64, block_bytes);
                    assert_eq!(data, expected, "stream {p} corrupted block {i}");
                }
            })
        });
        app.connect(&format!("s{p}"), &prod, &cons);
    }
    app
}

/// `clients` request/reply clients, each with its own compute server
/// (crypto-offload style): client sends a block, the server transforms it
/// after `server_compute`, the client checks the reply.
pub fn rpc(clients: usize, requests: u32, req_bytes: usize, server_compute: SimDur) -> AppSpec {
    let mut app = AppSpec::new("rpc");
    for c in 0..clients {
        let client = format!("client{c}");
        let server = format!("server{c}");
        app.add_pe(&client, move || {
            Box::new(move |ctx, ports| {
                for i in 0..requests {
                    let data = block((c as u64) << 32 | i as u64, req_bytes);
                    let expected: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
                    let reply: Vec<u8> = ports[0].request(ctx, &data).unwrap();
                    assert_eq!(reply, expected, "client {c} got a bad reply for {i}");
                }
            })
        });
        app.add_pe(&server, move || {
            Box::new(move |ctx, ports| {
                for _ in 0..requests {
                    let data: Vec<u8> = ports[0].recv(ctx).unwrap();
                    if !server_compute.is_zero() {
                        ctx.wait_for(server_compute);
                    }
                    let out: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
                    ports[0].reply(ctx, &out).unwrap();
                }
            })
        });
        app.connect(&format!("rpc{c}"), &client, &server);
    }
    app
}

/// An asymmetric hotspot: producers of different intensities all feed
/// separate sinks; producer `i` sends `blocks * (i + 1)` blocks, exposing
/// arbitration fairness effects.
pub fn hotspot(producers: usize, blocks: u32, block_bytes: usize) -> AppSpec {
    let mut app = AppSpec::new("hotspot");
    for p in 0..producers {
        let prod = format!("prod{p}");
        let sink = format!("sink{p}");
        let n = blocks * (p as u32 + 1);
        app.add_pe(&prod, move || {
            Box::new(move |ctx, ports| {
                for i in 0..n {
                    let data = block(i as u64, block_bytes);
                    ports[0].send(ctx, &data).unwrap();
                }
            })
        });
        app.add_pe(&sink, move || {
            Box::new(move |ctx, ports| {
                for _ in 0..n {
                    let _: Vec<u8> = ports[0].recv(ctx).unwrap();
                }
            })
        });
        app.connect(&format!("h{p}"), &prod, &sink);
    }
    app
}
