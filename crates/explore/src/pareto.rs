//! Pareto-front selection over exploration results.
//!
//! Architecture exploration rarely has a single winner: a crossbar may be
//! fastest but cost the most wires; TDMA bounds worst-case latency but
//! wastes bandwidth. [`pareto_front`] extracts the non-dominated subset of a
//! [`Report`](crate::metrics::Report) under caller-chosen objectives.

use crate::metrics::{Report, RunMetrics};

/// A cost vector: every component is minimized.
pub type Costs = Vec<f64>;

/// `true` when `a` dominates `b`: no worse in every objective and strictly
/// better in at least one.
pub fn dominates(a: &Costs, b: &Costs) -> bool {
    assert_eq!(a.len(), b.len(), "cost vectors must have equal arity");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Returns the indices of the non-dominated rows under `objectives`
/// (each objective value is minimized). Indices preserve input order.
pub fn pareto_front<T, F>(rows: &[T], mut objectives: F) -> Vec<usize>
where
    F: FnMut(&T) -> Costs,
{
    let costs: Vec<Costs> = rows.iter().map(&mut objectives).collect();
    (0..rows.len())
        .filter(|&i| !costs.iter().enumerate().any(|(j, c)| j != i && dominates(c, &costs[i])))
        .collect()
}

/// Convenience: the Pareto front of an exploration report under
/// (total simulated time, mean arbitration wait), the two costs a
/// communication architect usually trades. Rows without bus statistics
/// (untimed baselines) are excluded.
pub fn report_front(report: &Report) -> Vec<&RunMetrics> {
    let timed: Vec<&RunMetrics> = report.rows().iter().filter(|r| r.bus.is_some()).collect();
    let idx = pareto_front(&timed, |r| {
        vec![
            r.sim_time.as_ps() as f64,
            r.bus.as_ref().map(|b| b.wait_cycles.mean()).unwrap_or(0.0),
        ]
    });
    idx.into_iter().map(|i| timed[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_is_strict() {
        assert!(dominates(&vec![1.0, 1.0], &vec![2.0, 1.0]));
        assert!(dominates(&vec![1.0, 0.5], &vec![2.0, 1.0]));
        assert!(!dominates(&vec![1.0, 1.0], &vec![1.0, 1.0])); // equal: no
        assert!(!dominates(&vec![1.0, 2.0], &vec![2.0, 1.0])); // trade-off
    }

    #[test]
    #[should_panic(expected = "equal arity")]
    fn mismatched_arity_panics() {
        let _ = dominates(&vec![1.0], &vec![1.0, 2.0]);
    }

    #[test]
    fn front_of_tradeoff_keeps_both() {
        let rows = [(1.0, 9.0), (9.0, 1.0), (5.0, 5.0), (9.0, 9.0)];
        let front = pareto_front(&rows, |&(a, b)| vec![a, b]);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn front_of_dominated_chain_is_singleton() {
        let rows = [(3.0, 3.0), (2.0, 2.0), (1.0, 1.0)];
        let front = pareto_front(&rows, |&(a, b)| vec![a, b]);
        assert_eq!(front, vec![2]);
    }

    #[test]
    fn duplicates_all_survive() {
        // Equal points do not dominate each other; both stay.
        let rows = [(1.0, 1.0), (1.0, 1.0)];
        let front = pareto_front(&rows, |&(a, b)| vec![a, b]);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn empty_input_is_empty_front() {
        let rows: [(f64, f64); 0] = [];
        assert!(pareto_front(&rows, |&(a, b)| vec![a, b]).is_empty());
    }
}
