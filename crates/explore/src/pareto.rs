//! Pareto-front selection over exploration results.
//!
//! Architecture exploration rarely has a single winner: a crossbar may be
//! fastest but cost the most wires; TDMA bounds worst-case latency but
//! wastes bandwidth. [`pareto_front`] extracts the non-dominated subset of a
//! [`Report`](crate::metrics::Report) under caller-chosen objectives, and
//! [`ParetoSet`] maintains the same non-dominated subset *incrementally* —
//! the archive a pruning sweep streams candidate cost vectors into.
//!
//! # NaN policy
//!
//! A cost involving NaN (e.g. a mean over zero samples) must not silently
//! pollute a front: IEEE comparisons with NaN are false both ways, so under
//! naive dominance a NaN vector is never dominated and always "survives".
//! The policy here is **NaN loses**:
//!
//! * in [`dominates`], a NaN component is treated as *worse than every
//!   finite value* (and tied with another NaN), so a vector containing NaN
//!   never dominates anything through that component;
//! * [`pareto_front`] and [`ParetoSet`] additionally **filter** cost vectors
//!   containing NaN — they are never part of a front, even when nothing
//!   finite is around to dominate them.

use crate::metrics::{Report, RunMetrics};

/// A cost vector: every component is minimized.
pub type Costs = Vec<f64>;

fn has_nan(c: &[f64]) -> bool {
    c.iter().any(|v| v.is_nan())
}

/// `true` when `a` dominates `b`: no worse in every objective and strictly
/// better in at least one. NaN components lose: they are worse than every
/// finite value and tie with other NaNs (see the module-level NaN policy),
/// so a vector containing NaN can never dominate.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "cost vectors must have equal arity");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        match (x.is_nan(), y.is_nan()) {
            (true, true) => {}                       // equally bad
            (true, false) => return false,           // a is worse here
            (false, true) => strictly_better = true, // NaN loses
            (false, false) => {
                if x > y {
                    return false;
                }
                if x < y {
                    strictly_better = true;
                }
            }
        }
    }
    strictly_better
}

/// Returns the indices of the non-dominated rows under `objectives`
/// (each objective value is minimized). Indices preserve input order; rows
/// whose cost vector contains NaN are excluded (NaN loses).
///
/// Two-objective inputs take an `O(n log n)` sort-and-scan path; other
/// arities use an incremental archive that is `O(n · front_size)` — far
/// below the old all-pairs `O(n²)` scan whenever most rows are dominated,
/// which keeps [`report_front`] sub-second on 10k-row reports.
///
/// `objectives` may return any `AsRef<[f64]>` — a `[f64; 2]` avoids the
/// per-row `Vec` allocation that the `Costs` alias implies.
pub fn pareto_front<T, C, F>(rows: &[T], mut objectives: F) -> Vec<usize>
where
    C: AsRef<[f64]>,
    F: FnMut(&T) -> C,
{
    let costs: Vec<C> = rows.iter().map(&mut objectives).collect();
    if costs.iter().all(|c| c.as_ref().len() == 2) {
        return front_2d(&costs);
    }
    let mut front: Vec<usize> = Vec::new();
    for (i, c) in costs.iter().enumerate() {
        let c = c.as_ref();
        if has_nan(c) {
            continue;
        }
        if front.iter().any(|&j| dominates(costs[j].as_ref(), c)) {
            continue;
        }
        front.retain(|&j| !dominates(c, costs[j].as_ref()));
        front.push(i);
    }
    front
}

/// Exact two-objective front in `O(n log n)`: sort by `(x, y)` ascending,
/// then a point survives iff it has the minimal `y` of its `x` group and
/// that `y` undercuts every strictly-smaller `x`.
fn front_2d<C: AsRef<[f64]>>(costs: &[C]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..costs.len())
        .filter(|&i| !has_nan(costs[i].as_ref()))
        .collect();
    idx.sort_by(|&a, &b| {
        let (ca, cb) = (costs[a].as_ref(), costs[b].as_ref());
        ca[0]
            .total_cmp(&cb[0])
            .then(ca[1].total_cmp(&cb[1]))
            .then(a.cmp(&b))
    });
    let mut out = Vec::new();
    let mut best_y_before = f64::INFINITY; // min y over strictly smaller x
    let mut g = 0;
    while g < idx.len() {
        let x = costs[idx[g]].as_ref()[0];
        let mut h = g;
        while h < idx.len() && costs[idx[h]].as_ref()[0] == x {
            h += 1;
        }
        let y_min = costs[idx[g]].as_ref()[1]; // group is sorted by y
        if y_min < best_y_before {
            out.extend(idx[g..h].iter().filter(|&&i| costs[i].as_ref()[1] == y_min));
        }
        best_y_before = best_y_before.min(y_min);
        g = h;
    }
    out.sort_unstable(); // restore input order
    out
}

/// An incremental non-dominated archive: the streaming counterpart of
/// [`pareto_front`], used by pruning sweeps to decide whether a queued
/// candidate can still matter before paying for its simulation.
///
/// Inserting `n` vectors costs `O(n · front_size)` total; membership stays
/// exactly the non-dominated subset of everything inserted so far. Vectors
/// containing NaN are rejected (NaN loses; see the module NaN policy).
#[derive(Debug, Clone, Default)]
pub struct ParetoSet {
    points: Vec<Costs>,
}

impl ParetoSet {
    /// Creates an empty archive.
    pub fn new() -> Self {
        ParetoSet::default()
    }

    /// `true` when some archived vector dominates `c`.
    pub fn is_dominated(&self, c: &[f64]) -> bool {
        self.points.iter().any(|p| dominates(p, c))
    }

    /// Offers `c` to the archive. Returns `true` when `c` was admitted
    /// (it is currently non-dominated); admitted vectors evict any archived
    /// vectors they dominate. Vectors containing NaN are rejected outright.
    pub fn insert(&mut self, c: Costs) -> bool {
        if has_nan(&c) || self.is_dominated(&c) {
            return false;
        }
        self.points.retain(|p| !dominates(&c, p));
        self.points.push(c);
        true
    }

    /// The current non-dominated vectors, in admission order.
    pub fn points(&self) -> &[Costs] {
        &self.points
    }

    /// Number of archived vectors.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Convenience: the Pareto front of an exploration report under
/// (total simulated time, mean arbitration wait), the two costs a
/// communication architect usually trades. Rows without bus statistics
/// (untimed baselines) are excluded, as are rows with NaN costs.
///
/// Allocation-free per row (fixed-arity cost vectors) and `O(n log n)` in
/// the row count, so 10k-row reports stay well under a second.
pub fn report_front(report: &Report) -> Vec<&RunMetrics> {
    let timed: Vec<&RunMetrics> = report.rows().iter().filter(|r| r.bus.is_some()).collect();
    let idx = pareto_front(&timed, |r| {
        [
            r.sim_time.as_ps() as f64,
            r.bus.as_ref().map(|b| b.wait_cycles.mean()).unwrap_or(0.0),
        ]
    });
    idx.into_iter().map(|i| timed[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_is_strict() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 1.0]));
        assert!(dominates(&[1.0, 0.5], &[2.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: no
        assert!(!dominates(&[1.0, 2.0], &[2.0, 1.0])); // trade-off
    }

    #[test]
    #[should_panic(expected = "equal arity")]
    fn mismatched_arity_panics() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn front_of_tradeoff_keeps_both() {
        let rows = [(1.0, 9.0), (9.0, 1.0), (5.0, 5.0), (9.0, 9.0)];
        let front = pareto_front(&rows, |&(a, b)| vec![a, b]);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn front_of_dominated_chain_is_singleton() {
        let rows = [(3.0, 3.0), (2.0, 2.0), (1.0, 1.0)];
        let front = pareto_front(&rows, |&(a, b)| vec![a, b]);
        assert_eq!(front, vec![2]);
    }

    #[test]
    fn duplicates_all_survive() {
        // Equal points do not dominate each other; both stay.
        let rows = [(1.0, 1.0), (1.0, 1.0)];
        let front = pareto_front(&rows, |&(a, b)| vec![a, b]);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn empty_input_is_empty_front() {
        let rows: [(f64, f64); 0] = [];
        assert!(pareto_front(&rows, |&(a, b)| vec![a, b]).is_empty());
    }

    // --- NaN policy -------------------------------------------------------

    #[test]
    fn nan_never_dominates() {
        assert!(!dominates(&[f64::NAN, 0.0], &[1.0, 1.0]));
        assert!(!dominates(&[f64::NAN], &[f64::NAN]));
    }

    #[test]
    fn finite_dominates_nan() {
        // NaN is worse than any finite value in that component.
        assert!(dominates(&[1.0, 1.0], &[1.0, f64::NAN]));
        assert!(dominates(&[5.0], &[f64::NAN]));
        // ...but not when `a` is worse elsewhere.
        assert!(!dominates(&[2.0, 1.0], &[1.0, f64::NAN]));
    }

    #[test]
    fn nan_rows_are_filtered_from_fronts() {
        // Regression: NaN compares false both ways, so a NaN row used to
        // survive every dominance check and pollute the front.
        let rows = [(1.0, 1.0), (f64::NAN, 0.0), (0.5, f64::NAN), (2.0, 2.0)];
        let front = pareto_front(&rows, |&(a, b)| vec![a, b]);
        assert_eq!(front, vec![0], "only the finite non-dominated row stays");
        // Even with no finite row at all, NaN rows never form a front.
        let rows = [(f64::NAN, 1.0), (f64::NAN, f64::NAN)];
        assert!(pareto_front(&rows, |&(a, b)| vec![a, b]).is_empty());
    }

    #[test]
    fn pareto_set_rejects_nan() {
        let mut set = ParetoSet::new();
        assert!(!set.insert(vec![f64::NAN, 1.0]));
        assert!(set.is_empty());
        assert!(set.insert(vec![1.0, 1.0]));
        assert!(!set.insert(vec![2.0, f64::NAN]));
        assert_eq!(set.len(), 1);
    }

    // --- incremental archive ---------------------------------------------

    #[test]
    fn pareto_set_tracks_the_front_incrementally() {
        let mut set = ParetoSet::new();
        assert!(set.insert(vec![5.0, 5.0]));
        assert!(set.insert(vec![1.0, 9.0]));
        assert!(!set.insert(vec![6.0, 6.0]), "dominated on arrival");
        assert!(set.is_dominated(&[5.5, 5.0]));
        assert!(!set.is_dominated(&[4.9, 5.0]));
        // A new point evicts what it dominates.
        assert!(set.insert(vec![4.0, 4.0]));
        assert_eq!(set.len(), 2, "(5,5) evicted, (1,9) stays");
        assert!(set.points().iter().all(|p| p != &vec![5.0, 5.0]));
    }

    #[test]
    fn pareto_set_matches_batch_front() {
        // The archive after streaming equals the batch front of the stream.
        let pts: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let x = ((i * 7919) % 101) as f64;
                let y = ((i * 104729) % 97) as f64;
                (x, y)
            })
            .collect();
        let mut set = ParetoSet::new();
        for &(x, y) in &pts {
            set.insert(vec![x, y]);
        }
        let batch: Vec<Costs> = pareto_front(&pts, |&(a, b)| vec![a, b])
            .into_iter()
            .map(|i| vec![pts[i].0, pts[i].1])
            .collect();
        let mut archived: Vec<Costs> = set.points().to_vec();
        let mut batch = batch;
        // Duplicate points: the batch front keeps all copies, the archive
        // keeps one; compare deduplicated sets.
        archived.sort_by(|a, b| a.partial_cmp(b).unwrap());
        archived.dedup();
        batch.sort_by(|a, b| a.partial_cmp(b).unwrap());
        batch.dedup();
        assert_eq!(archived, batch);
    }

    // --- scale ------------------------------------------------------------

    #[test]
    fn three_objective_front_uses_archive_path() {
        let rows = [
            (1.0, 9.0, 9.0),
            (9.0, 1.0, 9.0),
            (9.0, 9.0, 1.0),
            (9.0, 9.0, 9.0), // dominated by (1,9,9)
            (2.0, 2.0, 2.0),
        ];
        let front = pareto_front(&rows, |&(a, b, c)| vec![a, b, c]);
        assert_eq!(front, vec![0, 1, 2, 4]);
    }

    #[test]
    fn ten_thousand_row_front_is_fast_and_correct() {
        // Regression for the O(n²) all-pairs scan: 10k rows must complete
        // quickly (sub-second in release; the generous bound below only
        // catches a return to quadratic blowup in debug CI).
        let pts: Vec<(f64, f64)> = (0..10_000)
            .map(|i| {
                let x = ((i * 48271) % 65537) as f64;
                let y = ((i * 16807) % 65521) as f64;
                (x, y)
            })
            .collect();
        let t0 = std::time::Instant::now();
        let front = pareto_front(&pts, |&(a, b)| [a, b]);
        let elapsed = t0.elapsed();
        assert!(!front.is_empty());
        // Every front member must be non-dominated against the full input —
        // verifying the fast path against the definition.
        for &i in &front {
            let c = [pts[i].0, pts[i].1];
            assert!(
                !pts.iter().any(|&(a, b)| dominates(&[a, b], &c)),
                "front member {i} is dominated"
            );
        }
        // And spot-check completeness: no excluded row may be non-dominated.
        for (i, &(a, b)) in pts.iter().enumerate().step_by(97) {
            if front.binary_search(&i).is_ok() {
                continue;
            }
            assert!(
                pts.iter().any(|&(x, y)| dominates(&[x, y], &[a, b])),
                "row {i} was excluded but is non-dominated"
            );
        }
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "10k-point front took {elapsed:?} — quadratic scan is back"
        );
    }
}
