//! # shiptlm-explore
//!
//! Communication architecture exploration for the `shiptlm` design flow
//! (Klingauf, DATE 2005, §3): given an application as a netlist of PEs and
//! SHIP channels, automatically detect channel roles, map the communication
//! onto candidate architectures (PLB/OPB/crossbar × arbitration × burst
//! size), simulate, and compare.
//!
//! * [`app::AppSpec`] — the platform-independent application netlist;
//! * [`mapper`] — role detection + automatic channel-to-bus mapping;
//! * [`arch::ArchSpec`] — candidate architecture configurations;
//! * [`workload`] — deterministic synthetic applications;
//! * [`sweep::Sweep`] — one-call exploration producing a [`metrics::Report`].
//!
//! ## Example
//!
//! ```
//! use shiptlm_explore::prelude::*;
//! use shiptlm_kernel::time::SimDur;
//!
//! let app = workload::pipeline(3, 16, 256, SimDur::ZERO);
//! let report = Sweep::new(app)
//!     .arch(ArchSpec::plb())
//!     .arch(ArchSpec::crossbar())
//!     .run()
//!     .unwrap();
//! assert_eq!(report.rows().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod arch;
pub mod mapper;
pub mod metrics;
pub mod pareto;
pub mod pool;
pub mod sweep;
pub mod workload;

/// Commonly used exploration items.
pub mod prelude {
    pub use crate::app::{AppSpec, ChannelSpec, PeBehavior, PeSpec};
    pub use crate::arch::{build_interconnect, ArchGrid, ArchSpec, BusKind, Interconnect};
    pub use crate::mapper::{
        explore_one, run_component_assembly, run_component_assembly_with, run_mapped,
        run_mapped_with, run_pin_accurate, run_pin_accurate_with, Backend, BackendReport, CaRun,
        MapError, MappedRun, PortHook, PortSite, RoleMap, RunOptions, RunOutput, MAP_BASE,
    };
    pub use crate::metrics::{Report, RunMetrics};
    pub use crate::pareto::{dominates, pareto_front, report_front, ParetoSet};
    pub use crate::pool::{CancelToken, ChunkDone, WorkerPool};
    pub use crate::sweep::{
        sweep, verify_equivalence, PruneConfig, PruneContext, Sweep, SweepProgress,
    };
    pub use crate::workload;
}
