//! Automatic mapping of the communication part of a system onto a target
//! architecture (paper §1: "a methodology for automatic mapping of the
//! communication part of a system to a given architecture").
//!
//! The flow is two-phase, mirroring Figure 1:
//!
//! 1. [`run_component_assembly`] elaborates the app with abstract SHIP
//!    channels, runs it, and **detects master/slave roles** from observed
//!    call usage (paper §2).
//! 2. [`run_mapped`] re-elaborates the same app (same PE source) with every
//!    channel replaced by a mailbox adapter on the chosen interconnect plus
//!    SHIP↔OCP wrappers, oriented by the detected roles.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use shiptlm_cam::wrapper::{map_channel, WrapperConfig, ADAPTER_SIZE};
use shiptlm_kernel::direct::{DirectOutcome, DirectSim, Disqualified};
use shiptlm_kernel::liveness::DeadlockReport;
use shiptlm_kernel::metrics::MetricsSnapshot;
use shiptlm_kernel::sim::Simulation;
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_kernel::txn::TxnTrace;
use shiptlm_kernel::{RunResult, StopReason};
use shiptlm_ocp::tl::MasterId;
use shiptlm_ship::channel::{ShipChannel, ShipConfig, ShipPort};
use shiptlm_ship::direct::DirectChannel;
use shiptlm_ship::record::TransactionLog;
use shiptlm_ship::role::RoleObservation;

use crate::app::AppSpec;
use crate::arch::{build_interconnect, ArchSpec};

/// Base bus address of the first channel adapter.
pub const MAP_BASE: u64 = 0x1000_0000;

/// Which execution backend runs the untimed component-assembly level.
///
/// Mapped levels (CCATB, pin-accurate) always use the delta-cycle kernel —
/// they model time, which the direct backend deliberately does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The delta-cycle (discrete-event) kernel. The default.
    #[default]
    De,
    /// Direct execution (see [`shiptlm_kernel::direct`]): free-running
    /// threads with mutex/condvar rendezvous, no event queue. Models that
    /// use a disqualifying construct fail with [`MapError::Backend`].
    Direct,
    /// Try direct execution; when the model disqualifies, transparently
    /// re-elaborate and run on the DE kernel. The fallback reason lands in
    /// [`BackendReport::fallback`].
    ///
    /// Behaviours must be elaboration-idempotent (the standing contract of
    /// the multi-level design flow): a disqualified probe partially runs
    /// the model before the DE retry.
    Auto,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::De => "de",
            Backend::Direct => "direct",
            Backend::Auto => "auto",
        })
    }
}

/// How the component-assembly run was actually executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendReport {
    /// The backend requested via [`RunOptions::with_backend`].
    pub requested: Backend,
    /// The backend that produced the output ([`Backend::De`] or
    /// [`Backend::Direct`], never [`Backend::Auto`]).
    pub used: Backend,
    /// Why [`Backend::Auto`] fell back to the DE kernel, when it did —
    /// log-friendly, e.g. `process 'dct' used timed wait (wait_for/
    /// wait_any_for); model requires the DE kernel`.
    pub fallback: Option<String>,
}

/// Which end of each channel initiates, as detected from usage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoleMap {
    /// channel name → master PE name.
    pub master_of: BTreeMap<String, String>,
}

impl RoleMap {
    /// The master PE of `channel`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Missing`] when the map does not cover `channel`
    /// (e.g. a hand-built map, or an app grown after role detection).
    pub fn master_pe(&self, channel: &str) -> Result<&String, MapError> {
        self.master_of
            .get(channel)
            .ok_or_else(|| MapError::Missing {
                channel: channel.to_string(),
            })
    }
}

/// Failure to derive a consistent mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// An endpoint used both master and slave calls.
    Inconsistent {
        /// Channel in question.
        channel: String,
        /// Observations at (end A, end B).
        observed: (RoleObservation, RoleObservation),
    },
    /// A channel carried no traffic, so no roles could be derived.
    Unused {
        /// Channel in question.
        channel: String,
    },
    /// The supplied role map does not cover a channel of the app.
    Missing {
        /// Channel in question.
        channel: String,
    },
    /// The model cannot run on the requested execution backend
    /// ([`Backend::Direct`] forced on a model that needs the DE kernel).
    Backend {
        /// Human-readable disqualification reason.
        reason: String,
    },
    /// The architecture spec cannot be elaborated into an interconnect
    /// (e.g. a zero-sized NoC mesh drawn by a random spec generator).
    Arch {
        /// Human-readable reason.
        detail: String,
    },
    /// The sweep was cancelled before this candidate was simulated (see
    /// [`CancelToken`](crate::pool::CancelToken)); candidates already
    /// finished are discarded with the run.
    Cancelled,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Inconsistent { channel, observed } => write!(
                f,
                "channel '{channel}' has no unique master/slave split (observed {} / {})",
                observed.0, observed.1
            ),
            MapError::Unused { channel } => {
                write!(f, "channel '{channel}' was never used; cannot derive roles")
            }
            MapError::Missing { channel } => {
                write!(f, "role map misses channel '{channel}'")
            }
            MapError::Backend { reason } => {
                write!(f, "model disqualified from direct execution: {reason}")
            }
            MapError::Arch { detail } => {
                write!(f, "invalid architecture: {detail}")
            }
            MapError::Cancelled => write!(f, "sweep cancelled before completion"),
        }
    }
}

impl Error for MapError {}

/// Where a [`ShipPort`] handed to PE code sits in the elaborated model.
///
/// Passed to [`RunOptions::port_hook`] so a harness can interpose on exactly
/// the boundary it targets (e.g. one channel's master wrapper at the mapped
/// levels) while leaving every other port untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSite<'a> {
    /// The channel the port belongs to.
    pub channel: &'a str,
    /// The PE the port is handed to (the port's label).
    pub pe: &'a str,
    /// `true` when the port is backed by a mapped bus wrapper (CCATB or
    /// pin-accurate level) rather than an abstract SHIP channel.
    pub mapped: bool,
}

/// A port-interposition hook: receives every PE-facing port right before it
/// is handed to PE code and may replace it (typically via
/// [`ShipPort::map_endpoint`] with a fault-injecting proxy).
pub type PortHook = Arc<dyn Fn(PortSite<'_>, ShipPort) -> ShipPort + Send + Sync>;

/// Optional knobs for a single elaboration + run.
#[derive(Clone, Default)]
pub struct RunOptions {
    /// Enable the kernel transaction recorder with this ring capacity; the
    /// resulting [`TxnTrace`] lands in [`RunOutput::txn`].
    pub record_txns: Option<usize>,
    /// Timeout applied to every blocking SHIP call at the
    /// component-assembly level (see
    /// [`ShipConfig::timeout`](shiptlm_ship::channel::ShipConfig)); a call
    /// that would block past the budget returns
    /// [`ShipError::Timeout`](shiptlm_ship::error::ShipError) instead of
    /// hanging the simulation. Mapped levels bound hangs with
    /// [`time_limit`](Self::time_limit) instead.
    pub ship_timeout: Option<SimDur>,
    /// Bound on *simulated* time: the run uses
    /// [`Simulation::run_until`] instead of running to starvation, so a
    /// model stuck in a polling livelock still terminates (with
    /// [`StopReason::TimeLimit`]).
    pub time_limit: Option<SimDur>,
    /// Wall-clock watchdog for the run (see [`Simulation::set_watchdog`]);
    /// the last line of defence when a fault makes simulated time itself
    /// stop advancing.
    pub watchdog: Option<std::time::Duration>,
    /// Port-interposition hook applied to every PE-facing port (fault
    /// injection seam).
    pub port_hook: Option<PortHook>,
    /// Enable the time-resolved metrics registry with this sim-time
    /// sampling window; the resulting [`MetricsSnapshot`] lands in
    /// [`RunOutput::metrics`].
    pub metrics: Option<SimDur>,
    /// Execution backend for the component-assembly level (mapped levels
    /// always use the DE kernel).
    pub backend: Backend,
}

impl fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunOptions")
            .field("record_txns", &self.record_txns)
            .field("ship_timeout", &self.ship_timeout)
            .field("time_limit", &self.time_limit)
            .field("watchdog", &self.watchdog)
            .field("port_hook", &self.port_hook.as_ref().map(|_| "<hook>"))
            .field("metrics", &self.metrics)
            .field("backend", &self.backend)
            .finish()
    }
}

impl RunOptions {
    /// Options with the transaction recorder enabled (`capacity` events).
    pub fn with_recorder(capacity: usize) -> Self {
        RunOptions {
            record_txns: Some(capacity),
            ..RunOptions::default()
        }
    }

    /// Sets the component-assembly SHIP call timeout.
    pub fn with_ship_timeout(mut self, t: SimDur) -> Self {
        self.ship_timeout = Some(t);
        self
    }

    /// Sets the simulated-time bound.
    pub fn with_time_limit(mut self, d: SimDur) -> Self {
        self.time_limit = Some(d);
        self
    }

    /// Sets the wall-clock watchdog budget.
    pub fn with_watchdog(mut self, budget: std::time::Duration) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Sets the port-interposition hook.
    pub fn with_port_hook(mut self, hook: PortHook) -> Self {
        self.port_hook = Some(hook);
        self
    }

    /// Enables the time-resolved metrics registry with the given sim-time
    /// sampling window.
    pub fn with_metrics(mut self, window: SimDur) -> Self {
        self.metrics = Some(window);
        self
    }

    /// Selects the execution backend for the component-assembly level.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms a fresh simulation according to these options (recorder +
    /// metrics + watchdog). Called by every level runner, including
    /// `shiptlm::partition`.
    pub fn arm(&self, sim: &Simulation) {
        if let Some(cap) = self.record_txns {
            sim.record_transactions(cap);
        }
        if let Some(window) = self.metrics {
            sim.enable_metrics(window);
        }
        sim.set_watchdog(self.watchdog);
    }

    /// Runs `sim` honouring [`time_limit`](Self::time_limit).
    pub fn execute(&self, sim: &Simulation) -> RunResult {
        match self.time_limit {
            Some(d) => sim.run_until(SimTime::ZERO + d),
            None => sim.run(),
        }
    }

    /// Applies the port hook (when set) to a PE-facing port.
    pub fn hook_port(&self, channel: &str, pe: &str, mapped: bool, port: ShipPort) -> ShipPort {
        match &self.port_hook {
            Some(hook) => hook(
                PortSite {
                    channel,
                    pe,
                    mapped,
                },
                port,
            ),
            None => port,
        }
    }

    /// Snapshots the transaction trace when recording was requested.
    pub fn collect(&self, sim: &Simulation) -> Option<TxnTrace> {
        self.record_txns.map(|_| sim.txn_trace())
    }

    /// Snapshots the metric series when metrics were requested.
    pub fn collect_metrics(&self, sim: &Simulation) -> Option<MetricsSnapshot> {
        self.metrics.map(|_| sim.metrics_snapshot())
    }

    /// Post-run liveness diagnosis: `Some` when the run left processes
    /// blocked in kernel waits (deadlock, starved PEs, or processes cut off
    /// by a time limit / watchdog), `None` after a clean finish.
    pub fn diagnose_blocked(sim: &Simulation) -> Option<DeadlockReport> {
        let report = sim.diagnose();
        if report.blocked.is_empty() {
            None
        } else {
            Some(report)
        }
    }
}

/// Result of one elaboration + run.
#[derive(Debug)]
pub struct RunOutput {
    /// Transaction log over all ports.
    pub log: TransactionLog,
    /// Total simulated time.
    pub sim_time: SimDur,
    /// Kernel delta cycles executed (simulation effort proxy).
    pub delta_cycles: u64,
    /// Host wall-clock seconds spent simulating.
    pub wall_seconds: f64,
    /// Transaction-level trace, when recording was requested via
    /// [`RunOptions::record_txns`].
    pub txn: Option<TxnTrace>,
    /// Time-resolved metric series, when requested via
    /// [`RunOptions::metrics`].
    pub metrics: Option<MetricsSnapshot>,
    /// Why the simulation stopped. A healthy run ends in
    /// [`StopReason::Starved`] (nothing left to do) or
    /// [`StopReason::Stopped`]; [`StopReason::TimeLimit`] /
    /// [`StopReason::Watchdog`] indicate the run was cut off by
    /// [`RunOptions::time_limit`] / [`RunOptions::watchdog`].
    pub reason: StopReason,
    /// Liveness diagnosis, present whenever the run ended with processes
    /// still blocked in kernel waits. Conformance harnesses treat a
    /// diagnosis naming a PE process as a hang; infrastructure processes
    /// (clocks, RTOS idle loops) may legitimately appear here.
    pub diagnosis: Option<DeadlockReport>,
}

/// Output of the component-assembly run: functional results plus detected
/// roles.
#[derive(Debug)]
pub struct CaRun {
    /// The run output.
    pub output: RunOutput,
    /// Detected master end per channel.
    pub roles: RoleMap,
    /// Which execution backend produced this run.
    pub backend: BackendReport,
}

/// Runs the untimed component-assembly model and detects roles.
///
/// # Errors
///
/// Returns a [`MapError`] when any channel's usage does not yield a unique
/// master/slave split.
pub fn run_component_assembly(app: &AppSpec) -> Result<CaRun, MapError> {
    run_component_assembly_with(app, &RunOptions::default())
}

/// [`run_component_assembly`] with explicit [`RunOptions`] (e.g. the
/// transaction recorder or a non-default [`Backend`]).
///
/// # Errors
///
/// Returns a [`MapError`] when any channel's usage does not yield a unique
/// master/slave split, or [`MapError::Backend`] when [`Backend::Direct`]
/// was forced on a model that needs the DE kernel.
pub fn run_component_assembly_with(app: &AppSpec, opts: &RunOptions) -> Result<CaRun, MapError> {
    match opts.backend {
        Backend::De => run_component_assembly_de(
            app,
            opts,
            BackendReport {
                requested: Backend::De,
                used: Backend::De,
                fallback: None,
            },
        ),
        Backend::Direct => match run_component_assembly_direct(app, opts)? {
            Ok(ca) => Ok(ca),
            Err(disq) => Err(MapError::Backend {
                reason: disq.to_string(),
            }),
        },
        Backend::Auto => match run_component_assembly_direct(app, opts)? {
            Ok(mut ca) => {
                ca.backend.requested = Backend::Auto;
                Ok(ca)
            }
            Err(disq) => run_component_assembly_de(
                app,
                opts,
                BackendReport {
                    requested: Backend::Auto,
                    used: Backend::De,
                    fallback: Some(disq.to_string()),
                },
            ),
        },
    }
}

/// The delta-cycle-kernel component-assembly runner.
fn run_component_assembly_de(
    app: &AppSpec,
    opts: &RunOptions,
    backend: BackendReport,
) -> Result<CaRun, MapError> {
    let started = Instant::now();
    let sim = Simulation::new();
    opts.arm(&sim);
    let h = sim.handle();
    let log = TransactionLog::new();

    // Build all channels and distribute port ends per PE.
    let config = ShipConfig {
        timeout: opts.ship_timeout,
        ..ShipConfig::default()
    };
    let mut channels = Vec::new();
    let mut pe_ports: BTreeMap<String, Vec<ShipPort>> = BTreeMap::new();
    for c in app.channels() {
        let ch = ShipChannel::new(&h, &c.name, config.clone());
        let (pa, pb) = ch.ports(&c.a, &c.b);
        pa.attach_recorder(log.clone());
        pb.attach_recorder(log.clone());
        let pa = opts.hook_port(&c.name, &c.a, false, pa);
        let pb = opts.hook_port(&c.name, &c.b, false, pb);
        pe_ports.entry(c.a.clone()).or_default().push(pa);
        pe_ports.entry(c.b.clone()).or_default().push(pb);
        channels.push(ch);
    }
    for pe in app.pes() {
        let ports = pe_ports.remove(&pe.name).unwrap_or_default();
        let behavior = app.behavior(&pe.name);
        sim.spawn_thread(&pe.name, move |ctx| behavior(ctx, ports));
    }
    let result = opts.execute(&sim);

    let mut roles = RoleMap::default();
    for (ch, spec) in channels.iter().zip(app.channels()) {
        let observed = ch.observed_roles();
        match observed {
            (RoleObservation::Master, RoleObservation::Slave) => {
                roles.master_of.insert(spec.name.clone(), spec.a.clone());
            }
            (RoleObservation::Slave, RoleObservation::Master) => {
                roles.master_of.insert(spec.name.clone(), spec.b.clone());
            }
            (RoleObservation::Unused, RoleObservation::Unused) => {
                return Err(MapError::Unused {
                    channel: spec.name.clone(),
                })
            }
            _ => {
                return Err(MapError::Inconsistent {
                    channel: spec.name.clone(),
                    observed,
                })
            }
        }
    }

    Ok(CaRun {
        output: RunOutput {
            log,
            sim_time: result.time.saturating_since(SimTime::ZERO),
            delta_cycles: sim.delta_count(),
            wall_seconds: started.elapsed().as_secs_f64(),
            txn: opts.collect(&sim),
            metrics: opts.collect_metrics(&sim),
            reason: result.reason,
            diagnosis: RunOptions::diagnose_blocked(&sim),
        },
        roles,
        backend,
    })
}

/// Spawn order for the direct backend: producers before consumers so the
/// first scheduling pass already finds data flowing (Kahn's algorithm over
/// the channel graph's `a → b` edges, declaration order as tie-break; any
/// cyclic remainder is appended in declaration order).
fn wake_order(app: &AppSpec) -> Vec<String> {
    let pes = app.pes();
    let index_of: BTreeMap<&str, usize> = pes
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();
    let mut indegree = vec![0usize; pes.len()];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); pes.len()];
    for c in app.channels() {
        if let (Some(&a), Some(&b)) = (index_of.get(c.a.as_str()), index_of.get(c.b.as_str())) {
            if a != b {
                edges[a].push(b);
                indegree[b] += 1;
            }
        }
    }
    let mut order = Vec::with_capacity(pes.len());
    let mut placed = vec![false; pes.len()];
    while let Some(next) = (0..pes.len()).find(|&i| !placed[i] && indegree[i] == 0) {
        placed[next] = true;
        order.push(pes[next].name.clone());
        for &succ in &edges[next] {
            indegree[succ] -= 1;
        }
    }
    // Cycles leave every member with indegree > 0; append them as declared.
    for (i, pe) in pes.iter().enumerate() {
        if !placed[i] {
            order.push(pe.name.clone());
        }
    }
    order
}

/// The direct-execution component-assembly runner.
///
/// `Ok(Err(d))` means the model disqualified — either at elaboration (a
/// timed channel) or at runtime (a process touched a DE-only construct);
/// the caller decides between falling back ([`Backend::Auto`]) and erroring
/// ([`Backend::Direct`]). `Err` carries role-detection failures, which are
/// properties of the model rather than the backend and thus never trigger a
/// fallback.
fn run_component_assembly_direct(
    app: &AppSpec,
    opts: &RunOptions,
) -> Result<Result<CaRun, Disqualified>, MapError> {
    let started = Instant::now();
    let sim = DirectSim::new();
    if let Some(cap) = opts.record_txns {
        sim.record_transactions(cap);
    }
    if let Some(window) = opts.metrics {
        sim.enable_metrics(window);
    }
    sim.set_watchdog(opts.watchdog);
    let log = TransactionLog::new();

    let config = ShipConfig {
        timeout: opts.ship_timeout,
        ..ShipConfig::default()
    };
    let mut channels = Vec::new();
    let mut pe_ports: BTreeMap<String, Vec<ShipPort>> = BTreeMap::new();
    for c in app.channels() {
        let ch = match DirectChannel::new(sim.core(), &c.name, config.clone()) {
            Ok(ch) => ch,
            Err(d) => return Ok(Err(d)),
        };
        let (pa, pb) = ch.ports(&c.a, &c.b);
        pa.attach_recorder(log.clone());
        pb.attach_recorder(log.clone());
        let pa = opts.hook_port(&c.name, &c.a, false, pa);
        let pb = opts.hook_port(&c.name, &c.b, false, pb);
        pe_ports.entry(c.a.clone()).or_default().push(pa);
        pe_ports.entry(c.b.clone()).or_default().push(pb);
        channels.push(ch);
    }
    for pe in wake_order(app) {
        let ports = pe_ports.remove(&pe).unwrap_or_default();
        let behavior = app.behavior(&pe);
        sim.spawn_thread(&pe, move |ctx| behavior(ctx, ports));
    }
    // `time_limit` bounds *simulated* time, which the direct backend never
    // advances — an untimed model under `run_until` behaves identically.
    let (reason, diagnosis) = match sim.run() {
        DirectOutcome::Completed => (StopReason::Starved, None),
        DirectOutcome::Deadlock(report) => (StopReason::Starved, Some(report)),
        DirectOutcome::Watchdog(report) => (StopReason::Watchdog, Some(report)),
        DirectOutcome::Disqualified(d) => return Ok(Err(d)),
    };

    let mut roles = RoleMap::default();
    for (ch, spec) in channels.iter().zip(app.channels()) {
        let observed = ch.observed_roles();
        match observed {
            (RoleObservation::Master, RoleObservation::Slave) => {
                roles.master_of.insert(spec.name.clone(), spec.a.clone());
            }
            (RoleObservation::Slave, RoleObservation::Master) => {
                roles.master_of.insert(spec.name.clone(), spec.b.clone());
            }
            (RoleObservation::Unused, RoleObservation::Unused) => {
                return Err(MapError::Unused {
                    channel: spec.name.clone(),
                })
            }
            _ => {
                return Err(MapError::Inconsistent {
                    channel: spec.name.clone(),
                    observed,
                })
            }
        }
    }

    Ok(Ok(CaRun {
        output: RunOutput {
            log,
            sim_time: SimDur::ZERO,
            delta_cycles: 0,
            wall_seconds: started.elapsed().as_secs_f64(),
            txn: opts.record_txns.map(|_| sim.txn_trace()),
            metrics: opts.metrics.map(|_| sim.metrics_snapshot()),
            reason,
            diagnosis,
        },
        roles,
        backend: BackendReport {
            requested: Backend::Direct,
            used: Backend::Direct,
            fallback: None,
        },
    }))
}

/// Output of a mapped (CCATB) run.
#[derive(Debug)]
pub struct MappedRun {
    /// The run output.
    pub output: RunOutput,
    /// Interconnect statistics.
    pub bus: shiptlm_cam::bus::BusStats,
}

/// Re-elaborates `app` with channels mapped onto `arch` per `roles`, runs
/// it, and returns log + interconnect statistics.
///
/// PE source is reused verbatim; each master PE gets one bus-master identity
/// (its index in declaration order), so fixed-priority arbitration follows
/// PE declaration order.
///
/// # Errors
///
/// Returns [`MapError::Missing`] if `roles` does not cover every channel of
/// `app`.
pub fn run_mapped(app: &AppSpec, roles: &RoleMap, arch: &ArchSpec) -> Result<MappedRun, MapError> {
    run_mapped_with(app, roles, arch, &RunOptions::default())
}

/// [`run_mapped`] with explicit [`RunOptions`] (e.g. the transaction
/// recorder).
///
/// # Errors
///
/// Returns [`MapError::Missing`] if `roles` does not cover every channel of
/// `app`.
pub fn run_mapped_with(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
    opts: &RunOptions,
) -> Result<MappedRun, MapError> {
    let started = Instant::now();
    let sim = Simulation::new();
    opts.arm(&sim);
    let h = sim.handle();
    let log = TransactionLog::new();

    let wrapper_cfg = WrapperConfig {
        burst_bytes: arch.burst_bytes,
        poll_interval: arch.poll_interval,
        rx_capacity: arch.rx_capacity,
    };

    // One mailbox adapter per channel, in address order.
    let mut pendings = Vec::new();
    let mut slaves: Vec<(std::ops::Range<u64>, Arc<dyn shiptlm_ocp::tl::OcpTarget>)> = Vec::new();
    for (k, c) in app.channels().iter().enumerate() {
        let base = MAP_BASE + k as u64 * ADAPTER_SIZE;
        let master_pe = roles.master_pe(&c.name)?;
        let (master_label, slave_label) = if master_pe == &c.a {
            (c.a.as_str(), c.b.as_str())
        } else {
            (c.b.as_str(), c.a.as_str())
        };
        let pending = map_channel(
            &h,
            &c.name,
            base,
            wrapper_cfg.clone(),
            (master_label, slave_label),
        );
        slaves.push((base..base + ADAPTER_SIZE, pending.adapter.clone() as _));
        pendings.push(pending);
    }
    let interconnect = build_interconnect(&h, arch, slaves)?;

    // Distribute ports per PE, master ends bound through the PE's bus port.
    let mut pe_ports: BTreeMap<String, Vec<ShipPort>> = BTreeMap::new();
    let master_id_of: BTreeMap<&str, MasterId> = app
        .pes()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), MasterId(i)))
        .collect();
    for (pending, c) in pendings.iter().zip(app.channels()) {
        let master_pe = &roles.master_of[&c.name];
        let slave_pe = if master_pe == &c.a { &c.b } else { &c.a };
        let bus_port = interconnect.master_port(master_id_of[master_pe.as_str()]);
        let mport = pending.bind(&bus_port);
        mport.attach_recorder(log.clone());
        let sport = pending.slave_port.clone();
        sport.attach_recorder(log.clone());
        let mport = opts.hook_port(&c.name, master_pe, true, mport);
        let sport = opts.hook_port(&c.name, slave_pe, true, sport);
        // Insert in the PE's channel order.
        pe_ports.entry(master_pe.clone()).or_default().push(mport);
        pe_ports.entry(slave_pe.clone()).or_default().push(sport);
    }
    // NOTE: ports were pushed channel-by-channel, which matches
    // `AppSpec::channels_of` order (both iterate the channel list).
    for pe in app.pes() {
        let ports = pe_ports.remove(&pe.name).unwrap_or_default();
        let behavior = app.behavior(&pe.name);
        sim.spawn_thread(&pe.name, move |ctx| behavior(ctx, ports));
    }
    let result = opts.execute(&sim);

    Ok(MappedRun {
        output: RunOutput {
            log,
            sim_time: result.time.saturating_since(SimTime::ZERO),
            delta_cycles: sim.delta_count(),
            wall_seconds: started.elapsed().as_secs_f64(),
            txn: opts.collect(&sim),
            metrics: opts.collect_metrics(&sim),
            reason: result.reason,
            diagnosis: RunOptions::diagnose_blocked(&sim),
        },
        bus: interconnect.stats(),
    })
}

/// Re-elaborates `app` at the **pin-accurate prototype level**: channels are
/// mapped as in [`run_mapped`], and every master PE additionally reaches the
/// interconnect through a pin-level OCP [`Accessor`](shiptlm_cam::accessor::Accessor)
/// — request and response cross real signal pins cycle by cycle (paper §3's
/// synthesizable prototype path).
///
/// # Errors
///
/// Returns [`MapError::Missing`] if `roles` does not cover every channel of
/// `app`.
pub fn run_pin_accurate(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
) -> Result<MappedRun, MapError> {
    run_pin_accurate_with(app, roles, arch, &RunOptions::default())
}

/// [`run_pin_accurate`] with explicit [`RunOptions`] (e.g. the transaction
/// recorder).
///
/// # Errors
///
/// Returns [`MapError::Missing`] if `roles` does not cover every channel of
/// `app`.
pub fn run_pin_accurate_with(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
    opts: &RunOptions,
) -> Result<MappedRun, MapError> {
    let started = Instant::now();
    let sim = Simulation::new();
    opts.arm(&sim);
    let h = sim.handle();
    let log = TransactionLog::new();

    let wrapper_cfg = WrapperConfig {
        burst_bytes: arch.burst_bytes,
        poll_interval: arch.poll_interval,
        rx_capacity: arch.rx_capacity,
    };

    let mut pendings = Vec::new();
    let mut slaves: Vec<(std::ops::Range<u64>, Arc<dyn shiptlm_ocp::tl::OcpTarget>)> = Vec::new();
    for (k, c) in app.channels().iter().enumerate() {
        let base = MAP_BASE + k as u64 * ADAPTER_SIZE;
        let master_pe = roles.master_pe(&c.name)?;
        let (ml, sl) = if master_pe == &c.a {
            (c.a.as_str(), c.b.as_str())
        } else {
            (c.b.as_str(), c.a.as_str())
        };
        let pending = map_channel(&h, &c.name, base, wrapper_cfg.clone(), (ml, sl));
        slaves.push((base..base + ADAPTER_SIZE, pending.adapter.clone() as _));
        pendings.push(pending);
    }
    let interconnect = build_interconnect(&h, arch, slaves)?;
    let clk = sim.clock("clk", interconnect.clock_period());

    // One pin-level accessor per master PE.
    let master_id_of: BTreeMap<&str, MasterId> = app
        .pes()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), MasterId(i)))
        .collect();
    let mut accessor_port_of: BTreeMap<String, shiptlm_ocp::tl::OcpMasterPort> = BTreeMap::new();
    for c in app.channels() {
        let master_pe = roles.master_of[&c.name].clone();
        accessor_port_of
            .entry(master_pe.clone())
            .or_insert_with(|| {
                let acc = shiptlm_cam::accessor::Accessor::attach(
                    &h,
                    &format!("{master_pe}.acc"),
                    &clk,
                    interconnect.as_target(),
                    master_id_of[master_pe.as_str()],
                    false,
                );
                acc.port().clone()
            });
    }

    let mut pe_ports: BTreeMap<String, Vec<ShipPort>> = BTreeMap::new();
    for (pending, c) in pendings.iter().zip(app.channels()) {
        let master_pe = &roles.master_of[&c.name];
        let slave_pe = if master_pe == &c.a { &c.b } else { &c.a };
        let mport = pending.bind(&accessor_port_of[master_pe]);
        mport.attach_recorder(log.clone());
        let sport = pending.slave_port.clone();
        sport.attach_recorder(log.clone());
        let mport = opts.hook_port(&c.name, master_pe, true, mport);
        let sport = opts.hook_port(&c.name, slave_pe, true, sport);
        pe_ports.entry(master_pe.clone()).or_default().push(mport);
        pe_ports.entry(slave_pe.clone()).or_default().push(sport);
    }
    // The free-running clock would keep the simulation alive forever, so
    // stop exactly when the last PE behaviour returns (all transactions are
    // blocking, hence complete by then).
    let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(app.pes().len()));
    for pe in app.pes() {
        let ports = pe_ports.remove(&pe.name).unwrap_or_default();
        let behavior = app.behavior(&pe.name);
        let remaining = Arc::clone(&remaining);
        sim.spawn_thread(&pe.name, move |ctx| {
            behavior(ctx, ports);
            if remaining.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) == 1 {
                ctx.stop();
            }
        });
    }
    let result = opts.execute(&sim);
    let result_time = sim.now();

    Ok(MappedRun {
        output: RunOutput {
            log,
            sim_time: result_time.saturating_since(SimTime::ZERO),
            delta_cycles: sim.delta_count(),
            wall_seconds: started.elapsed().as_secs_f64(),
            txn: opts.collect(&sim),
            metrics: opts.collect_metrics(&sim),
            reason: result.reason,
            diagnosis: RunOptions::diagnose_blocked(&sim),
        },
        bus: interconnect.stats(),
    })
}

/// Convenience: detect roles then map in one call.
///
/// # Errors
///
/// Returns a [`MapError`] from the role-detection phase.
pub fn explore_one(app: &AppSpec, arch: &ArchSpec) -> Result<(CaRun, MappedRun), MapError> {
    let ca = run_component_assembly(app)?;
    let mapped = run_mapped(app, &ca.roles, arch)?;
    Ok((ca, mapped))
}
