//! Persistent worker pool for fanning out candidate simulations.
//!
//! The first parallel-sweep implementation spawned a fresh scoped thread per
//! worker on every [`Sweep`](crate::sweep::Sweep) call. `BENCH_exploration.json`
//! showed that losing to the serial sweep at 13 candidates: per-candidate
//! simulations cost only milliseconds, so per-sweep thread spawn/teardown
//! dominated (serial 248 ms vs 282 ms at 8 "worker" threads). The pool here
//! fixes that structurally:
//!
//! * **Persistent, lazily-started workers.** Threads are spawned on first
//!   demand and then parked on a condvar between jobs, so the second sweep
//!   (and the thousandth) pays zero spawn cost. [`WorkerPool::global`] is
//!   the process-wide instance shared by [`Sweep::run_parallel`] and
//!   `DesignFlow::run_on`; independent pools can be created with
//!   [`WorkerPool::new`] for isolation.
//! * **Batched claiming.** A batch does not enqueue one job per candidate.
//!   It enqueues one *claimer* per worker; claimers (and the calling thread,
//!   which always participates) grab contiguous index chunks from a shared
//!   atomic cursor. Queue and wake-up traffic is `O(threads)`, not
//!   `O(candidates)`, and chunking amortizes the cursor bump at 1k–10k
//!   candidates.
//! * **Caller participation.** The submitting thread claims chunks like any
//!   worker, so a batch always makes progress even when every pool worker is
//!   busy with another sweep (no convoying, no deadlock on nested use).
//! * **Cooperative cancellation.** [`WorkerPool::run_fallible`] tracks the
//!   earliest failing index; chunks queued behind a failure are skipped
//!   instead of simulated, while the returned error is still the earliest
//!   failure in index order — exactly what a serial loop would report.
//!
//! [`Sweep::run_parallel`]: crate::sweep::Sweep::run_parallel

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// A cheaply-cloneable cancellation flag shared between a sweep and the
/// code that may want to abandon it (the gateway cancels in-flight jobs
/// whose client has disconnected or whose server is force-stopping).
///
/// Cancellation is *cooperative*: a cancelled sweep stops launching new
/// candidate simulations and returns
/// [`MapError::Cancelled`](crate::mapper::MapError); a candidate already
/// simulating runs to completion (candidate simulations are milliseconds,
/// and tearing a DE kernel down mid-delta is not worth the complexity).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; idempotent, visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One claimed-and-completed index chunk of a batch, reported to the
/// observer of [`WorkerPool::run_fallible_observed`]. `elapsed` is the wall
/// time the claimer spent running `start..end` (including skipped indices —
/// a cancelled chunk reports a near-zero duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDone {
    /// First index of the chunk (inclusive).
    pub start: usize,
    /// One past the last index of the chunk.
    pub end: usize,
    /// Wall-clock time the claimer spent on the chunk.
    pub elapsed: std::time::Duration,
}

type ChunkObserver = Box<dyn Fn(ChunkDone) + Send + Sync>;

/// Sentinel for "no candidate has failed".
const NO_FAILURE: usize = usize::MAX;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct PoolState {
    queue: VecDeque<Job>,
    idle: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

impl PoolInner {
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut st = lock(&self.state);
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    if st.shutdown {
                        return;
                    }
                    st.idle += 1;
                    st = self.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                    st.idle -= 1;
                }
            };
            // A panicking job must not kill the worker: the batch records the
            // payload and the submitting thread rethrows it.
            let _ = catch_unwind(AssertUnwindSafe(job));
        }
    }
}

/// A persistent pool of worker threads with batched index claiming.
///
/// Workers are spawned lazily (first batch that wants them) and live until
/// the pool is dropped; [`WorkerPool::global`] never drops, so its workers
/// are reused for the whole process lifetime.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("spawned_workers", &self.spawned_workers())
            .finish()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

/// Per-batch shared state: an index cursor claimers pull chunks from, plus
/// panic bookkeeping. Completion is tracked by a separate [`Latch`] so that
/// helper claimers can drop their `Arc<Batch>` (and with it every borrow of
/// caller state held by `task`) strictly *before* signalling completion.
struct Batch {
    next: AtomicUsize,
    total: usize,
    chunk: usize,
    task: Box<dyn Fn(usize) + Send + Sync>,
    /// Earliest-index panic observed; rethrown on the calling thread. The
    /// index matters: when claimers on different chunks panic concurrently,
    /// the one a serial loop would have hit first must win, and
    /// [`WorkerPool::run_fallible`] compares it against the earliest
    /// recorded `Err` to preserve its serial-equivalence contract.
    panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>>,
    /// Called once per completed chunk (timed); `None` costs one branch per
    /// chunk — the observability fast-path discipline.
    on_chunk: Option<ChunkObserver>,
}

impl Batch {
    fn claim_chunks(&self) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.total {
                return;
            }
            let end = (start + self.chunk).min(self.total);
            let t0 = self.on_chunk.as_ref().map(|_| std::time::Instant::now());
            for i in start..end {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.task)(i))) {
                    let mut slot = lock(&self.panic);
                    if slot.as_ref().is_none_or(|(at, _)| i < *at) {
                        *slot = Some((i, payload));
                    }
                    // Park the cursor past the end so every claimer drains.
                    self.next.store(self.total, Ordering::Relaxed);
                    return;
                }
            }
            if let (Some(cb), Some(t0)) = (self.on_chunk.as_ref(), t0) {
                cb(ChunkDone {
                    start,
                    end,
                    elapsed: t0.elapsed(),
                });
            }
        }
    }
}

/// Completion latch for one batch. Owns nothing borrowed, so helper jobs may
/// keep it alive past `run_indexed`'s return without touching caller state.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn retire(&self) {
        let mut remaining = lock(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = lock(&self.remaining);
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned lazily on first demand.
    pub fn new() -> Self {
        WorkerPool {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    queue: VecDeque::new(),
                    idle: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool shared by [`Sweep::run_parallel`] and
    /// `DesignFlow::run_on`. Never torn down; its workers persist across
    /// sweeps for the process lifetime.
    ///
    /// [`Sweep::run_parallel`]: crate::sweep::Sweep::run_parallel
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// Number of worker threads spawned so far (grows lazily, never
    /// shrinks). A sweep at `threads` concurrency spawns at most
    /// `threads - 1` workers — the calling thread is always the last runner.
    pub fn spawned_workers(&self) -> usize {
        lock(&self.workers).len()
    }

    fn ensure_workers(&self, wanted: usize) {
        let mut workers = lock(&self.workers);
        while workers.len() < wanted {
            let inner = Arc::clone(&self.inner);
            let name = format!("shiptlm-sweep-{}", workers.len());
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || inner.worker_loop())
                .expect("spawn sweep worker thread");
            workers.push(handle);
        }
    }

    /// Runs `task(i)` for every `i in 0..total` with up to `concurrency`
    /// runners (pool workers plus the calling thread), claiming indices in
    /// chunks of `chunk`. Blocks until every index has run. Panics from
    /// `task` are rethrown here, on the calling thread.
    pub fn run_indexed(
        &self,
        concurrency: usize,
        total: usize,
        chunk: usize,
        task: Box<dyn Fn(usize) + Send + Sync>,
    ) {
        if let Some((_, payload)) = self.run_indexed_raw(concurrency, total, chunk, task, None) {
            resume_unwind(payload);
        }
    }

    /// Like [`run_indexed`](Self::run_indexed), but hands a captured panic
    /// back as `(index, payload)` instead of rethrowing, so fallible batches
    /// can decide whether an earlier recorded error takes precedence.
    fn run_indexed_raw(
        &self,
        concurrency: usize,
        total: usize,
        chunk: usize,
        task: Box<dyn Fn(usize) + Send + Sync>,
        on_chunk: Option<ChunkObserver>,
    ) -> Option<(usize, Box<dyn std::any::Any + Send>)> {
        if total == 0 {
            return None;
        }
        let concurrency = concurrency.clamp(1, total);
        let helpers = concurrency - 1;
        let batch = Arc::new(Batch {
            next: AtomicUsize::new(0),
            total,
            chunk: chunk.max(1),
            task,
            panic: Mutex::new(None),
            on_chunk,
        });
        let latch = Arc::new(Latch {
            remaining: Mutex::new(helpers),
            done: Condvar::new(),
        });
        if helpers > 0 {
            self.ensure_workers(helpers);
            {
                let mut st = lock(&self.inner.state);
                for _ in 0..helpers {
                    let b = Arc::clone(&batch);
                    let l = Arc::clone(&latch);
                    st.queue.push_back(Box::new(move || {
                        // claim_chunks contains all task panics itself; the
                        // extra catch is a backstop so the latch always fires.
                        let _ = catch_unwind(AssertUnwindSafe(|| b.claim_chunks()));
                        // Drop the batch (and every borrow inside `task`)
                        // BEFORE retiring: once the caller observes the latch
                        // at zero, no helper can still reach caller state.
                        drop(b);
                        l.retire();
                    }));
                }
            }
            self.inner.work_ready.notify_all();
        }
        // The caller is a claimer too: progress is guaranteed even when all
        // workers are busy with other batches, and `concurrency == 1` never
        // touches the queue at all.
        batch.claim_chunks();
        latch.wait();
        let panic = lock(&batch.panic).take();
        panic
    }

    /// Fallible fan-out with cooperative cancellation, the engine behind
    /// parallel sweeps.
    ///
    /// `task(i)` runs for every index unless an earlier (lower) index has
    /// already failed, in which case queued higher indices are *skipped* —
    /// their cost is never paid. Results come back in index order. On
    /// failure the error of the earliest failing index is returned, which is
    /// exactly the error a serial `for` loop over `0..total` would have
    /// stopped at: every index below the earliest failure is guaranteed to
    /// have run.
    ///
    /// # Errors
    ///
    /// Returns `E` of the earliest failing index when any `task` call fails.
    ///
    /// # Panics
    ///
    /// A panicking `task` is rethrown here, on the calling thread — unless
    /// an `Err` was recorded at a *lower* index, in which case that error is
    /// returned instead (a serial loop would have stopped there and never
    /// executed the panicking index). Of several concurrent panics, the one
    /// at the lowest index wins. The pool's workers survive either way and
    /// the pool stays usable for subsequent batches.
    pub fn run_fallible<T, E>(
        &self,
        concurrency: usize,
        total: usize,
        chunk: usize,
        task: impl Fn(usize) -> Result<T, E> + Send + Sync,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
    {
        self.run_fallible_observed(concurrency, total, chunk, task, None)
    }

    /// [`run_fallible`](Self::run_fallible) with an optional chunk observer:
    /// `on_chunk` fires once per completed index chunk with its bounds and
    /// wall time, from whichever thread claimed the chunk. This is how
    /// sweeps surface live progress and per-chunk causal spans without any
    /// cost on the unobserved path (one branch per chunk when `None`).
    ///
    /// # Errors
    ///
    /// As [`run_fallible`](Self::run_fallible).
    pub fn run_fallible_observed<T, E>(
        &self,
        concurrency: usize,
        total: usize,
        chunk: usize,
        task: impl Fn(usize) -> Result<T, E> + Send + Sync,
        on_chunk: Option<&(dyn Fn(ChunkDone) + Send + Sync)>,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
    {
        struct FallibleBatch<T, E, F> {
            slots: Vec<Mutex<Option<Result<T, E>>>>,
            first_fail: AtomicUsize,
            task: F,
        }
        let shared = Arc::new(FallibleBatch {
            slots: (0..total).map(|_| Mutex::new(None)).collect(),
            first_fail: AtomicUsize::new(NO_FAILURE),
            task,
        });
        let panic = {
            let shared = Arc::clone(&shared);
            // SAFETY-free lifetime note: `task` may borrow caller state, so
            // the closure is scoped via Arc and fully drained before return —
            // `run_indexed` blocks until every claimer has retired.
            let boxed: Box<dyn Fn(usize) + Send + Sync + '_> = Box::new(move |i| {
                // Cooperative cancel: work queued behind a failed candidate
                // is dropped, not simulated. Indices *below* the failure
                // still run — one of them could fail too, and the earliest
                // failure is the one the serial path would report.
                if i > shared.first_fail.load(Ordering::Relaxed) {
                    return;
                }
                let result = (shared.task)(i);
                if result.is_err() {
                    shared.first_fail.fetch_min(i, Ordering::Relaxed);
                }
                *lock(&shared.slots[i]) = Some(result);
            });
            // SAFETY: the pool queue requires 'static jobs, but `run_indexed`
            // joins the whole batch before returning, so the borrow of
            // `task`/`shared` never outlives this call.
            let boxed: Box<dyn Fn(usize) + Send + Sync + 'static> =
                unsafe { std::mem::transmute(boxed) };
            let observer: Option<ChunkObserver> = on_chunk.map(|cb| {
                let boxed: Box<dyn Fn(ChunkDone) + Send + Sync + '_> = Box::new(cb);
                // SAFETY: same argument as `task` above — every claimer
                // holding this observer retires before `run_indexed_raw`
                // returns, so the borrow of `cb` never escapes this call.
                let boxed: ChunkObserver = unsafe { std::mem::transmute(boxed) };
                boxed
            });
            self.run_indexed_raw(concurrency, total, chunk, boxed, observer)
        };
        let shared = match Arc::try_unwrap(shared) {
            Ok(s) => s,
            Err(_) => unreachable!("all claimers retired before run_indexed returned"),
        };
        if let Some((at, payload)) = panic {
            // Serial equivalence under panics: a serial loop reaches the
            // panicking index only if every lower index succeeded. When an
            // `Err` was recorded at a lower index, that error is the serial
            // outcome and the panic (which the serial run would never have
            // executed) is discarded. A panic parks the batch cursor, so
            // slots below a *later* recorded error may be unfilled — return
            // the recorded error directly instead of scanning.
            let first_fail = shared.first_fail.load(Ordering::Relaxed);
            if first_fail < at {
                match lock(&shared.slots[first_fail]).take() {
                    Some(Err(e)) => return Err(e),
                    // The failing claimer records `first_fail` before
                    // filling its slot and both precede the batch join.
                    _ => unreachable!("first_fail slot missing its error"),
                }
            }
            resume_unwind(payload);
        }
        let mut rows = Vec::with_capacity(total);
        for slot in shared.slots {
            match lock(&slot).take() {
                Some(Ok(row)) => rows.push(row),
                Some(Err(e)) => return Err(e),
                // Skipped by cancellation: unreachable before the earliest
                // failure, and the failure returns above first.
                None => unreachable!("slot skipped without an earlier failure"),
            }
        }
        Ok(rows)
    }

    /// A sensible chunk size for `total` indices over `concurrency` runners:
    /// small enough to balance uneven candidate costs, large enough to
    /// amortize cursor traffic on 10k-candidate sweeps.
    pub fn chunk_for(concurrency: usize, total: usize) -> usize {
        (total / (concurrency.max(1) * 8)).clamp(1, 32)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.work_ready.notify_all();
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn run_indexed_covers_every_index_once() {
        let pool = WorkerPool::new();
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let hits = Arc::new(hits);
        let h = Arc::clone(&hits);
        pool.run_indexed(
            4,
            100,
            WorkerPool::chunk_for(4, 100),
            Box::new(move |i| {
                h[i].fetch_add(1, Ordering::Relaxed);
            }),
        );
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} hit count");
        }
        assert!(pool.spawned_workers() <= 3);
    }

    #[test]
    fn workers_are_lazy_and_reused() {
        let pool = WorkerPool::new();
        assert_eq!(pool.spawned_workers(), 0, "no demand, no threads");
        pool.run_indexed(1, 10, 1, Box::new(|_| {}));
        assert_eq!(pool.spawned_workers(), 0, "serial batches never spawn");
        for _ in 0..5 {
            pool.run_indexed(4, 20, 1, Box::new(|_| {}));
        }
        assert_eq!(pool.spawned_workers(), 3, "pool reused, not regrown");
        pool.run_indexed(6, 20, 1, Box::new(|_| {}));
        assert_eq!(pool.spawned_workers(), 5, "grows on larger demand");
    }

    #[test]
    fn run_fallible_returns_rows_in_index_order() {
        let pool = WorkerPool::new();
        let rows: Vec<usize> = pool
            .run_fallible(4, 50, 2, |i| Ok::<_, ()>(i * 10))
            .unwrap();
        assert_eq!(rows, (0..50).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_fallible_reports_earliest_failure_and_skips_queued_work() {
        let pool = WorkerPool::new();
        let ran: Vec<AtomicBool> = (0..400).map(|_| AtomicBool::new(false)).collect();
        // Index 7 fails (after a short delay so later chunks are queued
        // behind it); everything behind the failure should be skipped.
        let result: Result<Vec<usize>, String> = pool.run_fallible(2, 400, 4, |i| {
            ran[i].store(true, Ordering::Relaxed);
            if i == 7 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                Err(format!("candidate {i} failed"))
            } else {
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), "candidate 7 failed");
        let ran_count = ran.iter().filter(|r| r.load(Ordering::Relaxed)).count();
        assert!(
            ran_count < 400,
            "cancel flag should skip queued candidates, but all {ran_count} ran"
        );
    }

    #[test]
    fn run_fallible_prefers_the_earliest_of_two_failures() {
        // Indices 3 and 30 both fail; 30 likely fails first on the worker,
        // but the reported error must be index 3's — the serial answer.
        let pool = WorkerPool::new();
        for _ in 0..20 {
            let err = pool
                .run_fallible(2, 60, 1, |i| {
                    if i == 3 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        Err(3usize)
                    } else if i == 30 {
                        Err(30usize)
                    } else {
                        Ok(())
                    }
                })
                .unwrap_err();
            assert_eq!(err, 3, "earliest failing index wins");
        }
    }

    #[test]
    fn panics_propagate_to_the_caller_and_workers_survive() {
        let pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(
                3,
                10,
                1,
                Box::new(|i| {
                    if i == 5 {
                        panic!("boom at {i}");
                    }
                }),
            );
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool must still be usable afterwards.
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.run_indexed(
            3,
            10,
            1,
            Box::new(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn run_fallible_prefers_a_lower_index_error_over_a_panic() {
        // Index 2 fails with Err, index 40 panics. The serial loop stops at
        // index 2 and never reaches 40, so the parallel run must return the
        // error, not rethrow the panic.
        let pool = WorkerPool::new();
        for _ in 0..20 {
            let result: Result<Vec<()>, String> = pool.run_fallible(2, 80, 1, |i| {
                if i == 2 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    Err(format!("candidate {i} failed"))
                } else if i == 40 {
                    panic!("boom at {i}");
                } else {
                    Ok(())
                }
            });
            assert_eq!(result.unwrap_err(), "candidate 2 failed");
        }
    }

    #[test]
    fn run_fallible_rethrows_a_panic_below_the_earliest_error() {
        // Index 1 panics, index 50 fails with Err: serial order hits the
        // panic first, so the panic must win.
        let pool = WorkerPool::new();
        for _ in 0..20 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let _: Result<Vec<()>, String> = pool.run_fallible(2, 80, 1, |i| {
                    if i == 1 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        panic!("boom at {i}");
                    } else if i == 50 {
                        Err(format!("candidate {i} failed"))
                    } else {
                        Ok(())
                    }
                });
            }));
            let payload = caught.unwrap_err();
            let msg = payload.downcast_ref::<String>().expect("panic message");
            assert_eq!(msg, "boom at 1");
        }
    }

    #[test]
    fn earliest_index_panic_wins_among_concurrent_panics() {
        let pool = WorkerPool::new();
        for _ in 0..20 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.run_indexed(
                    3,
                    90,
                    1,
                    Box::new(|i| {
                        if i == 4 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            panic!("boom at {i}");
                        } else if i == 60 {
                            panic!("boom at {i}");
                        }
                    }),
                );
            }));
            let payload = caught.unwrap_err();
            let msg = payload.downcast_ref::<String>().expect("panic message");
            assert_eq!(msg, "boom at 4", "lowest panicking index wins");
        }
    }

    #[test]
    fn pool_survives_a_panicking_fallible_batch() {
        let pool = WorkerPool::new();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _: Result<Vec<()>, ()> =
                pool.run_fallible(4, 40, 1, |i| if i == 9 { panic!("boom") } else { Ok(()) });
        }));
        assert!(caught.is_err());
        // The same pool (same parked workers) must run the next batch clean.
        let rows: Vec<usize> = pool
            .run_fallible(4, 40, 1, Ok::<_, ()>)
            .unwrap();
        assert_eq!(rows, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_observer_covers_every_index_exactly_once() {
        let pool = WorkerPool::new();
        let seen = Mutex::new(vec![0usize; 64]);
        let observer = |c: ChunkDone| {
            assert!(c.start < c.end && c.end <= 64);
            let mut g = lock(&seen);
            for i in c.start..c.end {
                g[i] += 1;
            }
        };
        let rows: Vec<usize> = pool
            .run_fallible_observed(4, 64, 4, Ok::<_, ()>, Some(&observer))
            .unwrap();
        assert_eq!(rows, (0..64).collect::<Vec<_>>());
        let g = lock(&seen);
        assert!(g.iter().all(|&n| n == 1), "chunk coverage: {g:?}");
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
    }
}
