//! Parameter sweeps over candidate architectures — the paper's "fast
//! communication architecture exploration".
//!
//! Candidate simulations are fully independent [`Simulation`] instances, so
//! a sweep fans them out over the persistent [`WorkerPool`]
//! ([`Sweep::run_parallel`] uses [`WorkerPool::global`]; [`Sweep::run_on`]
//! takes any pool). Role detection still runs exactly once and is shared
//! immutably; results are collected in candidate order, so the [`Report`]
//! is identical to a serial run regardless of thread count.
//!
//! For large design grids (see [`ArchGrid`](crate::arch::ArchGrid)) a sweep
//! can additionally run in Pareto-guided pruning mode
//! ([`Sweep::with_pruning`]): finished candidates stream their cost vectors
//! into an incremental non-dominated archive, and queued candidates whose
//! *lower bound* is already dominated are skipped without being simulated.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use shiptlm_kernel::causal::{
    spans_from_txn, track_for_candidate, CausalSpan, SpanSink, TraceCtx, TRACK_HOST,
};
use shiptlm_kernel::sim::Simulation;
use shiptlm_ship::record::{Label, ShipOp, TransactionLog};

use crate::app::AppSpec;
use crate::arch::ArchSpec;
use crate::mapper::{
    run_component_assembly, run_component_assembly_with, run_mapped, run_mapped_with, MapError,
    MappedRun, RoleMap, RunOptions,
};
use crate::metrics::{Report, RunMetrics};
use crate::pareto::ParetoSet;
use crate::pool::{CancelToken, WorkerPool};

// Compile-time guarantee that sweep workers are safely isolated: every piece
// of state a worker thread touches must be Send (and the shared inputs Sync).
// A hidden global or thread-affine handle anywhere in the kernel/ship/cam
// stack would surface here as a build failure, not a data race.
const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}
const _: () = {
    assert_send::<Simulation>();
    assert_sync::<AppSpec>();
    assert_sync::<RoleMap>();
    assert_sync::<ArchSpec>();
    assert_send::<MappedRun>();
    assert_send::<RunMetrics>();
    assert_send::<Report>();
    assert_send::<MapError>();
    assert_send::<shiptlm_kernel::txn::TxnTrace>();
    assert_send::<shiptlm_kernel::metrics::MetricsSnapshot>();
    assert_sync::<RunOptions>();
    assert_sync::<WorkerPool>();
    assert_sync::<PruneConfig>();
    assert_send::<ParetoSet>();
};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Application facts extracted from the untimed reference run, available to
/// pruning lower-bound estimators (see [`PruneConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneContext {
    /// Largest total payload delivered over any single channel, in bytes.
    /// Those bytes cross one adapter of the candidate interconnect
    /// *serially*, which makes
    /// [`ArchSpec::min_transfer_time`] of this figure an admissible
    /// simulated-time floor.
    pub max_channel_bytes: u64,
    /// Total payload bytes delivered across all channels.
    pub total_bytes: u64,
}

impl PruneContext {
    /// Extracts the context from the component-assembly run's log.
    pub fn from_log(log: &TransactionLog) -> Self {
        log.with_records(|records| {
            let mut per_channel: BTreeMap<Label, u64> = BTreeMap::new();
            let mut total = 0u64;
            for r in records {
                if r.op == ShipOp::Recv {
                    *per_channel.entry(r.channel.clone()).or_default() += r.len as u64;
                    total += r.len as u64;
                }
            }
            PruneContext {
                max_channel_bytes: per_channel.values().copied().max().unwrap_or(0),
                total_bytes: total,
            }
        })
    }
}

/// Configuration for Pareto-guided pruning: which cost vector a finished
/// candidate contributes, and an **admissible lower bound** on that vector
/// for a candidate that has not been simulated yet.
///
/// Soundness: the bound must satisfy `lower_bound(a, ctx) ≤ objectives(row)`
/// component-wise for every candidate `a`. Then a candidate whose bound is
/// already dominated by an achieved cost vector cannot itself be
/// non-dominated, so skipping it never removes a point from the Pareto front
/// *under these objectives* — the front of a pruned sweep equals the front
/// of the full sweep. Fronts over other objectives (e.g.
/// [`report_front`](crate::pareto::report_front)'s throughput axis) carry no
/// such guarantee.
#[derive(Clone)]
pub struct PruneConfig {
    objectives: Arc<ObjectiveFn>,
    lower_bound: Arc<LowerBoundFn>,
}

/// Cost vector of a finished candidate (see [`PruneConfig`]).
type ObjectiveFn = dyn Fn(&RunMetrics) -> Vec<f64> + Send + Sync;
/// Admissible cost floor of an unsimulated candidate (see [`PruneConfig`]).
type LowerBoundFn = dyn Fn(&ArchSpec, &PruneContext) -> Vec<f64> + Send + Sync;

impl fmt::Debug for PruneConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PruneConfig").finish_non_exhaustive()
    }
}

impl PruneConfig {
    /// The built-in single-objective policy: minimize simulated time.
    ///
    /// The lower bound is pure link bandwidth — the busiest channel's bytes
    /// at one data beat per interconnect clock
    /// ([`ArchSpec::min_transfer_time`]). Every real run also pays
    /// arbitration, wrapper protocol and polling, so the bound is always
    /// admissible.
    pub fn sim_time() -> Self {
        PruneConfig {
            objectives: Arc::new(|row| vec![row.sim_time.as_ps() as f64]),
            lower_bound: Arc::new(|arch, ctx| {
                vec![arch.min_transfer_time(ctx.max_channel_bytes).as_ps() as f64]
            }),
        }
    }

    /// A custom policy. The caller is responsible for admissibility of
    /// `lower_bound` (see the type-level soundness note); an inadmissible
    /// bound can prune candidates that would have been on the front.
    pub fn custom(
        objectives: impl Fn(&RunMetrics) -> Vec<f64> + Send + Sync + 'static,
        lower_bound: impl Fn(&ArchSpec, &PruneContext) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        PruneConfig {
            objectives: Arc::new(objectives),
            lower_bound: Arc::new(lower_bound),
        }
    }
}

/// Live pruning state shared by all runners of one sweep.
struct PruneState {
    cfg: PruneConfig,
    ctx: PruneContext,
    front: Mutex<ParetoSet>,
}

/// A live progress sample of a running sweep, handed to the callback armed
/// with [`Sweep::with_progress`].
///
/// Every field is a pure function of the *set of candidates completed so
/// far*: a serial sweep therefore emits a byte-deterministic progress
/// sequence run-to-run, and a parallel sweep's samples differ only in
/// which prefix of candidates they summarize (pacing and interleaving are
/// excluded from the determinism contract; the final sample always reports
/// the full sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Candidates simulated to completion so far.
    pub done: usize,
    /// Total candidates in the sweep.
    pub total: usize,
    /// Candidates skipped by Pareto pruning so far.
    pub pruned: usize,
    /// Estimated *simulated* picoseconds still to run: the mean simulated
    /// time of completed candidates times the number of remaining ones.
    /// Zero until the first candidate completes. Deliberately a simulated-
    /// time figure, not wall clock, so the hint itself stays deterministic.
    pub eta_hint_ps: u64,
}

type ProgressFn = dyn Fn(SweepProgress) + Send + Sync;

/// Debug-opaque wrapper so `Sweep` can keep deriving `Debug`.
#[derive(Clone)]
struct ProgressHook(Arc<ProgressFn>);

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressHook").finish_non_exhaustive()
    }
}

/// Shared progress counters, updated by every runner and summarized at
/// emission points (after each candidate serially; at chunk boundaries in
/// parallel).
struct ProgressState {
    done: AtomicUsize,
    pruned: AtomicUsize,
    sim_ps: AtomicU64,
    total: usize,
    cb: ProgressHook,
}

impl ProgressState {
    fn sample(&self) -> SweepProgress {
        let done = self.done.load(Ordering::Relaxed);
        let pruned = self.pruned.load(Ordering::Relaxed);
        let sim_ps = self.sim_ps.load(Ordering::Relaxed);
        let remaining = self.total.saturating_sub(done + pruned) as u64;
        let eta_hint_ps = if done == 0 {
            0
        } else {
            (sim_ps / done as u64).saturating_mul(remaining)
        };
        SweepProgress {
            done,
            total: self.total,
            pruned,
            eta_hint_ps,
        }
    }

    fn emit(&self) {
        (self.cb.0)(self.sample());
    }
}

/// Shared causal-tracing state of one sweep: the context spans attach
/// under, the sink they land in, and the wall-clock epoch host spans are
/// timed against.
struct CausalState {
    ctx: TraceCtx,
    sink: SpanSink,
    epoch: Instant,
}

impl CausalState {
    fn ns_since_epoch(&self, at: Instant) -> u64 {
        at.duration_since(self.epoch).as_nanos() as u64
    }
}

/// Runs one application across many candidate architectures.
#[derive(Debug)]
pub struct Sweep {
    app: AppSpec,
    archs: Vec<ArchSpec>,
    include_untimed: bool,
    opts: RunOptions,
    prune: Option<PruneConfig>,
    cancel: Option<CancelToken>,
    progress: Option<ProgressHook>,
    causal: Option<(TraceCtx, SpanSink)>,
}

impl Sweep {
    /// Creates a sweep over `app`.
    ///
    /// The untimed role-detection run defaults to
    /// [`Backend::Auto`](crate::mapper::Backend): direct execution when the
    /// model qualifies, transparent DE fallback otherwise. Override with
    /// [`with_options`](Self::with_options).
    pub fn new(app: AppSpec) -> Self {
        Sweep {
            app,
            archs: Vec::new(),
            include_untimed: false,
            opts: RunOptions::default().with_backend(crate::mapper::Backend::Auto),
            prune: None,
            cancel: None,
            progress: None,
            causal: None,
        }
    }

    /// Adds one candidate architecture.
    pub fn arch(mut self, a: ArchSpec) -> Self {
        self.archs.push(a);
        self
    }

    /// Adds many candidate architectures.
    pub fn archs<I: IntoIterator<Item = ArchSpec>>(mut self, it: I) -> Self {
        self.archs.extend(it);
        self
    }

    /// Also reports the untimed component-assembly run as a baseline row.
    pub fn with_untimed_baseline(mut self) -> Self {
        self.include_untimed = true;
        self
    }

    /// Enables the transaction recorder (`capacity` events per candidate);
    /// each report row then carries its run's [`TxnTrace`]
    /// (`RunMetrics::txn`).
    ///
    /// [`TxnTrace`]: shiptlm_kernel::txn::TxnTrace
    pub fn with_recorder(mut self, capacity: usize) -> Self {
        self.opts.record_txns = Some(capacity);
        self
    }

    /// Enables the time-resolved metrics registry with the given sim-time
    /// sampling window; each report row then carries its run's
    /// [`MetricsSnapshot`] (`RunMetrics::metrics`).
    ///
    /// [`MetricsSnapshot`]: shiptlm_kernel::metrics::MetricsSnapshot
    pub fn with_metrics(mut self, window: shiptlm_kernel::time::SimDur) -> Self {
        self.opts.metrics = Some(window);
        self
    }

    /// Replaces the run options wholesale (e.g. to force a specific
    /// [`Backend`](crate::mapper::Backend) or arm a port hook).
    pub fn with_options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Enables Pareto-guided pruning: candidates whose cost lower bound is
    /// already dominated by an achieved cost vector are skipped without
    /// being simulated. Skipped candidates are listed in
    /// [`Report::pruned`] instead of appearing as rows.
    ///
    /// In a serial sweep the pruned set is deterministic. In a parallel
    /// sweep it depends on candidate completion order, but every reported
    /// row is still bit-identical to its serial counterpart, every pruned
    /// candidate is provably dominated, and the Pareto front under the
    /// pruning objectives is preserved exactly (see [`PruneConfig`]).
    pub fn with_pruning(mut self, cfg: PruneConfig) -> Self {
        self.prune = Some(cfg);
        self
    }

    /// Arms cooperative cancellation: once `token` is cancelled, candidates
    /// not yet simulating are skipped and the sweep returns
    /// [`MapError::Cancelled`]. Candidates already mid-simulation finish
    /// (they are milliseconds each); their rows are discarded with the run.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms a live progress callback: `cb` fires with a [`SweepProgress`]
    /// sample after every candidate (serial sweep) or at every completed
    /// worker chunk (parallel sweep), from whichever thread finished the
    /// work. See [`SweepProgress`] for the determinism contract.
    pub fn with_progress(mut self, cb: impl Fn(SweepProgress) + Send + Sync + 'static) -> Self {
        self.progress = Some(ProgressHook(Arc::new(cb)));
        self
    }

    /// Arms request-scoped causal tracing: the sweep records role-detection
    /// (with the Auto backend probe/fallback decision), worker-pool chunk,
    /// per-candidate and pruned-candidate spans into `sink`, parented under
    /// `ctx.parent_span` within `ctx.trace_id`. When the transaction
    /// recorder is also enabled ([`with_recorder`](Self::with_recorder)),
    /// each candidate's kernel txn events are stitched in as child spans on
    /// that candidate's simulated-time track — the full client-to-kernel
    /// causality chain. Costs nothing when not armed (one `Option` check
    /// per decision point).
    pub fn with_causal(mut self, ctx: TraceCtx, sink: SpanSink) -> Self {
        self.causal = Some((ctx, sink));
        self
    }

    /// Executes the sweep serially.
    ///
    /// Role detection runs once (on the untimed model); every candidate is
    /// then mapped and simulated with identical PE source.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when role detection fails.
    pub fn run(self) -> Result<Report, MapError> {
        self.execute(WorkerPool::global(), 1)
    }

    /// Executes the sweep with up to `threads` candidates simulating
    /// concurrently on the process-wide [`WorkerPool::global`] pool.
    ///
    /// The report is identical to [`Sweep::run`] (rows in candidate order,
    /// same simulated times and metrics) — only host wall-clock differs.
    /// `threads` is clamped to at least 1; passing 1 is exactly the serial
    /// path. The calling thread always participates, so at most
    /// `threads - 1` pool workers are used (and none are spawned for a
    /// serial run).
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when role detection or any candidate mapping
    /// fails. On a candidate failure the error of the earliest failing
    /// candidate (in list order) is returned, matching the serial run;
    /// candidates queued behind the failure are cancelled, not simulated.
    pub fn run_parallel(self, threads: usize) -> Result<Report, MapError> {
        self.execute(WorkerPool::global(), threads.max(1))
    }

    /// Like [`Sweep::run_parallel`], but on an explicit pool — for callers
    /// that want worker isolation or share one pool across sweeps and
    /// [`DesignFlow`] runs themselves.
    ///
    /// # Errors
    ///
    /// As [`Sweep::run_parallel`].
    ///
    /// [`DesignFlow`]: https://docs.rs/shiptlm "shiptlm::flow::DesignFlow"
    pub fn run_on(self, pool: &WorkerPool, threads: usize) -> Result<Report, MapError> {
        self.execute(pool, threads.max(1))
    }

    fn execute(self, pool: &WorkerPool, threads: usize) -> Result<Report, MapError> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(MapError::Cancelled);
        }
        let causal = self.causal.as_ref().map(|(ctx, sink)| CausalState {
            ctx: *ctx,
            sink: sink.clone(),
            epoch: Instant::now(),
        });
        let detect_t0 = Instant::now();
        let ca = run_component_assembly_with(&self.app, &self.opts)?;
        if let Some(c) = &causal {
            // Role detection runs once per sweep; its span carries the Auto
            // backend probe/fallback decision.
            let mut span = CausalSpan::new(c.ctx, "role-detect", self.app.name(), TRACK_HOST)
                .at(
                    c.ns_since_epoch(detect_t0),
                    detect_t0.elapsed().as_nanos() as u64,
                )
                .arg("backend_requested", format!("{:?}", ca.backend.requested))
                .arg("backend_used", format!("{:?}", ca.backend.used));
            if let Some(reason) = &ca.backend.fallback {
                span = span.arg("backend_fallback", reason.clone());
            }
            c.sink.push(span);
        }
        let mut report = Report::new();
        if self.include_untimed {
            let mut row = RunMetrics::from_log(
                "untimed",
                &ca.output.log,
                ca.output.sim_time,
                None,
                ca.output.delta_cycles,
                ca.output.wall_seconds,
            );
            row.txn = ca.output.txn;
            row.metrics = ca.output.metrics;
            report.push(row);
        }
        let prune = self.prune.map(|cfg| PruneState {
            ctx: PruneContext::from_log(&ca.output.log),
            cfg,
            front: Mutex::new(ParetoSet::new()),
        });
        let total = self.archs.len();
        let cancel = self.cancel.as_ref();
        let progress = self.progress.as_ref().map(|cb| ProgressState {
            done: AtomicUsize::new(0),
            pruned: AtomicUsize::new(0),
            sim_ps: AtomicU64::new(0),
            total,
            cb: cb.clone(),
        });
        let causal_ref = causal.as_ref();
        let progress_ref = progress.as_ref();
        let outcomes = if threads <= 1 || total <= 1 {
            let mut outcomes = Vec::with_capacity(total);
            for (i, arch) in self.archs.iter().enumerate() {
                outcomes.push(run_candidate(
                    &self.app,
                    &ca.roles,
                    arch,
                    &self.opts,
                    prune.as_ref(),
                    cancel,
                    i,
                    causal_ref,
                    progress_ref,
                )?);
                if let Some(p) = progress_ref {
                    p.emit();
                }
            }
            outcomes
        } else {
            let observer = |done: crate::pool::ChunkDone| {
                if let Some(c) = causal_ref {
                    let ts = c
                        .ns_since_epoch(Instant::now())
                        .saturating_sub(done.elapsed.as_nanos() as u64);
                    c.sink.push(
                        CausalSpan::new(
                            c.ctx,
                            "chunk",
                            format!("{}..{}", done.start, done.end),
                            TRACK_HOST,
                        )
                        .at(ts, done.elapsed.as_nanos() as u64),
                    );
                }
                if let Some(p) = progress_ref {
                    p.emit();
                }
            };
            let on_chunk: Option<&(dyn Fn(crate::pool::ChunkDone) + Send + Sync)> =
                if causal.is_some() || progress.is_some() {
                    Some(&observer)
                } else {
                    None
                };
            pool.run_fallible_observed(
                threads,
                total,
                WorkerPool::chunk_for(threads, total),
                |i| {
                    run_candidate(
                        &self.app,
                        &ca.roles,
                        &self.archs[i],
                        &self.opts,
                        prune.as_ref(),
                        cancel,
                        i,
                        causal_ref,
                        progress_ref,
                    )
                },
                on_chunk,
            )?
        };
        for (arch, outcome) in self.archs.iter().zip(outcomes) {
            match outcome {
                Some(row) => report.push(row),
                None => report.note_pruned(arch.label()),
            }
        }
        Ok(report)
    }
}

/// Runs one candidate through the optional pruning gate: bound-check, then
/// map + simulate, then publish the achieved cost vector to the shared
/// archive. `Ok(None)` means the candidate was pruned.
///
/// Observability side channels, both optional and branch-free when absent:
/// `causal` records a `candidate` span (zero-duration with `pruned=true`
/// for skipped candidates) and stitches the run's txn events underneath;
/// `progress` keeps the shared done/pruned/sim-time counters current.
#[allow(clippy::too_many_arguments)]
fn run_candidate(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
    opts: &RunOptions,
    prune: Option<&PruneState>,
    cancel: Option<&CancelToken>,
    index: usize,
    causal: Option<&CausalState>,
    progress: Option<&ProgressState>,
) -> Result<Option<RunMetrics>, MapError> {
    if cancel.is_some_and(|c| c.is_cancelled()) {
        return Err(MapError::Cancelled);
    }
    if let Some(p) = prune {
        let bound = (p.cfg.lower_bound)(arch, &p.ctx);
        if lock(&p.front).is_dominated(&bound) {
            if let Some(c) = causal {
                c.sink.push(
                    CausalSpan::new(c.ctx, "candidate", arch.label(), TRACK_HOST)
                        .at(c.ns_since_epoch(Instant::now()), 0)
                        .arg("index", index.to_string())
                        .arg("pruned", "true"),
                );
            }
            if let Some(p) = progress {
                p.pruned.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(None);
        }
    }
    let t0 = Instant::now();
    let row = candidate_row(app, roles, arch, opts)?;
    if let Some(p) = prune {
        let costs = (p.cfg.objectives)(&row);
        lock(&p.front).insert(costs);
    }
    if let Some(c) = causal {
        let span = CausalSpan::new(c.ctx, "candidate", arch.label(), TRACK_HOST)
            .at(c.ns_since_epoch(t0), t0.elapsed().as_nanos() as u64)
            .arg("index", index.to_string())
            .arg("sim_time_ps", row.sim_time.as_ps().to_string());
        let child_ctx = c.ctx.child(span.span_id);
        c.sink.push(span);
        if let Some(txn) = &row.txn {
            c.sink
                .extend(spans_from_txn(txn, child_ctx, track_for_candidate(index)));
        }
    }
    if let Some(p) = progress {
        p.done.fetch_add(1, Ordering::Relaxed);
        p.sim_ps.fetch_add(row.sim_time.as_ps(), Ordering::Relaxed);
    }
    Ok(Some(row))
}

/// Maps and simulates one candidate, turning its artifacts into a report
/// row. The interconnect statistics are moved into the row, not cloned.
fn candidate_row(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
    opts: &RunOptions,
) -> Result<RunMetrics, MapError> {
    let MappedRun { output, bus } = run_mapped_with(app, roles, arch, opts)?;
    let mut row = RunMetrics::from_log(
        &arch.label(),
        &output.log,
        output.sim_time,
        Some(bus),
        output.delta_cycles,
        output.wall_seconds,
    );
    row.txn = output.txn;
    row.metrics = output.metrics;
    Ok(row)
}

/// One-call exploration: sweep `app` over `archs` on up to `threads` worker
/// threads (1 = serial). Equivalent to
/// `Sweep::new(app).archs(archs).run_parallel(threads)`.
///
/// # Errors
///
/// Returns a [`MapError`] when role detection or any candidate mapping
/// fails.
pub fn sweep<I: IntoIterator<Item = ArchSpec>>(
    app: AppSpec,
    archs: I,
    threads: usize,
) -> Result<Report, MapError> {
    Sweep::new(app).archs(archs).run_parallel(threads)
}

/// Verifies that every mapped run of a sweep stays content-equivalent to the
/// untimed reference — the refinement-correctness check of the design flow.
///
/// Role detection runs once; each candidate reuses the detected roles
/// instead of re-running the component assembly.
///
/// # Errors
///
/// Returns a string describing the first divergence or mapping failure.
pub fn verify_equivalence(app: &AppSpec, archs: &[ArchSpec]) -> Result<(), String> {
    let ca = run_component_assembly(app).map_err(|e| e.to_string())?;
    for arch in archs {
        let mapped = run_mapped(app, &ca.roles, arch).map_err(|e| e.to_string())?;
        ca.output
            .log
            .content_equivalent(&mapped.output.log)
            .map_err(|e| format!("{}: {e}", arch.label()))?;
    }
    Ok(())
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep of '{}' over {} architectures",
            self.app.name(),
            self.archs.len()
        )
    }
}
