//! Parameter sweeps over candidate architectures — the paper's "fast
//! communication architecture exploration".
//!
//! Candidate simulations are fully independent [`Simulation`] instances, so
//! a sweep can fan them out over a bounded pool of OS threads
//! ([`Sweep::run_parallel`]). Role detection still runs exactly once and is
//! shared immutably; results are collected in candidate order, so the
//! [`Report`] is identical to a serial run regardless of thread count.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use shiptlm_kernel::sim::Simulation;

use crate::app::AppSpec;
use crate::arch::ArchSpec;
use crate::mapper::{
    run_component_assembly, run_component_assembly_with, run_mapped, run_mapped_with, MapError,
    MappedRun, RoleMap, RunOptions,
};
use crate::metrics::{Report, RunMetrics};

// Compile-time guarantee that sweep workers are safely isolated: every piece
// of state a worker thread touches must be Send (and the shared inputs Sync).
// A hidden global or thread-affine handle anywhere in the kernel/ship/cam
// stack would surface here as a build failure, not a data race.
const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}
const _: () = {
    assert_send::<Simulation>();
    assert_sync::<AppSpec>();
    assert_sync::<RoleMap>();
    assert_sync::<ArchSpec>();
    assert_send::<MappedRun>();
    assert_send::<RunMetrics>();
    assert_send::<Report>();
    assert_send::<MapError>();
    assert_send::<shiptlm_kernel::txn::TxnTrace>();
    assert_send::<shiptlm_kernel::metrics::MetricsSnapshot>();
    assert_sync::<RunOptions>();
};

/// Runs one application across many candidate architectures.
#[derive(Debug)]
pub struct Sweep {
    app: AppSpec,
    archs: Vec<ArchSpec>,
    include_untimed: bool,
    opts: RunOptions,
}

impl Sweep {
    /// Creates a sweep over `app`.
    pub fn new(app: AppSpec) -> Self {
        Sweep {
            app,
            archs: Vec::new(),
            include_untimed: false,
            opts: RunOptions::default(),
        }
    }

    /// Adds one candidate architecture.
    pub fn arch(mut self, a: ArchSpec) -> Self {
        self.archs.push(a);
        self
    }

    /// Adds many candidate architectures.
    pub fn archs<I: IntoIterator<Item = ArchSpec>>(mut self, it: I) -> Self {
        self.archs.extend(it);
        self
    }

    /// Also reports the untimed component-assembly run as a baseline row.
    pub fn with_untimed_baseline(mut self) -> Self {
        self.include_untimed = true;
        self
    }

    /// Enables the transaction recorder (`capacity` events per candidate);
    /// each report row then carries its run's [`TxnTrace`]
    /// (`RunMetrics::txn`).
    ///
    /// [`TxnTrace`]: shiptlm_kernel::txn::TxnTrace
    pub fn with_recorder(mut self, capacity: usize) -> Self {
        self.opts.record_txns = Some(capacity);
        self
    }

    /// Enables the time-resolved metrics registry with the given sim-time
    /// sampling window; each report row then carries its run's
    /// [`MetricsSnapshot`] (`RunMetrics::metrics`).
    ///
    /// [`MetricsSnapshot`]: shiptlm_kernel::metrics::MetricsSnapshot
    pub fn with_metrics(mut self, window: shiptlm_kernel::time::SimDur) -> Self {
        self.opts.metrics = Some(window);
        self
    }

    /// Executes the sweep serially.
    ///
    /// Role detection runs once (on the untimed model); every candidate is
    /// then mapped and simulated with identical PE source.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when role detection fails.
    pub fn run(self) -> Result<Report, MapError> {
        self.execute(1)
    }

    /// Executes the sweep with up to `threads` candidates simulating
    /// concurrently, each on its own OS thread.
    ///
    /// The report is identical to [`Sweep::run`] (rows in candidate order,
    /// same simulated times and metrics) — only host wall-clock differs.
    /// `threads` is clamped to at least 1; passing 1 is exactly the serial
    /// path.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when role detection or any candidate mapping
    /// fails. On a candidate failure the error of the earliest failing
    /// candidate (in list order) is returned, matching the serial run.
    pub fn run_parallel(self, threads: usize) -> Result<Report, MapError> {
        self.execute(threads.max(1))
    }

    fn execute(self, threads: usize) -> Result<Report, MapError> {
        let ca = run_component_assembly_with(&self.app, &self.opts)?;
        let mut report = Report::new();
        if self.include_untimed {
            let mut row = RunMetrics::from_log(
                "untimed",
                &ca.output.log,
                ca.output.sim_time,
                None,
                ca.output.delta_cycles,
                ca.output.wall_seconds,
            );
            row.txn = ca.output.txn;
            row.metrics = ca.output.metrics;
            report.push(row);
        }
        let rows = if threads <= 1 || self.archs.len() <= 1 {
            let mut rows = Vec::with_capacity(self.archs.len());
            for arch in &self.archs {
                rows.push(candidate_row(&self.app, &ca.roles, arch, &self.opts)?);
            }
            rows
        } else {
            candidate_rows_parallel(&self.app, &ca.roles, &self.archs, threads, &self.opts)?
        };
        for row in rows {
            report.push(row);
        }
        Ok(report)
    }
}

/// Maps and simulates one candidate, turning its artifacts into a report
/// row. The interconnect statistics are moved into the row, not cloned.
fn candidate_row(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
    opts: &RunOptions,
) -> Result<RunMetrics, MapError> {
    let MappedRun { output, bus } = run_mapped_with(app, roles, arch, opts)?;
    let mut row = RunMetrics::from_log(
        &arch.label(),
        &output.log,
        output.sim_time,
        Some(bus),
        output.delta_cycles,
        output.wall_seconds,
    );
    row.txn = output.txn;
    row.metrics = output.metrics;
    Ok(row)
}

/// Work-stealing-free bounded pool: workers pull candidate indices from a
/// shared counter and write results into per-candidate slots, so assembly
/// order (and therefore the report) is deterministic.
fn candidate_rows_parallel(
    app: &AppSpec,
    roles: &RoleMap,
    archs: &[ArchSpec],
    threads: usize,
    opts: &RunOptions,
) -> Result<Vec<RunMetrics>, MapError> {
    let slots: Vec<Mutex<Option<Result<RunMetrics, MapError>>>> =
        archs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(archs.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= archs.len() {
                    break;
                }
                let row = candidate_row(app, roles, &archs[i], opts);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(row);
            });
        }
    });
    let mut rows = Vec::with_capacity(archs.len());
    for slot in slots {
        let row = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every candidate slot is filled once the scope joins");
        rows.push(row?);
    }
    Ok(rows)
}

/// One-call exploration: sweep `app` over `archs` on up to `threads` worker
/// threads (1 = serial). Equivalent to
/// `Sweep::new(app).archs(archs).run_parallel(threads)`.
///
/// # Errors
///
/// Returns a [`MapError`] when role detection or any candidate mapping
/// fails.
pub fn sweep<I: IntoIterator<Item = ArchSpec>>(
    app: AppSpec,
    archs: I,
    threads: usize,
) -> Result<Report, MapError> {
    Sweep::new(app).archs(archs).run_parallel(threads)
}

/// Verifies that every mapped run of a sweep stays content-equivalent to the
/// untimed reference — the refinement-correctness check of the design flow.
///
/// Role detection runs once; each candidate reuses the detected roles
/// instead of re-running the component assembly.
///
/// # Errors
///
/// Returns a string describing the first divergence or mapping failure.
pub fn verify_equivalence(app: &AppSpec, archs: &[ArchSpec]) -> Result<(), String> {
    let ca = run_component_assembly(app).map_err(|e| e.to_string())?;
    for arch in archs {
        let mapped = run_mapped(app, &ca.roles, arch).map_err(|e| e.to_string())?;
        ca.output
            .log
            .content_equivalent(&mapped.output.log)
            .map_err(|e| format!("{}: {e}", arch.label()))?;
    }
    Ok(())
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep of '{}' over {} architectures",
            self.app.name(),
            self.archs.len()
        )
    }
}
