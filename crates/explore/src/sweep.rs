//! Parameter sweeps over candidate architectures — the paper's "fast
//! communication architecture exploration".

use std::fmt;

use crate::app::AppSpec;
use crate::arch::ArchSpec;
use crate::mapper::{explore_one, run_component_assembly, MapError};
use crate::metrics::{Report, RunMetrics};

/// Runs one application across many candidate architectures.
#[derive(Debug)]
pub struct Sweep {
    app: AppSpec,
    archs: Vec<ArchSpec>,
    include_untimed: bool,
}

impl Sweep {
    /// Creates a sweep over `app`.
    pub fn new(app: AppSpec) -> Self {
        Sweep {
            app,
            archs: Vec::new(),
            include_untimed: false,
        }
    }

    /// Adds one candidate architecture.
    pub fn arch(mut self, a: ArchSpec) -> Self {
        self.archs.push(a);
        self
    }

    /// Adds many candidate architectures.
    pub fn archs<I: IntoIterator<Item = ArchSpec>>(mut self, it: I) -> Self {
        self.archs.extend(it);
        self
    }

    /// Also reports the untimed component-assembly run as a baseline row.
    pub fn with_untimed_baseline(mut self) -> Self {
        self.include_untimed = true;
        self
    }

    /// Executes the sweep.
    ///
    /// Role detection runs once (on the untimed model); every candidate is
    /// then mapped and simulated with identical PE source.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when role detection fails.
    pub fn run(self) -> Result<Report, MapError> {
        let ca = run_component_assembly(&self.app)?;
        let mut report = Report::new();
        if self.include_untimed {
            report.push(RunMetrics::from_log(
                "untimed",
                &ca.output.log,
                ca.output.sim_time,
                None,
                ca.output.delta_cycles,
                ca.output.wall_seconds,
            ));
        }
        for arch in &self.archs {
            let mapped = crate::mapper::run_mapped(&self.app, &ca.roles, arch)?;
            report.push(RunMetrics::from_log(
                &arch.label(),
                &mapped.output.log,
                mapped.output.sim_time,
                Some(mapped.bus.clone()),
                mapped.output.delta_cycles,
                mapped.output.wall_seconds,
            ));
        }
        Ok(report)
    }
}

/// Verifies that every mapped run of a sweep stays content-equivalent to the
/// untimed reference — the refinement-correctness check of the design flow.
///
/// # Errors
///
/// Returns a string describing the first divergence or mapping failure.
pub fn verify_equivalence(app: &AppSpec, archs: &[ArchSpec]) -> Result<(), String> {
    let ca = run_component_assembly(app).map_err(|e| e.to_string())?;
    for arch in archs {
        let (_, mapped) = explore_one(app, arch).map_err(|e| e.to_string())?;
        ca.output
            .log
            .content_equivalent(&mapped.output.log)
            .map_err(|e| format!("{}: {e}", arch.label()))?;
    }
    Ok(())
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep of '{}' over {} architectures",
            self.app.name(),
            self.archs.len()
        )
    }
}
