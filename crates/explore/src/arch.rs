//! Target communication-architecture specifications.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use shiptlm_cam::arb::ArbPolicy;
use shiptlm_cam::bus::{BusConfig, BusStats, CcatbBus};
use shiptlm_cam::crossbar::{Crossbar, CrossbarConfig};
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

/// Which interconnect topology to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// CoreConnect PLB-like shared bus.
    Plb,
    /// CoreConnect OPB-like peripheral bus.
    Opb,
    /// Full crossbar.
    Crossbar,
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BusKind::Plb => "plb",
            BusKind::Opb => "opb",
            BusKind::Crossbar => "xbar",
        })
    }
}

/// One candidate architecture configuration for exploration.
#[derive(Debug, Clone)]
pub struct ArchSpec {
    /// Topology.
    pub bus: BusKind,
    /// Arbitration policy (per output for the crossbar).
    pub arb: ArbPolicy,
    /// Interconnect clock period; `None` keeps the preset.
    pub clock: Option<SimDur>,
    /// Wrapper burst size in bytes.
    pub burst_bytes: usize,
    /// Mailbox depth per channel adapter.
    pub rx_capacity: usize,
    /// Master-side status polling interval.
    pub poll_interval: SimDur,
}

impl ArchSpec {
    /// A PLB architecture with default wrapper settings.
    pub fn plb() -> Self {
        ArchSpec {
            bus: BusKind::Plb,
            arb: ArbPolicy::FixedPriority,
            clock: None,
            burst_bytes: 64,
            rx_capacity: 4,
            poll_interval: SimDur::ns(100),
        }
    }

    /// An OPB architecture with default wrapper settings.
    pub fn opb() -> Self {
        ArchSpec {
            bus: BusKind::Opb,
            ..ArchSpec::plb()
        }
    }

    /// A crossbar architecture with default wrapper settings.
    pub fn crossbar() -> Self {
        ArchSpec {
            bus: BusKind::Crossbar,
            arb: ArbPolicy::RoundRobin,
            ..ArchSpec::plb()
        }
    }

    /// Replaces the arbitration policy.
    pub fn with_arb(mut self, arb: ArbPolicy) -> Self {
        self.arb = arb;
        self
    }

    /// Replaces the wrapper burst size.
    pub fn with_burst(mut self, burst_bytes: usize) -> Self {
        self.burst_bytes = burst_bytes;
        self
    }

    /// A short label for report rows, e.g. `plb/priority/b64`.
    pub fn label(&self) -> String {
        format!("{}/{}/b{}", self.bus, self.arb.label(), self.burst_bytes)
    }
}

/// A built interconnect, uniform over topology.
#[derive(Clone)]
pub enum Interconnect {
    /// A shared CCATB bus.
    Bus(Arc<CcatbBus>),
    /// A crossbar switch.
    Crossbar(Arc<Crossbar>),
}

impl Interconnect {
    /// A bus-master port for `id`.
    pub fn master_port(&self, id: MasterId) -> OcpMasterPort {
        match self {
            Interconnect::Bus(b) => b.master_port(id),
            Interconnect::Crossbar(x) => x.master_port(id),
        }
    }

    /// Accumulated interconnect statistics.
    pub fn stats(&self) -> BusStats {
        match self {
            Interconnect::Bus(b) => b.stats(),
            Interconnect::Crossbar(x) => x.stats(),
        }
    }

    /// The interconnect as a transaction target (for accessors/bridges).
    pub fn as_target(&self) -> Arc<dyn OcpTarget> {
        match self {
            Interconnect::Bus(b) => Arc::clone(b) as Arc<dyn OcpTarget>,
            Interconnect::Crossbar(x) => Arc::clone(x) as Arc<dyn OcpTarget>,
        }
    }

    /// The interconnect clock period (for pin-level accessors).
    pub fn clock_period(&self) -> SimDur {
        match self {
            Interconnect::Bus(b) => b.config().clock,
            Interconnect::Crossbar(x) => x.config().clock,
        }
    }
}

impl fmt::Debug for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interconnect::Bus(b) => write!(f, "Interconnect::Bus({})", b.config().name),
            Interconnect::Crossbar(x) => {
                write!(f, "Interconnect::Crossbar({})", x.config().name)
            }
        }
    }
}

/// Builds the interconnect of `spec`, mapping each `(range, target)` pair as
/// a slave.
pub fn build_interconnect(
    sim: &SimHandle,
    spec: &ArchSpec,
    slaves: Vec<(Range<u64>, Arc<dyn OcpTarget>)>,
) -> Interconnect {
    match spec.bus {
        BusKind::Plb | BusKind::Opb => {
            let mut cfg = match spec.bus {
                BusKind::Plb => BusConfig::plb("plb"),
                BusKind::Opb => BusConfig::opb("opb"),
                BusKind::Crossbar => unreachable!(),
            };
            cfg = cfg.with_arb(spec.arb.clone());
            if let Some(c) = spec.clock {
                cfg = cfg.with_clock(c);
            }
            let mut bus = CcatbBus::new(sim, cfg);
            for (range, target) in slaves {
                bus.map_slave(range, target, true);
            }
            Interconnect::Bus(Arc::new(bus))
        }
        BusKind::Crossbar => {
            let mut cfg = CrossbarConfig::default_64bit("xbar");
            cfg.arb = spec.arb.clone();
            if let Some(c) = spec.clock {
                cfg.clock = c;
            }
            let mut xbar = Crossbar::new(sim, cfg);
            for (range, target) in slaves {
                xbar.map_slave(range, target, true);
            }
            Interconnect::Crossbar(Arc::new(xbar))
        }
    }
}
