//! Target communication-architecture specifications.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use shiptlm_cam::ahb::{AhbBus, AhbConfig};
use shiptlm_cam::arb::ArbPolicy;
use shiptlm_cam::bus::{BusConfig, BusStats, CcatbBus};
use shiptlm_cam::crossbar::{Crossbar, CrossbarConfig};
use shiptlm_cam::noc::{MeshNoc, NocConfig};
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;
use shiptlm_ocp::tl::{MasterId, OcpMasterPort, OcpTarget};

use crate::mapper::MapError;

/// Which interconnect topology to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// CoreConnect PLB-like shared bus.
    Plb,
    /// CoreConnect OPB-like peripheral bus.
    Opb,
    /// Full crossbar.
    Crossbar,
    /// AMBA AHB-like shared bus with SPLIT/RETRY arbitration.
    Ahb,
    /// 2D-mesh NoC with XY routing.
    Noc {
        /// Mesh width in nodes.
        cols: u8,
        /// Mesh height in nodes.
        rows: u8,
    },
}

impl BusKind {
    /// `true` for topologies where the split-capable-slaves axis
    /// ([`ArchSpec::split_slaves`]) changes the built interconnect.
    pub fn supports_split(self) -> bool {
        matches!(self, BusKind::Ahb)
    }
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Plb => f.write_str("plb"),
            BusKind::Opb => f.write_str("opb"),
            BusKind::Crossbar => f.write_str("xbar"),
            BusKind::Ahb => f.write_str("ahb"),
            BusKind::Noc { cols, rows } => write!(f, "noc{cols}x{rows}"),
        }
    }
}

/// One candidate architecture configuration for exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSpec {
    /// Topology.
    pub bus: BusKind,
    /// Arbitration policy (per output for the crossbar).
    pub arb: ArbPolicy,
    /// Interconnect clock period; `None` keeps the preset.
    pub clock: Option<SimDur>,
    /// Wrapper burst size in bytes.
    pub burst_bytes: usize,
    /// Mailbox depth per channel adapter.
    pub rx_capacity: usize,
    /// Master-side status polling interval.
    pub poll_interval: SimDur,
    /// Treat slaves as SPLIT-capable (only meaningful for
    /// [`BusKind::Ahb`]: each transfer releases the bus during the slave
    /// access and is re-granted for the data phase).
    pub split_slaves: bool,
}

impl ArchSpec {
    /// A PLB architecture with default wrapper settings.
    pub fn plb() -> Self {
        ArchSpec {
            bus: BusKind::Plb,
            arb: ArbPolicy::FixedPriority,
            clock: None,
            burst_bytes: 64,
            rx_capacity: 4,
            poll_interval: SimDur::ns(100),
            split_slaves: false,
        }
    }

    /// An OPB architecture with default wrapper settings.
    pub fn opb() -> Self {
        ArchSpec {
            bus: BusKind::Opb,
            ..ArchSpec::plb()
        }
    }

    /// A crossbar architecture with default wrapper settings.
    pub fn crossbar() -> Self {
        ArchSpec {
            bus: BusKind::Crossbar,
            arb: ArbPolicy::RoundRobin,
            ..ArchSpec::plb()
        }
    }

    /// An AHB architecture with default wrapper settings (SPLIT off; enable
    /// with [`with_split`](Self::with_split)).
    pub fn ahb() -> Self {
        ArchSpec {
            bus: BusKind::Ahb,
            ..ArchSpec::plb()
        }
    }

    /// A `cols × rows` mesh-NoC architecture with default wrapper settings.
    pub fn noc(cols: u8, rows: u8) -> Self {
        ArchSpec {
            bus: BusKind::Noc { cols, rows },
            arb: ArbPolicy::RoundRobin,
            ..ArchSpec::plb()
        }
    }

    /// Replaces the arbitration policy.
    pub fn with_arb(mut self, arb: ArbPolicy) -> Self {
        self.arb = arb;
        self
    }

    /// Replaces the wrapper burst size.
    pub fn with_burst(mut self, burst_bytes: usize) -> Self {
        self.burst_bytes = burst_bytes;
        self
    }

    /// Replaces the interconnect clock period (the preset stays when unset).
    pub fn with_clock(mut self, clock: SimDur) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Replaces the per-channel mailbox depth.
    pub fn with_rx_capacity(mut self, rx_capacity: usize) -> Self {
        self.rx_capacity = rx_capacity;
        self
    }

    /// Replaces the master-side status polling interval.
    pub fn with_poll(mut self, poll_interval: SimDur) -> Self {
        self.poll_interval = poll_interval;
        self
    }

    /// Marks slaves as SPLIT-capable (meaningful for [`BusKind::Ahb`]).
    pub fn with_split(mut self, split_slaves: bool) -> Self {
        self.split_slaves = split_slaves;
        self
    }

    /// A short label for report rows, e.g. `plb/priority/b64`. Non-default
    /// clock, mailbox depth and polling interval are appended (e.g.
    /// `plb/priority/b64/c20ns/rx8/p400ns`) so every point of a large design
    /// grid gets a distinct row label.
    pub fn label(&self) -> String {
        let mut label = format!("{}/{}/b{}", self.bus, self.arb.label(), self.burst_bytes);
        if let Some(clock) = self.clock {
            label.push_str(&format!("/c{clock}"));
        }
        if self.rx_capacity != 4 {
            label.push_str(&format!("/rx{}", self.rx_capacity));
        }
        if self.poll_interval != SimDur::ns(100) {
            label.push_str(&format!("/p{}", self.poll_interval));
        }
        if self.split_slaves {
            label.push_str("/split");
        }
        label
    }

    /// The interconnect clock period this spec elaborates to: the explicit
    /// [`clock`](Self::clock) override, or the topology preset
    /// ([`BusConfig::plb`]/[`BusConfig::opb`]/[`CrossbarConfig::default_64bit`]).
    pub fn effective_clock(&self) -> SimDur {
        if let Some(clock) = self.clock {
            return clock;
        }
        match self.bus {
            BusKind::Plb => BusConfig::plb("probe").clock,
            BusKind::Opb => BusConfig::opb("probe").clock,
            BusKind::Crossbar => CrossbarConfig::default_64bit("probe").clock,
            BusKind::Ahb => AhbConfig::ahb("probe").clock,
            BusKind::Noc { .. } => NocConfig::mesh("probe", 1, 1).clock,
        }
    }

    /// The data-path width in bytes this spec elaborates to (from the same
    /// presets as [`effective_clock`](Self::effective_clock)).
    pub fn link_width_bytes(&self) -> usize {
        match self.bus {
            BusKind::Plb => BusConfig::plb("probe").width_bytes,
            BusKind::Opb => BusConfig::opb("probe").width_bytes,
            BusKind::Crossbar => CrossbarConfig::default_64bit("probe").width_bytes,
            BusKind::Ahb => AhbConfig::ahb("probe").width_bytes,
            BusKind::Noc { .. } => NocConfig::mesh("probe", 1, 1).flit_bytes,
        }
    }

    /// A **lower bound** on the simulated time any run must spend moving
    /// `bytes` across one link of this architecture: `ceil(bytes / width)`
    /// data beats at one interconnect clock each. Real runs are strictly
    /// slower (arbitration, wrapper protocol, polling — and, on the new
    /// families, AHB split/re-grant latency and NoC head-flit + per-hop
    /// router cycles), which is exactly what makes this bound safe for
    /// Pareto-guided pruning — a candidate whose *floor* is already beaten
    /// cannot win.
    pub fn min_transfer_time(&self, bytes: u64) -> SimDur {
        let width = self.link_width_bytes().max(1) as u64;
        let beats = bytes.div_ceil(width);
        self.effective_clock().saturating_mul(beats)
    }
}

/// A full-factorial design grid over [`ArchSpec`] axes — the generator that
/// scales exploration from a handful of hand-picked candidates to the
/// 1k–10k-point spaces Pareto-guided pruning is built for.
///
/// Axis order in [`generate`](ArchGrid::generate) is deterministic
/// (bus → split → arbitration → clock → burst → mailbox depth →
/// poll interval), so a grid is a stable, reproducible candidate list.
#[derive(Debug, Clone)]
pub struct ArchGrid {
    /// Interconnect topologies.
    pub buses: Vec<BusKind>,
    /// Arbitration policies.
    pub arbs: Vec<ArbPolicy>,
    /// Clock periods; `None` keeps the topology preset.
    pub clocks: Vec<Option<SimDur>>,
    /// Wrapper burst sizes in bytes.
    pub bursts: Vec<usize>,
    /// Mailbox depths per channel adapter.
    pub rx_capacities: Vec<usize>,
    /// Master-side polling intervals.
    pub polls: Vec<SimDur>,
    /// Split-capable-slave settings; only multiplies the grid for
    /// topologies where it matters ([`BusKind::supports_split`]), so
    /// `vec![false, true]` does not duplicate PLB/NoC labels.
    pub splits: Vec<bool>,
}

impl ArchGrid {
    /// The default exploration grid: 3 topologies × 3 arbitration policies
    /// × 4 clock ratios × 6 burst sizes × 3 mailbox depths × 2 polling
    /// intervals = 1296 candidates.
    pub fn exploration_default() -> Self {
        ArchGrid {
            buses: vec![BusKind::Plb, BusKind::Opb, BusKind::Crossbar],
            arbs: vec![
                ArbPolicy::FixedPriority,
                ArbPolicy::RoundRobin,
                ArbPolicy::Tdma {
                    slot: SimDur::us(2),
                    slots: 4,
                },
            ],
            clocks: vec![
                None,
                Some(SimDur::ns(5)),
                Some(SimDur::ns(20)),
                Some(SimDur::ns(40)),
            ],
            bursts: vec![8, 16, 32, 64, 128, 256],
            rx_capacities: vec![2, 4, 8],
            polls: vec![SimDur::ns(100), SimDur::ns(400)],
            splits: vec![false],
        }
    }

    /// The full interconnect-family grid: the [`exploration_default`]
    /// (ArchGrid::exploration_default) axes over all five topology families
    /// — PLB, OPB, crossbar, AHB (with and without SPLIT-capable slaves)
    /// and 4×4 / 8×8 meshes. 7 topology points × 3 arbitration × 4 clocks
    /// × 6 bursts × 3 depths × 2 polls = 3024 candidates.
    pub fn interconnect_families() -> Self {
        ArchGrid {
            buses: vec![
                BusKind::Plb,
                BusKind::Opb,
                BusKind::Crossbar,
                BusKind::Ahb,
                BusKind::Noc { cols: 4, rows: 4 },
                BusKind::Noc { cols: 8, rows: 8 },
            ],
            splits: vec![false, true],
            ..ArchGrid::exploration_default()
        }
    }

    /// The split settings that actually apply to `bus` (a single `false`
    /// for topologies without SPLIT support).
    fn splits_for(&self, bus: BusKind) -> &[bool] {
        if bus.supports_split() && !self.splits.is_empty() {
            &self.splits
        } else {
            &[false]
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        let per_bus: usize = self
            .buses
            .iter()
            .map(|&bus| self.splits_for(bus).len())
            .sum();
        per_bus
            * self.arbs.len()
            * self.clocks.len()
            * self.bursts.len()
            * self.rx_capacities.len()
            * self.polls.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every grid point, in deterministic axis order.
    pub fn generate(&self) -> Vec<ArchSpec> {
        let mut out = Vec::with_capacity(self.len());
        for &bus in &self.buses {
            for &split in self.splits_for(bus) {
                for arb in &self.arbs {
                    for clock in &self.clocks {
                        for &burst in &self.bursts {
                            for &rx in &self.rx_capacities {
                                for &poll in &self.polls {
                                    out.push(ArchSpec {
                                        bus,
                                        arb: arb.clone(),
                                        clock: *clock,
                                        burst_bytes: burst,
                                        rx_capacity: rx,
                                        poll_interval: poll,
                                        split_slaves: split,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The first `n` grid points (deterministic prefix of
    /// [`generate`](ArchGrid::generate)) — handy for sizing benches and
    /// tests to an exact candidate count.
    pub fn generate_n(&self, n: usize) -> Vec<ArchSpec> {
        let mut v = self.generate();
        v.truncate(n);
        v
    }
}

/// A built interconnect, uniform over topology.
#[derive(Clone)]
pub enum Interconnect {
    /// A shared CCATB bus.
    Bus(Arc<CcatbBus>),
    /// A crossbar switch.
    Crossbar(Arc<Crossbar>),
    /// An AHB-style SPLIT/RETRY bus.
    Ahb(Arc<AhbBus>),
    /// A 2D-mesh NoC.
    Noc(Arc<MeshNoc>),
}

impl Interconnect {
    /// A bus-master port for `id`.
    pub fn master_port(&self, id: MasterId) -> OcpMasterPort {
        match self {
            Interconnect::Bus(b) => b.master_port(id),
            Interconnect::Crossbar(x) => x.master_port(id),
            Interconnect::Ahb(a) => a.master_port(id),
            Interconnect::Noc(n) => n.master_port(id),
        }
    }

    /// Accumulated interconnect statistics.
    pub fn stats(&self) -> BusStats {
        match self {
            Interconnect::Bus(b) => b.stats(),
            Interconnect::Crossbar(x) => x.stats(),
            Interconnect::Ahb(a) => a.stats(),
            Interconnect::Noc(n) => n.stats(),
        }
    }

    /// The interconnect as a transaction target (for accessors/bridges).
    pub fn as_target(&self) -> Arc<dyn OcpTarget> {
        match self {
            Interconnect::Bus(b) => Arc::clone(b) as Arc<dyn OcpTarget>,
            Interconnect::Crossbar(x) => Arc::clone(x) as Arc<dyn OcpTarget>,
            Interconnect::Ahb(a) => Arc::clone(a) as Arc<dyn OcpTarget>,
            Interconnect::Noc(n) => Arc::clone(n) as Arc<dyn OcpTarget>,
        }
    }

    /// The interconnect clock period (for pin-level accessors).
    pub fn clock_period(&self) -> SimDur {
        match self {
            Interconnect::Bus(b) => b.config().clock,
            Interconnect::Crossbar(x) => x.config().clock,
            Interconnect::Ahb(a) => a.config().clock,
            Interconnect::Noc(n) => n.config().clock,
        }
    }
}

impl fmt::Debug for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interconnect::Bus(b) => write!(f, "Interconnect::Bus({})", b.config().name),
            Interconnect::Crossbar(x) => {
                write!(f, "Interconnect::Crossbar({})", x.config().name)
            }
            Interconnect::Ahb(a) => write!(f, "Interconnect::Ahb({})", a.config().name),
            Interconnect::Noc(n) => write!(f, "Interconnect::Noc({})", n.config().name),
        }
    }
}

/// Builds the interconnect of `spec`, mapping each `(range, target)` pair as
/// a slave.
///
/// A spec that cannot be elaborated (e.g. a zero-sized or oversized NoC
/// mesh drawn by a random generator) returns [`MapError::Arch`] so callers
/// — in particular the conformance harness — classify it instead of
/// aborting.
pub fn build_interconnect(
    sim: &SimHandle,
    spec: &ArchSpec,
    slaves: Vec<(Range<u64>, Arc<dyn OcpTarget>)>,
) -> Result<Interconnect, MapError> {
    Ok(match spec.bus {
        BusKind::Plb | BusKind::Opb => {
            let mut cfg = if spec.bus == BusKind::Plb {
                BusConfig::plb("plb")
            } else {
                BusConfig::opb("opb")
            };
            cfg = cfg.with_arb(spec.arb.clone());
            if let Some(c) = spec.clock {
                cfg = cfg.with_clock(c);
            }
            let mut bus = CcatbBus::new(sim, cfg);
            for (range, target) in slaves {
                bus.map_slave(range, target, true);
            }
            Interconnect::Bus(Arc::new(bus))
        }
        BusKind::Crossbar => {
            let mut cfg = CrossbarConfig::default_64bit("xbar");
            cfg.arb = spec.arb.clone();
            if let Some(c) = spec.clock {
                cfg.clock = c;
            }
            let mut xbar = Crossbar::new(sim, cfg);
            for (range, target) in slaves {
                xbar.map_slave(range, target, true);
            }
            Interconnect::Crossbar(Arc::new(xbar))
        }
        BusKind::Ahb => {
            let mut cfg = AhbConfig::ahb("ahb")
                .with_arb(spec.arb.clone())
                .with_split(spec.split_slaves);
            if let Some(c) = spec.clock {
                cfg = cfg.with_clock(c);
            }
            let mut bus = AhbBus::new(sim, cfg);
            for (range, target) in slaves {
                bus.map_slave(range, target, true);
            }
            Interconnect::Ahb(Arc::new(bus))
        }
        BusKind::Noc { cols, rows } => {
            if cols == 0 || rows == 0 {
                return Err(MapError::Arch {
                    detail: format!("NoC mesh dimensions must be non-zero, got {cols}x{rows}"),
                });
            }
            let nodes = cols as usize * rows as usize;
            if nodes > 1024 {
                return Err(MapError::Arch {
                    detail: format!(
                        "NoC mesh {cols}x{rows} ({nodes} nodes) exceeds the 1024-node \
                         elaboration cap"
                    ),
                });
            }
            let mut cfg =
                NocConfig::mesh("noc", cols as usize, rows as usize).with_arb(spec.arb.clone());
            if let Some(c) = spec.clock {
                cfg = cfg.with_clock(c);
            }
            let mut noc = MeshNoc::new(sim, cfg);
            for (range, target) in slaves {
                noc.map_slave(range, target, true);
            }
            Interconnect::Noc(Arc::new(noc))
        }
    })
}
