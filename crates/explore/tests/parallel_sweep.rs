//! Parallel-vs-serial sweep determinism and worker-thread liveness.
//!
//! A sweep fans candidate simulations out over OS threads; the report must
//! not depend on the thread count, and the kernel's liveness machinery
//! (deadlock diagnosis, SHIP call timeouts) must keep working when the
//! simulation lives on a worker thread instead of the main one.

use shiptlm_explore::prelude::*;
use shiptlm_kernel::prelude::*;
use shiptlm_kernel::time::SimDur;
use shiptlm_ship::prelude::*;

fn the_app() -> AppSpec {
    workload::parallel_streams(3, 12, 256)
}

fn candidates() -> Vec<ArchSpec> {
    vec![
        ArchSpec::plb(),
        ArchSpec::plb().with_burst(16),
        ArchSpec::plb().with_burst(128),
        ArchSpec::opb(),
        ArchSpec::opb().with_burst(16),
        ArchSpec::crossbar(),
        ArchSpec::crossbar().with_burst(16),
        ArchSpec::crossbar().with_burst(128),
    ]
}

/// Deterministic fingerprint of a report row (everything except host
/// wall-clock, which legitimately varies run to run).
fn fingerprint(report: &Report) -> Vec<(String, String, u64, u64, u64)> {
    report
        .rows()
        .iter()
        .map(|r| {
            (
                r.label.clone(),
                r.sim_time.to_string(),
                r.messages,
                r.bytes,
                r.delta_cycles,
            )
        })
        .collect()
}

#[test]
fn parallel_report_is_identical_to_serial() {
    let serial = Sweep::new(the_app())
        .archs(candidates())
        .with_untimed_baseline()
        .run()
        .unwrap();
    for threads in [1, 2, 8] {
        let parallel = Sweep::new(the_app())
            .archs(candidates())
            .with_untimed_baseline()
            .run_parallel(threads)
            .unwrap();
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "report rows diverge at {threads} worker threads"
        );
        // The rendered table excludes wall-clock, so it must be
        // byte-identical too.
        assert_eq!(
            serial.to_string(),
            parallel.to_string(),
            "rendered report diverges at {threads} worker threads"
        );
    }
}

#[test]
fn sweep_convenience_matches_builder() {
    let a = sweep(the_app(), candidates(), 4).unwrap();
    let b = Sweep::new(the_app()).archs(candidates()).run().unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_sweep_propagates_earliest_error() {
    // An empty role map entry: hand the sweep an app whose channel carries
    // no traffic, so role detection fails identically in serial and
    // parallel.
    let mut app = AppSpec::new("idle");
    app.add_pe("a", || Box::new(|_ctx, _ports| {}));
    app.add_pe("b", || Box::new(|_ctx, _ports| {}));
    app.connect("quiet", "a", "b");
    let serial = Sweep::new(app.clone()).archs(candidates()).run();
    let parallel = Sweep::new(app).archs(candidates()).run_parallel(4);
    assert_eq!(serial.unwrap_err(), parallel.unwrap_err());
}

#[test]
fn panicking_candidate_does_not_poison_the_global_pool() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    // The producer panics on every elaboration after the first, so the
    // untimed role-detection run (on the calling thread) succeeds and the
    // mapped candidates (fanned out over `WorkerPool::global()`) panic
    // mid-simulation on worker threads.
    let elaborations = Arc::new(AtomicUsize::new(0));
    let mut app = AppSpec::new("panicky");
    {
        let elaborations = Arc::clone(&elaborations);
        app.add_pe("tx", move || {
            let nth = elaborations.fetch_add(1, Ordering::SeqCst);
            Box::new(move |ctx, ports: Vec<ShipPort>| {
                for i in 0..4u32 {
                    if nth > 0 && i == 2 {
                        panic!("injected candidate panic");
                    }
                    ports[0].send(ctx, &i).unwrap();
                }
            })
        });
    }
    app.add_pe("rx", || {
        Box::new(|ctx, ports: Vec<ShipPort>| {
            for _ in 0..4 {
                let _ = ports[0].recv::<u32>(ctx);
            }
        })
    });
    app.connect("c", "tx", "rx");

    let caught = catch_unwind(AssertUnwindSafe(|| {
        // Force the DE backend so the role-detection run elaborates exactly
        // once (Auto could re-elaborate and hit the panic on this thread).
        Sweep::new(app)
            .with_options(RunOptions::default())
            .archs(candidates())
            .run_parallel(4)
    }));
    assert!(caught.is_err(), "candidate panic must reach the caller");

    // The global pool (same parked workers) must run the next sweep clean.
    let report = Sweep::new(the_app())
        .archs(candidates())
        .run_parallel(4)
        .unwrap();
    assert_eq!(report.rows().len(), candidates().len());
}

#[test]
fn cancelled_sweep_returns_cancelled_not_rows() {
    let token = CancelToken::new();
    token.cancel();
    let err = Sweep::new(the_app())
        .archs(candidates())
        .with_cancel(token.clone())
        .run_parallel(2)
        .unwrap_err();
    assert_eq!(err, MapError::Cancelled);
    assert!(token.is_cancelled());

    // An un-cancelled token leaves the sweep untouched.
    let report = Sweep::new(the_app())
        .archs(candidates())
        .with_cancel(CancelToken::new())
        .run_parallel(2)
        .unwrap();
    assert_eq!(report.rows().len(), candidates().len());
}

#[test]
fn deadlock_diagnosis_works_inside_worker_threads() {
    let reports: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                s.spawn(move || {
                    let sim = Simulation::new();
                    let ch =
                        ShipChannel::new(&sim.handle(), &format!("dead{i}"), ShipConfig::default());
                    let (pa, pb) = ch.ports("left", "right");
                    // Both sides recv: classic cross-wait, starves instantly.
                    sim.spawn_thread("left", move |ctx| {
                        let _: Result<u32, _> = pa.recv(ctx);
                    });
                    sim.spawn_thread("right", move |ctx| {
                        let _: Result<u32, _> = pb.recv(ctx);
                    });
                    let result = sim.run();
                    assert_eq!(result.reason, StopReason::Starved);
                    sim.diagnose()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for report in reports {
        assert_eq!(report.blocked.len(), 2, "both processes should be blocked");
        let names: Vec<_> = report.blocked.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"left") && names.contains(&"right"));
    }
}

#[test]
fn ship_timeouts_fire_inside_worker_threads() {
    let handle = std::thread::spawn(|| {
        let sim = Simulation::new();
        let cfg = ShipConfig {
            timeout: Some(SimDur::us(5)),
            ..ShipConfig::default()
        };
        let ch = ShipChannel::new(&sim.handle(), "starved", cfg);
        let (pa, _pb) = ch.ports("reader", "silent");
        sim.spawn_thread("reader", move |ctx| {
            let err = pa.recv::<u32>(ctx).unwrap_err();
            assert!(
                matches!(err, ShipError::Timeout { .. }),
                "expected a timeout, got {err:?}"
            );
        });
        sim.run()
    });
    let result = handle.join().unwrap();
    assert_eq!(result.reason, StopReason::Starved);
}
