//! Exploration flow: role detection, automatic mapping, sweeps and
//! cross-level equivalence.

use shiptlm_cam::arb::ArbPolicy;
use shiptlm_explore::prelude::*;
use shiptlm_kernel::time::SimDur;

#[test]
fn role_detection_on_pipeline() {
    let app = workload::pipeline(4, 4, 64, SimDur::ZERO);
    let ca = run_component_assembly(&app).unwrap();
    // source → stage0 → stage1 → sink: the upstream end masters each hop.
    assert_eq!(ca.roles.master_of["ch0"], "source");
    assert_eq!(ca.roles.master_of["ch1"], "stage0");
    assert_eq!(ca.roles.master_of["ch2"], "stage1");
    assert_eq!(ca.output.log.len() as u64, 3 * 4 * 2); // send+recv per hop per block
}

#[test]
fn role_detection_direction_independent_of_declaration() {
    // Declare the channel "backwards" (consumer first): detection must still
    // find the real master.
    let mut app = AppSpec::new("reversed");
    app.add_pe("consumer", || {
        Box::new(|ctx, ports| {
            let _: u32 = ports[0].recv(ctx).unwrap();
        })
    });
    app.add_pe("producer", || {
        Box::new(|ctx, ports| {
            ports[0].send(ctx, &5u32).unwrap();
        })
    });
    app.connect("c", "consumer", "producer");
    let ca = run_component_assembly(&app).unwrap();
    assert_eq!(ca.roles.master_of["c"], "producer");
}

#[test]
fn unused_channel_is_a_mapping_error() {
    let mut app = AppSpec::new("dead");
    app.add_pe("a", || Box::new(|_ctx, _ports| {}));
    app.add_pe("b", || Box::new(|_ctx, _ports| {}));
    app.connect("never", "a", "b");
    assert!(matches!(
        run_component_assembly(&app),
        Err(MapError::Unused { .. })
    ));
}

#[test]
fn inconsistent_usage_is_a_mapping_error() {
    let mut app = AppSpec::new("mixed");
    app.add_pe("x", || {
        Box::new(|ctx, ports| {
            ports[0].send(ctx, &1u8).unwrap();
            let _: u8 = ports[0].recv(ctx).unwrap();
        })
    });
    app.add_pe("y", || {
        Box::new(|ctx, ports| {
            let _: u8 = ports[0].recv(ctx).unwrap();
            ports[0].send(ctx, &2u8).unwrap();
        })
    });
    app.connect("c", "x", "y");
    assert!(matches!(
        run_component_assembly(&app),
        Err(MapError::Inconsistent { .. })
    ));
}

#[test]
fn mapped_run_is_content_equivalent_to_untimed() {
    let app = workload::pipeline(4, 8, 128, SimDur::ZERO);
    verify_equivalence(
        &app,
        &[ArchSpec::plb(), ArchSpec::opb(), ArchSpec::crossbar()],
    )
    .unwrap();
}

#[test]
fn rpc_workload_equivalence_across_arbitration() {
    let app = workload::rpc(2, 4, 96, SimDur::ns(500));
    verify_equivalence(
        &app,
        &[
            ArchSpec::plb().with_arb(ArbPolicy::FixedPriority),
            ArchSpec::plb().with_arb(ArbPolicy::RoundRobin),
        ],
    )
    .unwrap();
}

#[test]
fn mapped_run_takes_nonzero_time_and_generates_bus_traffic() {
    let app = workload::pipeline(3, 8, 64, SimDur::ZERO);
    let (ca, mapped) = explore_one(&app, &ArchSpec::plb()).unwrap();
    assert!(ca.output.sim_time.is_zero()); // untimed: no time passes
    assert!(!mapped.output.sim_time.is_zero());
    assert!(mapped.bus.transactions > 0);
    assert!(mapped.bus.bytes > 0);
}

#[test]
fn crossbar_outperforms_shared_bus_on_parallel_streams() {
    let app = workload::parallel_streams(4, 16, 256);
    let report = Sweep::new(app)
        .arch(ArchSpec::plb())
        .arch(ArchSpec::crossbar())
        .run()
        .unwrap();
    let rows = report.rows();
    let plb = rows.iter().find(|r| r.label.starts_with("plb")).unwrap();
    let xbar = rows.iter().find(|r| r.label.starts_with("xbar")).unwrap();
    assert!(
        xbar.sim_time < plb.sim_time,
        "crossbar ({}) must beat shared bus ({}) on disjoint streams",
        xbar.sim_time,
        plb.sim_time
    );
}

#[test]
fn opb_is_the_slowest_architecture() {
    let app = workload::pipeline(3, 16, 256, SimDur::ZERO);
    let report = Sweep::new(app)
        .arch(ArchSpec::plb())
        .arch(ArchSpec::opb())
        .arch(ArchSpec::crossbar())
        .run()
        .unwrap();
    let time_of = |prefix: &str| {
        report
            .rows()
            .iter()
            .find(|r| r.label.starts_with(prefix))
            .unwrap()
            .sim_time
    };
    assert!(time_of("opb") > time_of("plb"));
    assert!(time_of("opb") > time_of("xbar"));
}

#[test]
fn bigger_bursts_speed_up_bulk_transfer() {
    let app = workload::pipeline(3, 8, 1024, SimDur::ZERO);
    let report = Sweep::new(app)
        .arch(ArchSpec::plb().with_burst(16))
        .arch(ArchSpec::plb().with_burst(256))
        .run()
        .unwrap();
    let rows = report.rows();
    assert!(
        rows[1].sim_time < rows[0].sim_time,
        "256B bursts ({}) must beat 16B bursts ({})",
        rows[1].sim_time,
        rows[0].sim_time
    );
}

#[test]
fn untimed_baseline_row_appears() {
    let app = workload::pipeline(3, 4, 64, SimDur::ZERO);
    let report = Sweep::new(app)
        .with_untimed_baseline()
        .arch(ArchSpec::plb())
        .run()
        .unwrap();
    assert_eq!(report.rows().len(), 2);
    assert_eq!(report.rows()[0].label, "untimed");
    assert!(report.rows()[0].bus.is_none());
    assert!(report.rows()[1].bus.is_some());
}

#[test]
fn report_renders_table_and_csv() {
    let app = workload::rpc(1, 2, 64, SimDur::ZERO);
    let report = Sweep::new(app).arch(ArchSpec::plb()).run().unwrap();
    let table = report.to_string();
    assert!(table.contains("config"));
    assert!(table.contains("plb/priority/b64"));
    let csv = report.to_csv();
    assert!(csv.starts_with("config,"));
    assert_eq!(csv.lines().count(), 2);
}

#[test]
fn tdma_reduces_worst_case_wait_variance_vs_priority() {
    // Asymmetric hotspot load: under fixed priority the low-priority master
    // sees much larger waits than the high-priority one; TDMA evens the
    // service out. Compare the spread of per-master mean waits.
    let spread = |policy: ArbPolicy| {
        let app = workload::hotspot(3, 8, 256);
        let report = Sweep::new(app)
            .arch(ArchSpec::plb().with_arb(policy))
            .run()
            .unwrap();
        let bus = report.rows()[0].bus.clone().unwrap();
        let means: Vec<f64> = bus
            .per_master
            .values()
            .map(|m| m.wait_cycles.mean())
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };
    let prio_spread = spread(ArbPolicy::FixedPriority);
    let rr_spread = spread(ArbPolicy::RoundRobin);
    assert!(
        rr_spread <= prio_spread,
        "round-robin spread {rr_spread} must not exceed priority spread {prio_spread}"
    );
}

#[test]
fn pe_and_channel_validation() {
    let mut app = AppSpec::new("v");
    app.add_pe("a", || Box::new(|_c, _p| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        app.connect("c", "a", "ghost");
    }));
    assert!(result.is_err());
}

#[test]
fn missing_role_is_a_mapping_error_not_a_panic() {
    let app = workload::pipeline(2, 2, 16, SimDur::ZERO);
    // A hand-built role map that misses every channel.
    let empty = RoleMap::default();
    let err = run_mapped(&app, &empty, &ArchSpec::plb()).unwrap_err();
    assert!(matches!(err, MapError::Missing { ref channel } if channel == "ch0"));
    assert!(err.to_string().contains("role map misses channel 'ch0'"));
    let err = run_pin_accurate(&app, &empty, &ArchSpec::plb()).unwrap_err();
    assert!(matches!(err, MapError::Missing { .. }));
}
