//! Workload-generator determinism and metrics/report edge cases.

use shiptlm_explore::prelude::*;
use shiptlm_kernel::stats::RunningStats;
use shiptlm_kernel::time::SimDur;
use shiptlm_ship::record::{fnv1a, ShipOp, TransactionLog, TxRecord};

#[test]
fn workload_blocks_are_deterministic() {
    assert_eq!(workload::block(42, 128), workload::block(42, 128));
    assert_ne!(workload::block(42, 128), workload::block(43, 128));
    assert_eq!(workload::block(7, 0).len(), 0);
}

#[test]
fn identical_workloads_yield_identical_logs() {
    let run = || {
        let ca = run_component_assembly(&workload::pipeline(4, 8, 64, SimDur::ZERO)).unwrap();
        ca.output.log.to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn pipeline_minimum_size_is_two() {
    let app = workload::pipeline(2, 4, 16, SimDur::ZERO);
    assert_eq!(app.pes().len(), 2);
    assert_eq!(app.channels().len(), 1);
    assert!(run_component_assembly(&app).is_ok());
}

#[test]
#[should_panic(expected = "at least source and sink")]
fn pipeline_of_one_panics() {
    let _ = workload::pipeline(1, 1, 1, SimDur::ZERO);
}

#[test]
fn hotspot_producers_have_asymmetric_volume() {
    let app = workload::hotspot(3, 4, 32);
    let ca = run_component_assembly(&app).unwrap();
    let recs = ca.output.log.to_vec();
    // Producer i sends 4*(i+1) blocks; total recv = 4+8+12 = 24.
    let recvs = recs.iter().filter(|r| r.op == ShipOp::Recv).count();
    assert_eq!(recvs, 24);
}

fn rec(op: ShipOp, len: usize, start_ps: u64, end_ps: u64) -> TxRecord {
    use shiptlm_kernel::time::SimTime;
    TxRecord {
        channel: "c".into(),
        port: "p".into(),
        op,
        len,
        digest: fnv1a(&vec![0; len]),
        start: SimTime::from_ps(start_ps),
        end: SimTime::from_ps(end_ps),
    }
}

#[test]
fn run_metrics_aggregates_by_op_kind() {
    let log = TransactionLog::new();
    log.push(rec(ShipOp::Recv, 100, 0, 10_000));
    log.push(rec(ShipOp::Recv, 50, 0, 20_000));
    log.push(rec(ShipOp::Request, 0, 0, 30_000)); // 30 ns rpc
    log.push(rec(ShipOp::Send, 10, 0, 4_000));
    log.push(rec(ShipOp::Reply, 10, 0, 1_000));
    let m = RunMetrics::from_log("t", &log, SimDur::us(1), None, 99, 0.5);
    assert_eq!(m.messages, 2);
    assert_eq!(m.bytes, 150);
    assert_eq!(m.rpc_latency.count(), 1);
    assert!((m.rpc_latency.mean() - 30.0).abs() < 1e-9);
    assert_eq!(m.send_blocking.count(), 1);
    // 150 bytes over 1 us = 150 MB/s.
    assert!((m.throughput_mbps() - 150.0).abs() < 1e-9);
    assert_eq!(m.utilization(), None);
    assert_eq!(m.sim_speed_msgs_per_sec(), 4.0);
}

#[test]
fn run_metrics_zero_time_is_benign() {
    let log = TransactionLog::new();
    let m = RunMetrics::from_log("z", &log, SimDur::ZERO, None, 0, 0.0);
    assert_eq!(m.throughput_mbps(), 0.0);
    assert_eq!(m.sim_speed_msgs_per_sec(), 0.0);
}

#[test]
fn report_csv_escaping_and_columns() {
    let log = TransactionLog::new();
    log.push(rec(ShipOp::Recv, 8, 0, 100));
    let mut report = Report::new();
    report.push(RunMetrics::from_log(
        "cfg-a",
        &log,
        SimDur::ns(1),
        None,
        1,
        0.1,
    ));
    let csv = report.to_csv();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    let row = lines.next().unwrap();
    assert_eq!(header.split(',').count(), row.split(',').count());
    assert!(row.starts_with("cfg-a,"));
}

#[test]
fn arch_labels_are_distinct_per_config() {
    let labels: Vec<String> = [
        ArchSpec::plb(),
        ArchSpec::opb(),
        ArchSpec::crossbar(),
        ArchSpec::plb().with_burst(16),
        ArchSpec::plb().with_arb(shiptlm_cam::arb::ArbPolicy::RoundRobin),
    ]
    .iter()
    .map(|a| a.label())
    .collect();
    let unique: std::collections::BTreeSet<_> = labels.iter().collect();
    assert_eq!(unique.len(), labels.len(), "labels collide: {labels:?}");
}

#[test]
fn running_stats_used_in_reports_behave() {
    let mut s = RunningStats::new();
    s.record(1.0);
    s.record(3.0);
    assert_eq!(s.mean(), 2.0);
}

#[test]
fn rpc_workload_round_trips_content() {
    let app = workload::rpc(2, 3, 40, SimDur::ns(100));
    let ca = run_component_assembly(&app).unwrap();
    // 2 clients x 3 requests: each request = 1 Request + 1 Recv + 1 Reply.
    let recs = ca.output.log.to_vec();
    assert_eq!(recs.iter().filter(|r| r.op == ShipOp::Request).count(), 6);
    assert_eq!(recs.iter().filter(|r| r.op == ShipOp::Reply).count(), 6);
}

#[test]
fn pareto_front_of_a_real_sweep() {
    use shiptlm_explore::pareto::report_front;
    let app = workload::hotspot(3, 6, 128);
    let report = Sweep::new(app)
        .with_untimed_baseline()
        .arch(ArchSpec::plb())
        .arch(ArchSpec::opb())
        .arch(ArchSpec::crossbar())
        .run()
        .unwrap();
    let front = report_front(&report);
    // The untimed baseline (no bus stats) never appears on the front.
    assert!(front.iter().all(|r| r.bus.is_some()));
    assert!(!front.is_empty());
    // OPB is dominated: slower AND (at least as much) waiting than PLB.
    let opb_on_front = front.iter().any(|r| r.label.starts_with("opb"));
    assert!(!opb_on_front, "opb should be dominated: {front:?}");
}
