//! Large-grid sweep behaviour: 1k-candidate determinism across thread
//! counts, worker-pool reuse across sweeps, and Pareto-guided pruning
//! soundness.
//!
//! These are the correctness companions to the scaling work: the persistent
//! pool and batched scheduling must never change *what* a sweep reports,
//! only how fast it gets there, and pruning must only ever drop provably
//! dominated candidates.

use shiptlm_explore::prelude::*;

/// A deliberately tiny workload so a 1k-candidate sweep stays cheap even in
/// debug builds (~1.5 ms/candidate): the point here is candidate *count*,
/// not per-candidate simulation depth.
fn tiny_app() -> AppSpec {
    workload::parallel_streams(2, 4, 64)
}

fn large_grid(n: usize) -> Vec<ArchSpec> {
    let grid = ArchGrid::exploration_default();
    assert!(grid.len() >= n, "default grid has {} points", grid.len());
    grid.generate_n(n)
}

/// Deterministic fingerprint of a report row (everything except host
/// wall-clock, which legitimately varies run to run).
fn fingerprint(report: &Report) -> Vec<(String, String, u64, u64, u64)> {
    report
        .rows()
        .iter()
        .map(|r| {
            (
                r.label.clone(),
                r.sim_time.to_string(),
                r.messages,
                r.bytes,
                r.delta_cycles,
            )
        })
        .collect()
}

#[test]
fn grid_labels_are_unique() {
    let archs = ArchGrid::exploration_default().generate();
    assert_eq!(archs.len(), 1296);
    let labels: std::collections::BTreeSet<String> = archs.iter().map(|a| a.label()).collect();
    assert_eq!(labels.len(), archs.len(), "duplicate candidate labels");
}

#[test]
fn interconnect_families_grid_labels_are_unique() {
    let grid = ArchGrid::interconnect_families();
    let archs = grid.generate();
    assert_eq!(archs.len(), grid.len());
    let labels: std::collections::BTreeSet<String> = archs.iter().map(|a| a.label()).collect();
    assert_eq!(labels.len(), archs.len(), "duplicate candidate labels");
    // Every family is actually present, including the SPLIT-enabled AHB.
    assert!(archs.iter().any(|a| a.bus == BusKind::Ahb && a.split_slaves));
    assert!(archs
        .iter()
        .any(|a| matches!(a.bus, BusKind::Noc { cols: 8, rows: 8 })));
}

#[test]
fn thousand_candidate_reports_are_identical_across_thread_counts() {
    let archs = large_grid(1024);
    let serial = Sweep::new(tiny_app()).archs(archs.clone()).run().unwrap();
    assert_eq!(serial.rows().len(), 1024);
    for threads in [2, 8] {
        let parallel = Sweep::new(tiny_app())
            .archs(archs.clone())
            .run_parallel(threads)
            .unwrap();
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "report rows diverge at {threads} worker threads"
        );
        // The rendered table excludes wall-clock, so it must be
        // byte-identical too.
        assert_eq!(
            serial.to_string(),
            parallel.to_string(),
            "rendered report diverges at {threads} worker threads"
        );
    }
}

#[test]
fn pool_is_reused_across_sweeps() {
    // A dedicated pool (not the global one, which other tests grow): the
    // first parallel sweep spawns its helpers, later sweeps must reuse them.
    let pool = WorkerPool::new();
    let archs = large_grid(64);
    assert_eq!(pool.spawned_workers(), 0, "pools start with no threads");
    for round in 0..3 {
        let report = Sweep::new(tiny_app())
            .archs(archs.clone())
            .run_on(&pool, 4)
            .unwrap();
        assert_eq!(report.rows().len(), 64, "round {round}");
        assert_eq!(
            pool.spawned_workers(),
            3,
            "round {round}: 4-way sweep needs exactly 3 helpers (caller runs too)"
        );
    }
    // Serial sweeps on the same pool never touch its workers.
    let report = Sweep::new(tiny_app())
        .archs(large_grid(8))
        .run_on(&pool, 1)
        .unwrap();
    assert_eq!(report.rows().len(), 8);
    assert_eq!(
        pool.spawned_workers(),
        3,
        "serial run must not grow the pool"
    );
}

#[test]
fn pruning_preserves_the_front_and_only_drops_dominated_candidates() {
    let archs = large_grid(512);
    let full = Sweep::new(tiny_app()).archs(archs.clone()).run().unwrap();
    for threads in [1, 8] {
        let pruned = Sweep::new(tiny_app())
            .archs(archs.clone())
            .with_pruning(PruneConfig::sim_time())
            .run_parallel(threads)
            .unwrap();
        assert_eq!(
            pruned.rows().len() + pruned.pruned().len(),
            archs.len(),
            "every candidate is either a row or pruned"
        );
        assert!(
            !pruned.pruned().is_empty(),
            "a 512-point grid should give the bound something to prune"
        );

        // Soundness: under the pruning objective (simulated time), the
        // front survives pruning exactly. The full sweep's minimum must
        // still be achieved, and by the same candidates.
        let min_time = |r: &Report| r.rows().iter().map(|m| m.sim_time).min().unwrap();
        let winners = |r: &Report| {
            let best = min_time(r);
            r.rows()
                .iter()
                .filter(|m| m.sim_time == best)
                .map(|m| m.label.clone())
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(
            min_time(&full),
            min_time(&pruned),
            "{threads} threads: pruning lost the best simulated time"
        );
        assert_eq!(
            winners(&full),
            winners(&pruned),
            "{threads} threads: pruning changed the set of front candidates"
        );

        // Every surviving row is bit-identical to its full-sweep
        // counterpart: pruning skips candidates, it never alters them.
        let full_rows: std::collections::BTreeMap<_, _> = fingerprint(&full)
            .into_iter()
            .map(|row| (row.0.clone(), row))
            .collect();
        for row in fingerprint(&pruned) {
            assert_eq!(full_rows.get(&row.0), Some(&row), "row {} diverged", row.0);
        }

        // Pruned candidates really are dominated: their bandwidth floor
        // alone exceeds the achieved optimum.
        let pruned_set: std::collections::BTreeSet<_> = pruned.pruned().iter().cloned().collect();
        for label in &pruned_set {
            assert!(
                !winners(&full).contains(label),
                "{threads} threads: front candidate {label} was pruned"
            );
        }
    }
}

#[test]
fn pruning_is_deterministic_when_serial() {
    let archs = large_grid(256);
    let a = Sweep::new(tiny_app())
        .archs(archs.clone())
        .with_pruning(PruneConfig::sim_time())
        .run()
        .unwrap();
    let b = Sweep::new(tiny_app())
        .archs(archs)
        .with_pruning(PruneConfig::sim_time())
        .run()
        .unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.pruned(), b.pruned());
}

#[test]
fn custom_pruning_policies_gate_on_their_own_objectives() {
    // A zero lower bound is trivially admissible and never dominated by a
    // positive cost, so nothing may be pruned.
    let archs = large_grid(32);
    let report = Sweep::new(tiny_app())
        .archs(archs.clone())
        .with_pruning(PruneConfig::custom(
            |row| vec![row.sim_time.as_ps() as f64],
            |_arch, _ctx| vec![0.0],
        ))
        .run()
        .unwrap();
    assert_eq!(report.rows().len(), archs.len());
    assert!(report.pruned().is_empty(), "zero bound must never prune");
}
