//! Pin-accurate OCP interface: signal bundle plus synthesizable-style master
//! and slave FSMs.
//!
//! This is the protocol level the paper's *accessors* speak ("since
//! accessors are implemented as RTL, they are fully synthesizable"). All
//! FSMs are clocked processes: on every rising edge they *sample* the
//! pre-edge signal values and *drive* new values that become visible after
//! the edge — exactly flip-flop semantics, hence race-free.
//!
//! Handshake rules (a valid/ready discipline over OCP signal names):
//!
//! * A request beat transfers on an edge where `MCmd != IDLE` **and**
//!   `SCmdAccept` are both sampled high.
//! * Read data returns as one `SResp = DVA` + `SData` cycle per word.
//! * A write burst is acknowledged by a single `SResp = DVA` cycle after the
//!   last beat is accepted.

use std::fmt;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::clock::Clock;
use shiptlm_kernel::event::Event;
use shiptlm_kernel::fifo::Fifo;
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::signal::Signal;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::SimDur;

use crate::error::OcpError;
use crate::payload::{MCmd, OcpCommand, OcpRequest, OcpResponse, SResp, TxTiming};
use crate::tl::{MasterId, OcpTarget};

/// Data-path word width of the pin interface, in bytes.
pub const WORD_BYTES: usize = 8;

/// The OCP basic signal group (64-bit data path).
#[derive(Clone)]
pub struct OcpPins {
    /// Master command (`MCmd` encoding).
    pub mcmd: Signal<u8>,
    /// Master address.
    pub maddr: Signal<u64>,
    /// Master write data.
    pub mdata: Signal<u64>,
    /// Remaining beats in the current burst (this beat included).
    pub mburst_len: Signal<u32>,
    /// Total byte length of the burst (drives partial last beats; the OCP
    /// `MByteEn` role collapsed to a count).
    pub mbyte_cnt: Signal<u32>,
    /// Slave command accept.
    pub scmd_accept: Signal<bool>,
    /// Slave response (`SResp` encoding).
    pub sresp: Signal<u8>,
    /// Slave read data.
    pub sdata: Signal<u64>,
}

impl OcpPins {
    /// Creates an idle pin bundle named `prefix.*`.
    pub fn new(sim: &SimHandle, prefix: &str) -> Self {
        OcpPins {
            mcmd: sim.signal(&format!("{prefix}.MCmd"), MCmd::Idle.encode()),
            maddr: sim.signal(&format!("{prefix}.MAddr"), 0),
            mdata: sim.signal(&format!("{prefix}.MData"), 0),
            mburst_len: sim.signal(&format!("{prefix}.MBurstLen"), 0),
            mbyte_cnt: sim.signal(&format!("{prefix}.MByteCnt"), 0),
            scmd_accept: sim.signal(&format!("{prefix}.SCmdAccept"), false),
            sresp: sim.signal(&format!("{prefix}.SResp"), SResp::Null.encode()),
            sdata: sim.signal(&format!("{prefix}.SData"), 0),
        }
    }

    /// Registers all pins in the VCD trace under `prefix.*`.
    pub fn trace(&self, prefix: &str) {
        self.mcmd.trace(&format!("{prefix}.MCmd"));
        self.maddr.trace(&format!("{prefix}.MAddr"));
        self.mdata.trace(&format!("{prefix}.MData"));
        self.mburst_len.trace(&format!("{prefix}.MBurstLen"));
        self.mbyte_cnt.trace(&format!("{prefix}.MByteCnt"));
        self.scmd_accept.trace(&format!("{prefix}.SCmdAccept"));
        self.sresp.trace(&format!("{prefix}.SResp"));
        self.sdata.trace(&format!("{prefix}.SData"));
    }
}

impl fmt::Debug for OcpPins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OcpPins")
            .field("mcmd", &self.mcmd.read())
            .field("maddr", &self.maddr.read())
            .field("scmd_accept", &self.scmd_accept.read())
            .field("sresp", &self.sresp.read())
            .finish()
    }
}

fn words_of(data: &[u8]) -> Vec<u64> {
    data.chunks(WORD_BYTES)
        .map(|c| {
            let mut w = [0u8; WORD_BYTES];
            w[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(w)
        })
        .collect()
}

fn bytes_of(words: &[u64], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Pin-level OCP master: drives the M-side of a pin bundle from a request
/// queue.
///
/// It implements [`OcpTarget`], so processing elements use the exact same
/// [`OcpMasterPort`](crate::tl::OcpMasterPort) API as at the transaction
/// level — only the binding changes when the design is refined to pins.
pub struct PinOcpMaster {
    req_q: Fifo<OcpRequest>,
    resp_q: Fifo<OcpResponse>,
    name: String,
}

impl PinOcpMaster {
    /// Spawns the master FSM driving `pins`, clocked by `clk`.
    pub fn new(sim: &SimHandle, name: &str, pins: OcpPins, clk: &Clock) -> Arc<Self> {
        let req_q = sim.fifo::<OcpRequest>(&format!("{name}.req"), 4);
        let resp_q = sim.fifo::<OcpResponse>(&format!("{name}.resp"), 4);
        let master = Arc::new(PinOcpMaster {
            req_q: req_q.clone(),
            resp_q: resp_q.clone(),
            name: name.to_string(),
        });
        let posedge = clk.posedge().clone();
        let period = clk.period();
        let fsm_name = format!("{name}.fsm");
        sim.spawn_thread(&fsm_name, move |ctx| {
            master_fsm(ctx, pins, posedge, period, req_q, resp_q);
        });
        master
    }
}

fn master_fsm(
    ctx: &mut ThreadCtx,
    pins: OcpPins,
    posedge: Event,
    period: SimDur,
    req_q: Fifo<OcpRequest>,
    resp_q: Fifo<OcpResponse>,
) {
    loop {
        let req = req_q.read(ctx);
        let start = ctx.now();
        let is_read = matches!(req.cmd, OcpCommand::Read { .. });
        let total_len = req.cmd.len();
        let beats = req.beats(WORD_BYTES);
        let wdata = match &req.cmd {
            OcpCommand::Write { data } => words_of(data),
            OcpCommand::Read { .. } => Vec::new(),
        };

        // --- Request phase: issue each beat and hold until accepted. -----
        let mut accepted = 0u64;
        let mut wait_cycles = 0u64;
        while accepted < beats {
            pins.mcmd.write(req.cmd.mcmd().encode());
            pins.maddr.write(req.addr + accepted * WORD_BYTES as u64);
            pins.mburst_len.write((beats - accepted) as u32);
            pins.mbyte_cnt.write(total_len as u32);
            if !is_read {
                pins.mdata
                    .write(wdata.get(accepted as usize).copied().unwrap_or(0));
            }
            ctx.wait(&posedge);
            // Sample pre-edge values: did the beat transfer on this edge?
            if pins.scmd_accept.read() && pins.mcmd.read() == req.cmd.mcmd().encode() {
                accepted += 1;
            } else {
                wait_cycles += 1;
            }
        }
        pins.mcmd.write(MCmd::Idle.encode());
        pins.mburst_len.write(0);

        // --- Response phase. ---------------------------------------------
        let mut rwords: Vec<u64> = Vec::new();
        let mut resp_code = SResp::Dva;
        let expected_words = if is_read { beats } else { 1 };
        let mut got = 0u64;
        while got < expected_words {
            ctx.wait(&posedge);
            match SResp::decode(pins.sresp.read()) {
                Some(SResp::Dva) => {
                    if is_read {
                        rwords.push(pins.sdata.read());
                    }
                    got += 1;
                }
                Some(SResp::Err) | Some(SResp::Fail) => {
                    resp_code = SResp::Err;
                    got = expected_words;
                }
                _ => {}
            }
        }

        let end = ctx.now();
        let timing = TxTiming {
            start,
            end,
            total_cycles: end.saturating_since(start) / period,
            wait_cycles,
        };
        let resp = if resp_code != SResp::Dva {
            OcpResponse::error(timing)
        } else if is_read {
            OcpResponse::read_ok(bytes_of(&rwords, total_len), timing)
        } else {
            OcpResponse::write_ok(timing)
        };
        resp_q.write(ctx, resp);
    }
}

impl OcpTarget for PinOcpMaster {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        _master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        self.req_q.write(ctx, req);
        Ok(self.resp_q.read(ctx))
    }

    fn target_name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for PinOcpMaster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinOcpMaster")
            .field("name", &self.name)
            .finish()
    }
}

/// Pin-level OCP slave: samples the M-side of a pin bundle and forwards
/// complete bursts to a transaction-level backend.
#[derive(Debug)]
pub struct PinOcpSlave;

impl PinOcpSlave {
    /// Spawns the slave FSM on `pins`, clocked by `clk`, answering through
    /// `backend`. `wait_states` extra cycles are inserted before each beat
    /// is accepted (models slow peripherals). Backend transactions are
    /// issued under `forward_id` (relevant when the backend arbitrates).
    pub fn spawn(
        sim: &SimHandle,
        name: &str,
        pins: OcpPins,
        clk: &Clock,
        backend: Arc<dyn OcpTarget>,
        wait_states: u64,
        forward_id: MasterId,
    ) {
        let posedge = clk.posedge().clone();
        sim.spawn_thread(&format!("{name}.fsm"), move |ctx| {
            slave_fsm(ctx, pins, posedge, backend, wait_states, forward_id);
        });
    }
}

fn slave_fsm(
    ctx: &mut ThreadCtx,
    pins: OcpPins,
    posedge: Event,
    backend: Arc<dyn OcpTarget>,
    wait_states: u64,
    forward_id: MasterId,
) {
    loop {
        // Wait for a request beat to appear.
        ctx.wait(&posedge);
        let cmd = MCmd::decode(pins.mcmd.read());
        let Some(cmd @ (MCmd::Read | MCmd::Write)) = cmd else {
            pins.scmd_accept.write(false);
            continue;
        };
        let base = pins.maddr.read();
        let burst = pins.mburst_len.read().max(1) as u64;
        let byte_len = {
            let raw = pins.mbyte_cnt.read() as u64;
            let max = burst * WORD_BYTES as u64;
            // Defensive clamp: a missing/oversized count degrades to whole
            // words, never out-of-burst accesses.
            if raw == 0 || raw > max {
                max
            } else {
                raw
            }
        } as usize;

        // Collect all beats of the burst.
        let mut wwords: Vec<u64> = Vec::new();
        let mut collected = 0u64;
        while collected < burst {
            // Optional wait states before asserting accept.
            for _ in 0..wait_states {
                pins.scmd_accept.write(false);
                ctx.wait(&posedge);
            }
            pins.scmd_accept.write(true);
            ctx.wait(&posedge);
            // The edge we just crossed had accept high and (by protocol) the
            // master still driving the beat: transfer happened.
            if cmd == MCmd::Write {
                wwords.push(pins.mdata.read());
            }
            collected += 1;
        }
        pins.scmd_accept.write(false);

        // Execute against the backend (consumes simulated time).
        let req = match cmd {
            MCmd::Write => OcpRequest::write(base, bytes_of(&wwords, byte_len)),
            MCmd::Read => OcpRequest::read(base, byte_len),
            MCmd::Idle => unreachable!(),
        };
        let result = backend.transact(ctx, forward_id, req);

        // Drive the response phase.
        match result {
            Ok(resp) if resp.is_ok() && cmd == MCmd::Read => {
                for w in words_of(&resp.data) {
                    pins.sresp.write(SResp::Dva.encode());
                    pins.sdata.write(w);
                    ctx.wait(&posedge);
                }
            }
            Ok(resp) if resp.is_ok() => {
                pins.sresp.write(SResp::Dva.encode());
                ctx.wait(&posedge);
            }
            _ => {
                pins.sresp.write(SResp::Err.encode());
                ctx.wait(&posedge);
            }
        }
        pins.sresp.write(SResp::Null.encode());
    }
}

/// Records of protocol violations found by the [`OcpMonitor`].
#[derive(Debug, Clone, Default)]
pub struct ViolationLog {
    entries: Arc<Mutex<Vec<String>>>,
}

impl ViolationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ViolationLog::default()
    }

    /// Number of violations recorded.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when no violations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All recorded violation messages.
    pub fn to_vec(&self) -> Vec<String> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn push(&self, msg: String) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(msg);
    }
}

/// A passive pin-protocol checker.
///
/// Samples the pins on every rising edge and records violations of the
/// handshake rules; attach one per pin bundle during verification runs.
#[derive(Debug)]
pub struct OcpMonitor;

impl OcpMonitor {
    /// Spawns the monitor; violations accumulate in the returned log.
    pub fn spawn(sim: &SimHandle, name: &str, pins: OcpPins, clk: &Clock) -> ViolationLog {
        let log = ViolationLog::new();
        let out = log.clone();
        let posedge = clk.posedge().clone();
        sim.spawn_thread(&format!("{name}.monitor"), move |ctx| {
            let mut prev_cmd = MCmd::Idle.encode();
            let mut prev_addr = 0u64;
            let mut prev_accept = false;
            loop {
                ctx.wait(&posedge);
                let cmd = pins.mcmd.read();
                let addr = pins.maddr.read();
                let accept = pins.scmd_accept.read();
                let resp = pins.sresp.read();
                if MCmd::decode(cmd).is_none() {
                    out.push(format!("illegal MCmd encoding {cmd:#x} at {}", ctx.now()));
                }
                if SResp::decode(resp).is_none() {
                    out.push(format!("illegal SResp encoding {resp:#x} at {}", ctx.now()));
                }
                // A beat must be held stable until accepted.
                let prev_valid = MCmd::decode(prev_cmd).is_some_and(|c| c != MCmd::Idle);
                if prev_valid && !prev_accept {
                    let still_same = cmd == prev_cmd && addr == prev_addr;
                    if !still_same {
                        out.push(format!(
                            "request beat changed before accept at {} (MCmd {prev_cmd}->{cmd}, MAddr {prev_addr:#x}->{addr:#x})",
                            ctx.now()
                        ));
                    }
                }
                prev_cmd = cmd;
                prev_addr = addr;
                prev_accept = accept;
            }
        });
        log
    }
}
