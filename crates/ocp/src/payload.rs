//! OCP-style transaction payloads.
//!
//! Below the CCATB model the design flow speaks the Open Core Protocol
//! (paper §1: "the widely supported and openly-licensed Open Core Protocol
//! (OCP) is used"). This module defines an OCP-inspired request/response
//! payload pair used by both the transaction-level interfaces ([`tl`](crate::tl))
//! and the pin-level FSMs ([`pin`](crate::pin)).

use std::fmt;

use shiptlm_kernel::time::SimTime;

/// Master command, the OCP `MCmd` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MCmd {
    /// No operation in flight.
    Idle,
    /// Posted write.
    Write,
    /// Read.
    Read,
}

impl MCmd {
    /// Pin encoding (matches the width-3 `MCmd` wire group).
    pub fn encode(self) -> u8 {
        match self {
            MCmd::Idle => 0,
            MCmd::Write => 1,
            MCmd::Read => 2,
        }
    }

    /// Decodes a pin value.
    pub fn decode(v: u8) -> Option<MCmd> {
        match v {
            0 => Some(MCmd::Idle),
            1 => Some(MCmd::Write),
            2 => Some(MCmd::Read),
            _ => None,
        }
    }
}

impl fmt::Display for MCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MCmd::Idle => "IDLE",
            MCmd::Write => "WR",
            MCmd::Read => "RD",
        })
    }
}

/// Slave response, the OCP `SResp` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SResp {
    /// No response driven.
    Null,
    /// Data valid / accept.
    Dva,
    /// Request failed (retry-able).
    Fail,
    /// Error response.
    Err,
}

impl SResp {
    /// Pin encoding.
    pub fn encode(self) -> u8 {
        match self {
            SResp::Null => 0,
            SResp::Dva => 1,
            SResp::Fail => 2,
            SResp::Err => 3,
        }
    }

    /// Decodes a pin value.
    pub fn decode(v: u8) -> Option<SResp> {
        match v {
            0 => Some(SResp::Null),
            1 => Some(SResp::Dva),
            2 => Some(SResp::Fail),
            3 => Some(SResp::Err),
            _ => None,
        }
    }
}

impl fmt::Display for SResp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SResp::Null => "NULL",
            SResp::Dva => "DVA",
            SResp::Fail => "FAIL",
            SResp::Err => "ERR",
        })
    }
}

/// Burst address sequence, a subset of OCP `MBurstSeq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BurstSeq {
    /// Incrementing addresses (the common case).
    #[default]
    Incr,
    /// Constant address (FIFO-style streaming).
    Stream,
}

/// The command half of a request: what to do and with which data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcpCommand {
    /// Read `bytes` bytes starting at the request address.
    Read {
        /// Number of bytes to read.
        bytes: usize,
    },
    /// Write the given data starting at the request address.
    Write {
        /// Bytes to write.
        data: Vec<u8>,
    },
}

impl OcpCommand {
    /// The `MCmd` this command drives on the wires.
    pub fn mcmd(&self) -> MCmd {
        match self {
            OcpCommand::Read { .. } => MCmd::Read,
            OcpCommand::Write { .. } => MCmd::Write,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            OcpCommand::Read { bytes } => *bytes,
            OcpCommand::Write { data } => data.len(),
        }
    }

    /// `true` for a zero-length transfer.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete OCP transaction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcpRequest {
    /// Start byte address.
    pub addr: u64,
    /// Read or write command with payload.
    pub cmd: OcpCommand,
    /// Burst address sequence.
    pub burst: BurstSeq,
}

impl OcpRequest {
    /// Convenience constructor for an incrementing-burst read.
    pub fn read(addr: u64, bytes: usize) -> Self {
        OcpRequest {
            addr,
            cmd: OcpCommand::Read { bytes },
            burst: BurstSeq::Incr,
        }
    }

    /// Convenience constructor for an incrementing-burst write.
    pub fn write(addr: u64, data: Vec<u8>) -> Self {
        OcpRequest {
            addr,
            cmd: OcpCommand::Write { data },
            burst: BurstSeq::Incr,
        }
    }

    /// Number of data beats at the given word width.
    ///
    /// # Panics
    ///
    /// Panics if `word_bytes` is zero.
    pub fn beats(&self, word_bytes: usize) -> u64 {
        assert!(word_bytes > 0, "word width must be non-zero");
        (self.cmd.len().div_ceil(word_bytes)).max(1) as u64
    }
}

/// Timing annotation attached to completed transactions — the
/// "cycle count accurate at the boundaries" information of the CCATB model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxTiming {
    /// When the master issued the request.
    pub start: SimTime,
    /// When the response completed.
    pub end: SimTime,
    /// Total bus clock cycles from issue to completion.
    pub total_cycles: u64,
    /// Cycles spent waiting for arbitration/grant.
    pub wait_cycles: u64,
}

/// A completed OCP transaction response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcpResponse {
    /// Slave response code.
    pub resp: SResp,
    /// Read data (empty for writes).
    pub data: Vec<u8>,
    /// CCATB timing annotation.
    pub timing: TxTiming,
}

impl OcpResponse {
    /// A successful write acknowledgement.
    pub fn write_ok(timing: TxTiming) -> Self {
        OcpResponse {
            resp: SResp::Dva,
            data: Vec::new(),
            timing,
        }
    }

    /// A successful read completion.
    pub fn read_ok(data: Vec<u8>, timing: TxTiming) -> Self {
        OcpResponse {
            resp: SResp::Dva,
            data,
            timing,
        }
    }

    /// An error response.
    pub fn error(timing: TxTiming) -> Self {
        OcpResponse {
            resp: SResp::Err,
            data: Vec::new(),
            timing,
        }
    }

    /// `true` when the slave responded `DVA`.
    pub fn is_ok(&self) -> bool {
        self.resp == SResp::Dva
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcmd_encoding_roundtrips() {
        for cmd in [MCmd::Idle, MCmd::Write, MCmd::Read] {
            assert_eq!(MCmd::decode(cmd.encode()), Some(cmd));
        }
        assert_eq!(MCmd::decode(7), None);
    }

    #[test]
    fn sresp_encoding_roundtrips() {
        for r in [SResp::Null, SResp::Dva, SResp::Fail, SResp::Err] {
            assert_eq!(SResp::decode(r.encode()), Some(r));
        }
        assert_eq!(SResp::decode(9), None);
    }

    #[test]
    fn beat_count_rounds_up() {
        assert_eq!(OcpRequest::read(0, 1).beats(8), 1);
        assert_eq!(OcpRequest::read(0, 8).beats(8), 1);
        assert_eq!(OcpRequest::read(0, 9).beats(8), 2);
        assert_eq!(OcpRequest::write(0, vec![0; 64]).beats(8), 8);
        // Zero-length transfers still occupy one beat on the wire.
        assert_eq!(OcpRequest::read(0, 0).beats(8), 1);
    }

    #[test]
    #[should_panic(expected = "word width must be non-zero")]
    fn zero_word_width_panics() {
        let _ = OcpRequest::read(0, 4).beats(0);
    }

    #[test]
    fn command_metadata() {
        let w = OcpCommand::Write {
            data: vec![1, 2, 3],
        };
        assert_eq!(w.mcmd(), MCmd::Write);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let r = OcpCommand::Read { bytes: 0 };
        assert!(r.is_empty());
    }
}
