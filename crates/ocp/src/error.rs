//! OCP transport errors.

use std::error::Error;
use std::fmt;

use crate::payload::SResp;

/// Failure of an OCP transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcpError {
    /// No slave is mapped at the address.
    AddressDecode {
        /// The unroutable address.
        addr: u64,
    },
    /// The slave answered with a non-`DVA` response.
    SlaveError {
        /// Request address.
        addr: u64,
        /// The response code received.
        resp: SResp,
    },
    /// The request is malformed (e.g. zero-length burst where forbidden).
    BadRequest(String),
}

impl fmt::Display for OcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OcpError::AddressDecode { addr } => {
                write!(f, "no slave mapped at address {addr:#x}")
            }
            OcpError::SlaveError { addr, resp } => {
                write!(f, "slave at {addr:#x} responded {resp}")
            }
            OcpError::BadRequest(s) => write!(f, "bad ocp request: {s}"),
        }
    }
}

impl Error for OcpError {}
