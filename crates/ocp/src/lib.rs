//! # shiptlm-ocp
//!
//! OCP-style interfaces for the `shiptlm` design flow (Klingauf, DATE 2005).
//! Below the CCATB model the flow adopts the Open Core Protocol; this crate
//! provides an OCP-inspired protocol stack at two levels:
//!
//! * **Transaction level** ([`tl`]): the blocking [`OcpTarget`](tl::OcpTarget)
//!   transport with [`payload`] types carrying CCATB timing annotations, plus
//!   a [`Memory`](memory::Memory) slave and an address-map
//!   [`Router`](memory::Router).
//! * **Pin level** ([`pin`]): the OCP basic signal group with synthesizable-
//!   style master/slave FSMs and a protocol [monitor](pin::OcpMonitor) — the
//!   level the paper's RTL *accessors* operate at.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use shiptlm_kernel::prelude::*;
//! use shiptlm_ocp::prelude::*;
//!
//! let sim = Simulation::new();
//! let mem = Arc::new(Memory::new("ram", 4096));
//! let port = OcpMasterPort::bind(MasterId(0), mem);
//! sim.spawn_thread("cpu", move |ctx| {
//!     port.write_u32(ctx, 0x40, 0xDEAD_BEEF).unwrap();
//!     assert_eq!(port.read_u32(ctx, 0x40).unwrap(), 0xDEAD_BEEF);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod memory;
pub mod payload;
pub mod pin;
pub mod tl;

/// Commonly used OCP items.
pub mod prelude {
    pub use crate::error::OcpError;
    pub use crate::memory::{Memory, Router};
    pub use crate::payload::{
        BurstSeq, MCmd, OcpCommand, OcpRequest, OcpResponse, SResp, TxTiming,
    };
    pub use crate::pin::{
        OcpMonitor, OcpPins, PinOcpMaster, PinOcpSlave, ViolationLog, WORD_BYTES,
    };
    pub use crate::tl::{MasterId, OcpMasterPort, OcpTarget};
}
