//! Transaction-level OCP interfaces: the blocking transport every CAM, slave
//! model and wrapper implements.

use std::fmt;
use std::sync::Arc;

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::txn::{TxnLevel, TxnSpan};

use crate::error::OcpError;
use crate::payload::{OcpCommand, OcpRequest, OcpResponse};

/// Identifies a master attached to a target (used for arbitration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MasterId(pub usize);

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A blocking OCP transaction target (slave, bus, bridge or router).
///
/// The call blocks the initiating process for the full transaction duration;
/// the returned [`OcpResponse`] carries the CCATB timing annotation.
pub trait OcpTarget: Send + Sync {
    /// Executes one transaction on behalf of `master`.
    ///
    /// # Errors
    ///
    /// Returns an [`OcpError`] when the request cannot be routed or the
    /// target rejects it outright (distinct from a slave `ERR` response,
    /// which is a successful transport of a failed operation).
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError>;

    /// Human-readable target name.
    fn target_name(&self) -> String {
        "<anonymous>".to_string()
    }
}

/// A master-side port bound to a target — the OCP TLM interface a PE or
/// wrapper initiates through.
#[derive(Clone)]
pub struct OcpMasterPort {
    id: MasterId,
    target: Arc<dyn OcpTarget>,
    /// Target name interned once at bind time; every recorded transaction
    /// clones the `Arc`, never re-queries the target.
    target_label: Arc<str>,
}

impl OcpMasterPort {
    /// Binds master `id` to `target`.
    pub fn bind(id: MasterId, target: Arc<dyn OcpTarget>) -> Self {
        let target_label = Arc::from(target.target_name().as_str());
        OcpMasterPort {
            id,
            target,
            target_label,
        }
    }

    /// This port's master id.
    pub fn id(&self) -> MasterId {
        self.id
    }

    /// Issues a blocking transaction.
    ///
    /// # Errors
    ///
    /// Propagates the target's [`OcpError`].
    pub fn transact(&self, ctx: &mut ThreadCtx, req: OcpRequest) -> Result<OcpResponse, OcpError> {
        // Two relaxed loads on the fully-disabled fast path, one per
        // recorder.
        let txn = ctx.txn_enabled();
        let metrics = ctx.metrics_enabled();
        if !txn && !metrics {
            return self.target.transact(ctx, self.id, req);
        }
        let start = ctx.now();
        let op = match req.cmd {
            OcpCommand::Read { .. } => "read",
            OcpCommand::Write { .. } => "write",
        };
        let bytes = req.cmd.len();
        let result = self.target.transact(ctx, self.id, req);
        if metrics {
            let m = ctx.metrics();
            let now = ctx.now();
            m.counter_add("ocp.txns", &self.target_label, 1, now);
            m.counter_add("ocp.bytes", &self.target_label, bytes as u64, now);
        }
        if txn {
            ctx.txn_record(TxnSpan {
                level: TxnLevel::Ocp,
                op,
                resource: &self.target_label,
                start,
                end: ctx.now(),
                bytes,
                ok: result.is_ok(),
            });
        }
        result
    }

    /// Convenience blocking read.
    ///
    /// # Errors
    ///
    /// Returns an [`OcpError`] on routing failure or a non-`DVA` response.
    pub fn read(&self, ctx: &mut ThreadCtx, addr: u64, bytes: usize) -> Result<Vec<u8>, OcpError> {
        let resp = self.transact(ctx, OcpRequest::read(addr, bytes))?;
        if !resp.is_ok() {
            return Err(OcpError::SlaveError {
                addr,
                resp: resp.resp,
            });
        }
        Ok(resp.data)
    }

    /// Convenience blocking write.
    ///
    /// # Errors
    ///
    /// Returns an [`OcpError`] on routing failure or a non-`DVA` response.
    pub fn write(&self, ctx: &mut ThreadCtx, addr: u64, data: Vec<u8>) -> Result<(), OcpError> {
        let resp = self.transact(ctx, OcpRequest::write(addr, data))?;
        if !resp.is_ok() {
            return Err(OcpError::SlaveError {
                addr,
                resp: resp.resp,
            });
        }
        Ok(())
    }

    /// Blocking 32-bit register read (little-endian).
    ///
    /// # Errors
    ///
    /// Returns an [`OcpError`] on routing failure or error response.
    pub fn read_u32(&self, ctx: &mut ThreadCtx, addr: u64) -> Result<u32, OcpError> {
        let d = self.read(ctx, addr, 4)?;
        Ok(u32::from_le_bytes(d[..4].try_into().expect("4-byte read")))
    }

    /// Blocking 32-bit register write (little-endian).
    ///
    /// # Errors
    ///
    /// Returns an [`OcpError`] on routing failure or error response.
    pub fn write_u32(&self, ctx: &mut ThreadCtx, addr: u64, value: u32) -> Result<(), OcpError> {
        self.write(ctx, addr, value.to_le_bytes().to_vec())
    }
}

impl fmt::Debug for OcpMasterPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OcpMasterPort")
            .field("id", &self.id)
            .field("target", &self.target.target_name())
            .finish()
    }
}
