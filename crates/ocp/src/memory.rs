//! Memory slave model and address-map router.

use std::fmt;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::time::SimDur;

use crate::error::OcpError;
use crate::payload::{OcpCommand, OcpRequest, OcpResponse, TxTiming};
use crate::tl::{MasterId, OcpTarget};

/// A flat memory slave with configurable access latency.
///
/// Addresses are local (the router strips the base). Out-of-range accesses
/// produce an `ERR` response rather than a transport error, matching how a
/// real slave would answer.
pub struct Memory {
    name: String,
    data: Mutex<Vec<u8>>,
    /// Fixed latency per transaction.
    access_latency: SimDur,
    /// Additional latency per word (8 bytes).
    per_word: SimDur,
}

impl Memory {
    /// Creates a zero-filled memory of `size` bytes.
    pub fn new(name: &str, size: usize) -> Self {
        Memory {
            name: name.to_string(),
            data: Mutex::new(vec![0; size]),
            access_latency: SimDur::ZERO,
            per_word: SimDur::ZERO,
        }
    }

    /// Sets the fixed and per-word access latency.
    pub fn with_latency(mut self, access: SimDur, per_word: SimDur) -> Self {
        self.access_latency = access;
        self.per_word = per_word;
        self
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.data.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Direct backdoor read (no simulated time), for test setup and
    /// inspection.
    pub fn peek(&self, addr: u64, len: usize) -> Option<Vec<u8>> {
        let d = self.data.lock().unwrap_or_else(|e| e.into_inner());
        let start = usize::try_from(addr).ok()?;
        let end = start.checked_add(len)?;
        d.get(start..end).map(|s| s.to_vec())
    }

    /// Direct backdoor write (no simulated time).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn poke(&self, addr: u64, bytes: &[u8]) {
        let mut d = self.data.lock().unwrap_or_else(|e| e.into_inner());
        let start = addr as usize;
        d[start..start + bytes.len()].copy_from_slice(bytes);
    }
}

impl OcpTarget for Memory {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        _master: MasterId,
        req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let start = ctx.now();
        let words = req.beats(8);
        let latency = self.access_latency + self.per_word.saturating_mul(words);
        if !latency.is_zero() {
            ctx.wait_for(latency);
        }
        let timing = TxTiming {
            start,
            end: ctx.now(),
            total_cycles: 0,
            wait_cycles: 0,
        };
        let mut d = self.data.lock().unwrap_or_else(|e| e.into_inner());
        let base = req.addr as usize;
        match req.cmd {
            OcpCommand::Read { bytes } => match d.get(base..base + bytes) {
                Some(s) => Ok(OcpResponse::read_ok(s.to_vec(), timing)),
                None => Ok(OcpResponse::error(timing)),
            },
            OcpCommand::Write { data } => {
                let end = base + data.len();
                if end > d.len() {
                    return Ok(OcpResponse::error(timing));
                }
                d[base..end].copy_from_slice(&data);
                Ok(OcpResponse::write_ok(timing))
            }
        }
    }

    fn target_name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("name", &self.name)
            .field("size", &self.size())
            .finish()
    }
}

/// One entry of an address map.
#[derive(Clone)]
struct MapEntry {
    range: Range<u64>,
    target: Arc<dyn OcpTarget>,
    /// Subtract the range base before forwarding (slaves use local
    /// addresses).
    relative: bool,
}

/// Routes requests to slaves by address range — the system memory map.
///
/// ```
/// use std::sync::Arc;
/// use shiptlm_ocp::memory::{Memory, Router};
///
/// let mut router = Router::new("xbar");
/// router.map(0x0000_0000..0x0001_0000, Arc::new(Memory::new("ram", 0x1_0000)), true);
/// router.map(0x4000_0000..0x4000_1000, Arc::new(Memory::new("regs", 0x1000)), true);
/// assert!(router.lookup(0x4000_0010).is_some());
/// assert!(router.lookup(0x9000_0000).is_none());
/// ```
#[derive(Default)]
pub struct Router {
    name: String,
    map: Vec<MapEntry>,
}

impl Router {
    /// Creates an empty router.
    pub fn new(name: &str) -> Self {
        Router {
            name: name.to_string(),
            map: Vec::new(),
        }
    }

    /// Maps an address range to a target. `relative` subtracts the range
    /// start before forwarding.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or overlaps an existing mapping.
    pub fn map(&mut self, range: Range<u64>, target: Arc<dyn OcpTarget>, relative: bool) {
        assert!(range.start < range.end, "empty address range");
        for e in &self.map {
            assert!(
                range.end <= e.range.start || range.start >= e.range.end,
                "address range {:#x}..{:#x} overlaps {:#x}..{:#x}",
                range.start,
                range.end,
                e.range.start,
                e.range.end
            );
        }
        self.map.push(MapEntry {
            range,
            target,
            relative,
        });
    }

    /// The name of the target mapped at `addr`, if any.
    pub fn lookup(&self, addr: u64) -> Option<String> {
        self.map
            .iter()
            .find(|e| e.range.contains(&addr))
            .map(|e| e.target.target_name())
    }

    fn route(&self, addr: u64) -> Result<(&MapEntry, u64), OcpError> {
        let entry = self
            .map
            .iter()
            .find(|e| e.range.contains(&addr))
            .ok_or(OcpError::AddressDecode { addr })?;
        let fwd = if entry.relative {
            addr - entry.range.start
        } else {
            addr
        };
        Ok((entry, fwd))
    }
}

impl OcpTarget for Router {
    fn transact(
        &self,
        ctx: &mut ThreadCtx,
        master: MasterId,
        mut req: OcpRequest,
    ) -> Result<OcpResponse, OcpError> {
        let (entry, fwd) = self.route(req.addr)?;
        // The whole burst must fit in the mapped range.
        let end = req.addr + req.cmd.len() as u64;
        if end > entry.range.end {
            return Err(OcpError::BadRequest(format!(
                "burst {:#x}..{:#x} crosses mapping boundary {:#x}",
                req.addr, end, entry.range.end
            )));
        }
        req.addr = fwd;
        entry.target.transact(ctx, master, req)
    }

    fn target_name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Router")
            .field("name", &self.name)
            .field("entries", &self.map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tl::OcpMasterPort;
    use shiptlm_kernel::prelude::*;

    #[test]
    fn memory_read_write_roundtrip() {
        let sim = Simulation::new();
        let mem = Arc::new(Memory::new("ram", 1024));
        let port = OcpMasterPort::bind(MasterId(0), mem.clone());
        sim.spawn_thread("m", move |ctx| {
            port.write(ctx, 16, vec![1, 2, 3, 4]).unwrap();
            assert_eq!(port.read(ctx, 16, 4).unwrap(), vec![1, 2, 3, 4]);
            port.write_u32(ctx, 64, 0xCAFEBABE).unwrap();
            assert_eq!(port.read_u32(ctx, 64).unwrap(), 0xCAFEBABE);
        });
        sim.run();
        assert_eq!(mem.peek(16, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn memory_latency_consumes_time() {
        let sim = Simulation::new();
        let mem = Arc::new(Memory::new("ram", 1024).with_latency(SimDur::ns(10), SimDur::ns(2)));
        let port = OcpMasterPort::bind(MasterId(0), mem);
        let end = Arc::new(Mutex::new(SimTime::ZERO));
        {
            let end = Arc::clone(&end);
            sim.spawn_thread("m", move |ctx| {
                // 16 bytes = 2 words -> 10 + 2*2 = 14 ns.
                port.read(ctx, 0, 16).unwrap();
                *end.lock().unwrap() = ctx.now();
            });
        }
        sim.run();
        assert_eq!(*end.lock().unwrap(), SimTime::ZERO + SimDur::ns(14));
    }

    #[test]
    fn out_of_range_access_yields_err_response() {
        let sim = Simulation::new();
        let mem = Arc::new(Memory::new("ram", 64));
        let port = OcpMasterPort::bind(MasterId(0), mem);
        let got = Arc::new(Mutex::new(None));
        {
            let got = Arc::clone(&got);
            sim.spawn_thread("m", move |ctx| {
                *got.lock().unwrap() = Some(port.read(ctx, 60, 8));
            });
        }
        sim.run();
        assert!(matches!(
            got.lock().unwrap().take(),
            Some(Err(OcpError::SlaveError { .. }))
        ));
    }

    #[test]
    fn router_translates_addresses() {
        let sim = Simulation::new();
        let ram = Arc::new(Memory::new("ram", 256));
        let mut router = Router::new("map");
        router.map(0x8000_0000..0x8000_0100, ram.clone(), true);
        let port = OcpMasterPort::bind(MasterId(0), Arc::new(router));
        sim.spawn_thread("m", move |ctx| {
            port.write(ctx, 0x8000_0010, vec![0xAA]).unwrap();
        });
        sim.run();
        assert_eq!(ram.peek(0x10, 1).unwrap(), vec![0xAA]);
    }

    #[test]
    fn router_rejects_unmapped_addresses() {
        let sim = Simulation::new();
        let mut router = Router::new("map");
        router.map(0..64, Arc::new(Memory::new("ram", 64)), true);
        let port = OcpMasterPort::bind(MasterId(0), Arc::new(router));
        let got = Arc::new(Mutex::new(None));
        {
            let got = Arc::clone(&got);
            sim.spawn_thread("m", move |ctx| {
                *got.lock().unwrap() = Some(port.read(ctx, 1000, 4));
            });
        }
        sim.run();
        assert_eq!(
            got.lock().unwrap().take(),
            Some(Err(OcpError::AddressDecode { addr: 1000 }))
        );
    }

    #[test]
    fn router_rejects_boundary_crossing_bursts() {
        let sim = Simulation::new();
        let mut router = Router::new("map");
        router.map(0..64, Arc::new(Memory::new("ram", 64)), true);
        let port = OcpMasterPort::bind(MasterId(0), Arc::new(router));
        let got = Arc::new(Mutex::new(None));
        {
            let got = Arc::clone(&got);
            sim.spawn_thread("m", move |ctx| {
                *got.lock().unwrap() = Some(port.read(ctx, 60, 16));
            });
        }
        sim.run();
        assert!(matches!(
            got.lock().unwrap().take(),
            Some(Err(OcpError::BadRequest(_)))
        ));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_mappings_panic() {
        let mut router = Router::new("map");
        router.map(0..64, Arc::new(Memory::new("a", 64)), true);
        router.map(32..128, Arc::new(Memory::new("b", 96)), true);
    }
}
