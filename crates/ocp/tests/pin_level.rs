//! Pin-accurate OCP: master FSM ↔ slave FSM over the signal bundle, checked
//! by the protocol monitor, against a memory backend.

use std::sync::{Arc, Mutex};

use shiptlm_kernel::prelude::*;
use shiptlm_ocp::prelude::*;

struct Bench {
    sim: Simulation,
    mem: Arc<Memory>,
    port: OcpMasterPort,
    monitor: ViolationLog,
}

fn bench(wait_states: u64) -> Bench {
    let sim = Simulation::new();
    let h = sim.handle();
    let clk = sim.clock("clk", SimDur::ns(10));
    let pins = OcpPins::new(&h, "ocp");
    let mem = Arc::new(Memory::new("ram", 4096));
    let master = PinOcpMaster::new(&h, "m0", pins.clone(), &clk);
    PinOcpSlave::spawn(
        &h,
        "s0",
        pins.clone(),
        &clk,
        mem.clone(),
        wait_states,
        MasterId(0),
    );
    let monitor = OcpMonitor::spawn(&h, "mon", pins, &clk);
    let port = OcpMasterPort::bind(MasterId(0), master);
    Bench {
        sim,
        mem,
        port,
        monitor,
    }
}

#[test]
fn single_word_write_and_read() {
    let b = bench(0);
    let port = b.port.clone();
    b.sim.spawn_thread("pe", move |ctx| {
        port.write(ctx, 0x100, vec![0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4])
            .unwrap();
        let got = port.read(ctx, 0x100, 8).unwrap();
        assert_eq!(got, vec![0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4]);
        ctx.stop();
    });
    b.sim.run();
    assert_eq!(b.mem.peek(0x100, 4).unwrap(), vec![0xDE, 0xAD, 0xBE, 0xEF]);
    assert!(b.monitor.is_empty(), "violations: {:?}", b.monitor.to_vec());
}

#[test]
fn burst_transfer_roundtrip() {
    let b = bench(0);
    let port = b.port.clone();
    let payload: Vec<u8> = (0..64u8).collect();
    let expected = payload.clone();
    b.sim.spawn_thread("pe", move |ctx| {
        port.write(ctx, 0, payload.clone()).unwrap();
        assert_eq!(port.read(ctx, 0, 64).unwrap(), expected);
        ctx.stop();
    });
    b.sim.run();
    assert!(b.monitor.is_empty(), "violations: {:?}", b.monitor.to_vec());
}

#[test]
fn partial_trailing_word_is_preserved() {
    let b = bench(0);
    let port = b.port.clone();
    b.sim.spawn_thread("pe", move |ctx| {
        // 11 bytes: one full word plus a 3-byte tail.
        port.write(ctx, 8, (1..=11u8).collect()).unwrap();
        assert_eq!(
            port.read(ctx, 8, 11).unwrap(),
            (1..=11).collect::<Vec<u8>>()
        );
        ctx.stop();
    });
    b.sim.run();
    assert!(b.monitor.is_empty());
}

#[test]
fn wait_states_slow_the_transaction_down() {
    let run = |ws: u64| {
        let b = bench(ws);
        let port = b.port.clone();
        let cycles = Arc::new(Mutex::new(0u64));
        {
            let cycles = Arc::clone(&cycles);
            b.sim.spawn_thread("pe", move |ctx| {
                let resp = port
                    .transact(ctx, OcpRequest::write(0, vec![0xFF; 32]))
                    .unwrap();
                *cycles.lock().unwrap() = resp.timing.total_cycles;
                ctx.stop();
            });
        }
        b.sim.run();
        assert!(b.monitor.is_empty());
        let c = *cycles.lock().unwrap();
        c
    };
    let fast = run(0);
    let slow = run(3);
    assert!(
        slow >= fast + 3 * 4,
        "3 wait states per beat over 4 beats must add >= 12 cycles (fast={fast}, slow={slow})"
    );
}

#[test]
fn timing_annotation_reports_cycles() {
    let b = bench(0);
    let port = b.port.clone();
    let timing = Arc::new(Mutex::new(TxTiming::default()));
    {
        let timing = Arc::clone(&timing);
        b.sim.spawn_thread("pe", move |ctx| {
            let resp = port.transact(ctx, OcpRequest::read(0, 32)).unwrap();
            *timing.lock().unwrap() = resp.timing;
            ctx.stop();
        });
    }
    b.sim.run();
    let t = timing.lock().unwrap();
    // 4 beats request + backend + 4 data cycles: at least 8 bus cycles.
    assert!(t.total_cycles >= 8, "got {} cycles", t.total_cycles);
    assert!(t.end > t.start);
}

#[test]
fn back_to_back_transactions_do_not_interfere() {
    let b = bench(0);
    let port = b.port.clone();
    b.sim.spawn_thread("pe", move |ctx| {
        for i in 0..10u64 {
            let addr = i * 8;
            port.write(ctx, addr, (i as u8..i as u8 + 8).collect())
                .unwrap();
        }
        for i in 0..10u64 {
            let addr = i * 8;
            assert_eq!(
                port.read(ctx, addr, 8).unwrap(),
                (i as u8..i as u8 + 8).collect::<Vec<u8>>()
            );
        }
        ctx.stop();
    });
    b.sim.run();
    assert!(b.monitor.is_empty(), "violations: {:?}", b.monitor.to_vec());
}

#[test]
fn pin_level_is_slower_than_tl_for_the_same_work() {
    // The same 10 writes directly against the memory (TL) vs through the pin
    // FSMs: the pin path must consume simulated cycles, the TL path none
    // (zero-latency memory).
    let tl_time = {
        let sim = Simulation::new();
        let mem = Arc::new(Memory::new("ram", 4096));
        let port = OcpMasterPort::bind(MasterId(0), mem);
        sim.spawn_thread("pe", move |ctx| {
            for i in 0..10u64 {
                port.write(ctx, i * 8, vec![0; 8]).unwrap();
            }
        });
        sim.run().time
    };
    let pin_time = {
        let b = bench(0);
        let port = b.port.clone();
        b.sim.spawn_thread("pe", move |ctx| {
            for i in 0..10u64 {
                port.write(ctx, i * 8, vec![0; 8]).unwrap();
            }
            ctx.stop();
        });
        b.sim.run().time
    };
    assert_eq!(tl_time, SimTime::ZERO);
    assert!(pin_time >= SimTime::ZERO + SimDur::ns(100));
}
