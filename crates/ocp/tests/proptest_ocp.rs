//! Property-based tests of the OCP layer: memory semantics under random
//! access sequences, router decode totality, and beat arithmetic.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use shiptlm_kernel::prelude::*;
use shiptlm_ocp::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The memory model behaves like a byte array under any in-bounds
    /// write/read sequence issued through the transaction interface.
    #[test]
    fn memory_matches_reference_model(
        ops in proptest::collection::vec(
            (0u64..240, proptest::collection::vec(any::<u8>(), 1..16), any::<bool>()),
            1..24,
        )
    ) {
        let sim = Simulation::new();
        let mem = Arc::new(Memory::new("ram", 256));
        let port = OcpMasterPort::bind(MasterId(0), mem);
        let mismatch = Arc::new(Mutex::new(None));
        {
            let mismatch = Arc::clone(&mismatch);
            sim.spawn_thread("m", move |ctx| {
                let mut model = vec![0u8; 256];
                for (addr, data, is_write) in &ops {
                    let len = data.len().min(256 - *addr as usize);
                    if len == 0 { continue; }
                    if *is_write {
                        port.write(ctx, *addr, data[..len].to_vec()).unwrap();
                        model[*addr as usize..*addr as usize + len]
                            .copy_from_slice(&data[..len]);
                    } else {
                        let got = port.read(ctx, *addr, len).unwrap();
                        let want = &model[*addr as usize..*addr as usize + len];
                        if got != want {
                            *mismatch.lock().unwrap() =
                                Some(format!("at {addr:#x}: {got:?} != {want:?}"));
                            return;
                        }
                    }
                }
            });
        }
        sim.run();
        prop_assert!(mismatch.lock().unwrap().is_none(), "{:?}", mismatch.lock().unwrap());
    }

    /// Every in-range address routes; every out-of-range address yields a
    /// decode error — the router is total and never panics.
    #[test]
    fn router_decode_is_total(addr in 0u64..0x4000) {
        let sim = Simulation::new();
        let mut router = Router::new("map");
        router.map(0x100..0x200, Arc::new(Memory::new("a", 0x100)), true);
        router.map(0x1000..0x2000, Arc::new(Memory::new("b", 0x1000)), true);
        let port = OcpMasterPort::bind(MasterId(0), Arc::new(router));
        let outcome = Arc::new(Mutex::new(None));
        {
            let outcome = Arc::clone(&outcome);
            sim.spawn_thread("m", move |ctx| {
                *outcome.lock().unwrap() = Some(port.read(ctx, addr, 1));
            });
        }
        sim.run();
        let result = outcome.lock().unwrap().take().unwrap();
        let mapped = (0x100..0x200).contains(&addr) || (0x1000..0x2000).contains(&addr);
        match (mapped, result) {
            (true, Ok(d)) => prop_assert_eq!(d.len(), 1),
            (false, Err(OcpError::AddressDecode { addr: a })) => prop_assert_eq!(a, addr),
            (m, r) => prop_assert!(false, "mapped={m}, result={r:?}"),
        }
    }

    /// Beat arithmetic: beats * word_bytes always covers the payload, with
    /// less than one word of slack.
    #[test]
    fn beats_cover_payload(len in 0usize..5000, word in 1usize..32) {
        let req = OcpRequest::read(0, len);
        let beats = req.beats(word) as usize;
        prop_assert!(beats * word >= len);
        prop_assert!(beats >= 1);
        if len > 0 {
            prop_assert!((beats - 1) * word < len);
        }
    }

    /// Request constructors preserve their inputs.
    #[test]
    fn request_constructors_roundtrip(addr in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let w = OcpRequest::write(addr, data.clone());
        prop_assert_eq!(w.addr, addr);
        prop_assert_eq!(w.cmd.len(), data.len());
        prop_assert_eq!(w.cmd.mcmd(), MCmd::Write);
        let r = OcpRequest::read(addr, data.len());
        prop_assert_eq!(r.cmd.mcmd(), MCmd::Read);
        prop_assert_eq!(r.cmd.len(), data.len());
    }
}
