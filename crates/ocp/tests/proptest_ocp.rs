//! Randomized tests of the OCP layer: memory semantics under random access
//! sequences, router decode totality, and beat arithmetic.
//!
//! Inputs come from a deterministic seeded [`Rng`], so each case reproduces
//! from its iteration index.

use std::sync::{Arc, Mutex};

use shiptlm_kernel::prelude::*;
use shiptlm_kernel::rng::Rng;
use shiptlm_ocp::prelude::*;

/// The memory model behaves like a byte array under any in-bounds
/// write/read sequence issued through the transaction interface.
#[test]
fn memory_matches_reference_model() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x0c90_0000 + case);
        let ops: Vec<(u64, Vec<u8>, bool)> = (0..rng.gen_range_usize(1, 24))
            .map(|_| {
                let addr = rng.gen_range_u64(0, 240);
                let len = rng.gen_range_usize(1, 16);
                (addr, rng.bytes(len), rng.gen_bool())
            })
            .collect();

        let sim = Simulation::new();
        let mem = Arc::new(Memory::new("ram", 256));
        let port = OcpMasterPort::bind(MasterId(0), mem);
        let mismatch = Arc::new(Mutex::new(None));
        {
            let mismatch = Arc::clone(&mismatch);
            sim.spawn_thread("m", move |ctx| {
                let mut model = vec![0u8; 256];
                for (addr, data, is_write) in &ops {
                    let len = data.len().min(256 - *addr as usize);
                    if len == 0 {
                        continue;
                    }
                    if *is_write {
                        port.write(ctx, *addr, data[..len].to_vec()).unwrap();
                        model[*addr as usize..*addr as usize + len].copy_from_slice(&data[..len]);
                    } else {
                        let got = port.read(ctx, *addr, len).unwrap();
                        let want = &model[*addr as usize..*addr as usize + len];
                        if got != want {
                            *mismatch.lock().unwrap() =
                                Some(format!("at {addr:#x}: {got:?} != {want:?}"));
                            return;
                        }
                    }
                }
            });
        }
        sim.run();
        let m = mismatch.lock().unwrap();
        assert!(m.is_none(), "case {case}: {m:?}");
    }
}

/// Every in-range address routes; every out-of-range address yields a
/// decode error — the router is total and never panics.
#[test]
fn router_decode_is_total() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x0c90_1000 + case);
        // Bias half the cases into the mapped windows so both arms get
        // exercised.
        let addr = if rng.gen_bool() {
            if rng.gen_bool() {
                rng.gen_range_u64(0x100, 0x200)
            } else {
                rng.gen_range_u64(0x1000, 0x2000)
            }
        } else {
            rng.gen_range_u64(0, 0x4000)
        };

        let sim = Simulation::new();
        let mut router = Router::new("map");
        router.map(0x100..0x200, Arc::new(Memory::new("a", 0x100)), true);
        router.map(0x1000..0x2000, Arc::new(Memory::new("b", 0x1000)), true);
        let port = OcpMasterPort::bind(MasterId(0), Arc::new(router));
        let outcome = Arc::new(Mutex::new(None));
        {
            let outcome = Arc::clone(&outcome);
            sim.spawn_thread("m", move |ctx| {
                *outcome.lock().unwrap() = Some(port.read(ctx, addr, 1));
            });
        }
        sim.run();
        let result = outcome.lock().unwrap().take().unwrap();
        let mapped = (0x100..0x200).contains(&addr) || (0x1000..0x2000).contains(&addr);
        match (mapped, result) {
            (true, Ok(d)) => assert_eq!(d.len(), 1, "case {case}"),
            (false, Err(OcpError::AddressDecode { addr: a })) => {
                assert_eq!(a, addr, "case {case}")
            }
            (m, r) => panic!("case {case}: mapped={m}, result={r:?}"),
        }
    }
}

/// Beat arithmetic: beats * word_bytes always covers the payload, with
/// less than one word of slack.
#[test]
fn beats_cover_payload() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x0c90_2000 + case);
        let len = rng.gen_range_usize(0, 5000);
        let word = rng.gen_range_usize(1, 32);
        let req = OcpRequest::read(0, len);
        let beats = req.beats(word) as usize;
        assert!(beats * word >= len, "case {case}");
        assert!(beats >= 1, "case {case}");
        if len > 0 {
            assert!((beats - 1) * word < len, "case {case}");
        }
    }
}

/// Request constructors preserve their inputs.
#[test]
fn request_constructors_roundtrip() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x0c90_3000 + case);
        let addr = rng.next_u64();
        let dlen = rng.gen_range_usize(0, 64);
        let data = rng.bytes(dlen);
        let w = OcpRequest::write(addr, data.clone());
        assert_eq!(w.addr, addr, "case {case}");
        assert_eq!(w.cmd.len(), data.len(), "case {case}");
        assert_eq!(w.cmd.mcmd(), MCmd::Write, "case {case}");
        let r = OcpRequest::read(addr, data.len());
        assert_eq!(r.cmd.mcmd(), MCmd::Read, "case {case}");
        assert_eq!(r.cmd.len(), data.len(), "case {case}");
    }
}
