//! HW/SW partitioning through the flow: automatic eSW generation with
//! unchanged PE source, content equivalence against the pure-HW mapping,
//! and the overhead ordering of the HW/SW path.

use shiptlm::prelude::*;

#[test]
fn sw_partition_preserves_content_vs_hw_mapping() {
    let app = workload::rpc(1, 4, 64, SimDur::ns(300));
    let ca = run_component_assembly(&app).unwrap();
    let hw = run_mapped(&app, &ca.roles, &ArchSpec::plb()).unwrap();
    let sw = run_partitioned(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["client0"]),
    )
    .unwrap();
    assert!(hw
        .output
        .log
        .content_equivalent(&sw.mapped.output.log)
        .is_ok());
    assert!(
        ca.output
            .log
            .content_equivalent(&sw.mapped.output.log)
            .is_ok(),
        "eSW run must match the component-assembly reference"
    );
}

#[test]
fn hwsw_path_costs_more_than_hw_path() {
    let app = workload::rpc(1, 6, 128, SimDur::ZERO);
    let ca = run_component_assembly(&app).unwrap();
    let hw = run_mapped(&app, &ca.roles, &ArchSpec::plb()).unwrap();
    let sw = run_partitioned(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["client0"]),
    )
    .unwrap();
    assert!(
        sw.mapped.output.sim_time > hw.output.sim_time,
        "HW/SW ({}) must exceed pure HW ({})",
        sw.mapped.output.sim_time,
        hw.output.sim_time
    );
    assert!(sw.rtos.ctx_switches > 0, "the RTOS must have scheduled");
}

#[test]
fn sw_slave_partition_works() {
    // Move the *server* into software: HW master drives the mailbox, the SW
    // task drains it through the driver's RX path.
    let app = workload::rpc(1, 3, 48, SimDur::ZERO);
    let ca = run_component_assembly(&app).unwrap();
    let sw = run_partitioned(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["server0"]),
    )
    .unwrap();
    assert!(ca
        .output
        .log
        .content_equivalent(&sw.mapped.output.log)
        .is_ok());
}

#[test]
fn multiple_sw_tasks_share_the_cpu() {
    // Both clients in software: two RTOS tasks on one CPU, two HW servers.
    let app = workload::rpc(2, 3, 48, SimDur::ns(200));
    let ca = run_component_assembly(&app).unwrap();
    let sw = run_partitioned(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["client0", "client1"]),
    )
    .unwrap();
    assert!(ca
        .output
        .log
        .content_equivalent(&sw.mapped.output.log)
        .is_ok());
    assert!(sw.rtos.ctx_switches >= 2);
}

#[test]
fn unknown_pe_in_partition_is_rejected() {
    let app = workload::rpc(1, 1, 16, SimDur::ZERO);
    let ca = run_component_assembly(&app).unwrap();
    assert!(matches!(
        run_partitioned(
            &app,
            &ca.roles,
            &ArchSpec::plb(),
            &Partition::software(["ghost"]),
        ),
        Err(PartitionError::UnknownPe(_))
    ));
}

#[test]
fn pipeline_with_sw_middle_stage() {
    // A pipeline whose middle stage is software: slave on the input channel,
    // master on the output channel — both driver paths in one task.
    let app = workload::pipeline(3, 4, 64, SimDur::ZERO);
    let ca = run_component_assembly(&app).unwrap();
    let sw = run_partitioned(
        &app,
        &ca.roles,
        &ArchSpec::plb(),
        &Partition::software(["stage0"]),
    )
    .unwrap();
    assert!(ca
        .output
        .log
        .content_equivalent(&sw.mapped.output.log)
        .is_ok());
}

#[test]
fn finer_polling_reduces_hwsw_latency() {
    let run = |poll: SimDur| {
        let app = workload::rpc(1, 4, 64, SimDur::us(20));
        let ca = run_component_assembly(&app).unwrap();
        run_partitioned(
            &app,
            &ca.roles,
            &ArchSpec::plb(),
            &Partition::software(["client0"]).with_poll_interval(poll),
        )
        .unwrap()
        .mapped
        .output
        .sim_time
    };
    let coarse = run(SimDur::us(50));
    let fine = run(SimDur::us(1));
    assert!(
        fine < coarse,
        "fine polling {fine} must beat coarse {coarse}"
    );
}

#[test]
fn missing_role_is_a_partition_error_not_a_panic() {
    let app = workload::rpc(1, 2, 16, SimDur::ZERO);
    let err = run_partitioned(
        &app,
        &RoleMap::default(),
        &ArchSpec::plb(),
        &Partition::software(["server0"]),
    )
    .unwrap_err();
    assert!(matches!(err, PartitionError::Roles(_)));
    assert!(err.to_string().contains("role map misses channel"));
}
