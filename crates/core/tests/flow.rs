//! The full design flow: three abstraction levels, equivalence checking and
//! the expected timing/effort ordering (paper Figure 1 and §1's simulation
//! speed claim).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use shiptlm::prelude::*;

#[test]
fn full_flow_pipeline_all_three_levels() {
    let app = workload::pipeline(4, 8, 128, SimDur::ns(100));
    let run = DesignFlow::new(app, ArchSpec::plb())
        .with_pin_level()
        .run()
        .unwrap();

    // Level 1: only the PEs' own compute time passes (communication is
    // untimed), so it is the fastest level.
    assert!(!run.component_assembly.output.log.is_empty());

    // Level 2: CCATB — real bus cycles on top of compute time.
    let ccatb = &run.ccatb;
    assert!(ccatb.output.sim_time > run.component_assembly.output.sim_time);
    assert!(ccatb.bus.transactions > 0);

    // Level 3: pin-accurate — strictly slower in simulated time (per-beat
    // pin handshakes) and strictly more scheduler work.
    let pin = run.pin_accurate.as_ref().unwrap();
    assert!(
        pin.output.sim_time > ccatb.output.sim_time,
        "pin {} !> ccatb {}",
        pin.output.sim_time,
        ccatb.output.sim_time
    );
    assert!(
        pin.output.delta_cycles > ccatb.output.delta_cycles,
        "pin model must cost more delta cycles"
    );
    assert!(
        ccatb.output.delta_cycles > run.component_assembly.output.delta_cycles,
        "ccatb must cost more delta cycles than untimed"
    );

    // Report carries one row per level.
    let report = run.report();
    assert_eq!(report.rows().len(), 3);
    assert_eq!(report.rows()[0].label, "component-assembly");
    // Same delivered content everywhere.
    let msgs: Vec<u64> = report.rows().iter().map(|r| r.messages).collect();
    assert_eq!(msgs[0], msgs[1]);
    assert_eq!(msgs[1], msgs[2]);
}

#[test]
fn flow_on_rpc_app_with_crossbar() {
    let app = workload::rpc(2, 4, 64, SimDur::ns(200));
    let run = DesignFlow::new(app, ArchSpec::crossbar()).run().unwrap();
    assert_eq!(run.component_assembly.roles.master_of.len(), 2);
    assert!(run.ccatb.bus.transactions > 0);
}

#[test]
fn equivalence_violation_is_reported() {
    // A pathological app whose producer emits different content on every
    // elaboration (simulating a refinement bug): the flow must flag it.
    let counter = Arc::new(AtomicU32::new(0));
    let mut app = AppSpec::new("buggy");
    {
        let counter = Arc::clone(&counter);
        app.add_pe("p", move || {
            let run_idx = counter.fetch_add(1, Ordering::SeqCst);
            Box::new(move |ctx, ports| {
                ports[0].send(ctx, &run_idx).unwrap();
            })
        });
    }
    app.add_pe("c", || {
        Box::new(|ctx, ports| {
            let _: u32 = ports[0].recv(ctx).unwrap();
        })
    });
    app.connect("ch", "p", "c");
    let err = DesignFlow::new(app, ArchSpec::plb()).run().unwrap_err();
    match err {
        FlowError::Equivalence { level, .. } => assert_eq!(level, Level::Ccatb),
        other => panic!("expected equivalence error, got {other}"),
    }
}

#[test]
fn mapping_failure_propagates() {
    let mut app = AppSpec::new("dead");
    app.add_pe("a", || Box::new(|_ctx, _ports| {}));
    app.add_pe("b", || Box::new(|_ctx, _ports| {}));
    app.connect("never", "a", "b");
    assert!(matches!(
        DesignFlow::new(app, ArchSpec::plb()).run(),
        Err(FlowError::Map(_))
    ));
}

#[test]
fn faster_arch_finishes_sooner_through_the_flow() {
    let run_with = |arch: ArchSpec| {
        let app = workload::pipeline(3, 16, 256, SimDur::ZERO);
        DesignFlow::new(app, arch)
            .run()
            .unwrap()
            .ccatb
            .output
            .sim_time
    };
    let plb = run_with(ArchSpec::plb());
    let opb = run_with(ArchSpec::opb());
    assert!(plb < opb, "plb {plb} must beat opb {opb}");
}

#[test]
fn pin_level_equivalence_on_rpc() {
    let app = workload::rpc(1, 3, 48, SimDur::ZERO);
    let run = DesignFlow::new(app, ArchSpec::plb())
        .with_pin_level()
        .run()
        .unwrap();
    assert!(run.pin_accurate.is_some());
}
