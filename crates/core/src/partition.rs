//! HW/SW partitioning and automatic eSW generation (paper §4).
//!
//! "The ultimate goal of the proposed design methodology is to use SystemC
//! as a unifying system specification language and, after HW/SW
//! partitioning, to generate eSW automatically from the SystemC code.
//! Moreover, HW/SW communication should be established without requiring any
//! changes to the source code."
//!
//! [`run_partitioned`] re-elaborates an application with a subset of PEs
//! moved into software: those PEs run as RTOS tasks on a simulated CPU, and
//! their SHIP ports are backed by the device driver + communication library
//! (the SW adapter), while the mailbox adapters on the bus form the HW
//! adapter. PE behaviour source is reused verbatim — the two constraints of
//! §4 are checked instead:
//!
//! 1. partitioning happens on the component-assembly model (roles come from
//!    [`run_component_assembly`](shiptlm_explore::mapper::run_component_assembly));
//! 2. eSW PEs communicate exclusively through SHIP channels (true by
//!    construction of [`AppSpec`]).

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use shiptlm_cam::wrapper::{map_channel, WrapperConfig, ADAPTER_SIZE};
use shiptlm_explore::app::AppSpec;
use shiptlm_explore::arch::{build_interconnect, ArchSpec};
use shiptlm_explore::mapper::{MappedRun, RoleMap, RunOptions, RunOutput, MAP_BASE};
use shiptlm_hwsw::cpu::{Cpu, SwChannelBinding};
use shiptlm_hwsw::rtos::RtosStats;
use shiptlm_kernel::sim::Simulation;
use shiptlm_kernel::time::SimDur;
use shiptlm_ocp::tl::MasterId;
use shiptlm_ship::channel::ShipPort;
use shiptlm_ship::record::TransactionLog;

/// Which PEs become embedded software.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partition {
    /// Names of PEs implemented as eSW tasks on the CPU.
    pub sw: BTreeSet<String>,
    /// Status polling interval of the SW drivers.
    pub poll_interval: SimDur,
    /// Priority assigned to the first SW task; later ones get lower values.
    pub base_priority: u8,
}

impl Partition {
    /// Moves the named PEs to software with a 1 µs polling driver.
    pub fn software<I, S>(pes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Partition {
            sw: pes.into_iter().map(Into::into).collect(),
            poll_interval: SimDur::us(1),
            base_priority: 32,
        }
    }

    /// Overrides the driver polling interval.
    pub fn with_poll_interval(mut self, d: SimDur) -> Self {
        self.poll_interval = d;
        self
    }
}

/// Partitioning validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A PE named in the partition does not exist in the app.
    UnknownPe(String),
    /// The role map does not cover every channel of the app.
    Roles(shiptlm_explore::mapper::MapError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::UnknownPe(p) => write!(f, "partition names unknown PE '{p}'"),
            PartitionError::Roles(e) => write!(f, "partitioning failed: {e}"),
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::UnknownPe(_) => None,
            PartitionError::Roles(e) => Some(e),
        }
    }
}

impl From<shiptlm_explore::mapper::MapError> for PartitionError {
    fn from(e: shiptlm_explore::mapper::MapError) -> Self {
        PartitionError::Roles(e)
    }
}

/// Result of a partitioned run: the mapped-run artifacts plus RTOS counters.
#[derive(Debug)]
pub struct PartitionedRun {
    /// Log, timing and interconnect statistics.
    pub mapped: MappedRun,
    /// CPU scheduler counters.
    pub rtos: RtosStats,
}

/// Re-elaborates `app` with `partition.sw` PEs generated as eSW tasks, the
/// rest staying hardware; channels are mapped onto `arch` as usual.
///
/// # Errors
///
/// Returns a [`PartitionError`] when the partition names an unknown PE or
/// `roles` does not cover every channel of `app`.
pub fn run_partitioned(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
    partition: &Partition,
) -> Result<PartitionedRun, PartitionError> {
    run_partitioned_with(app, roles, arch, partition, &RunOptions::default())
}

/// [`run_partitioned`] with explicit [`RunOptions`] (e.g. the transaction
/// recorder, which captures the SW driver doorbell/IRQ spans).
///
/// # Errors
///
/// Returns a [`PartitionError`] when the partition names an unknown PE or
/// `roles` does not cover every channel of `app`.
pub fn run_partitioned_with(
    app: &AppSpec,
    roles: &RoleMap,
    arch: &ArchSpec,
    partition: &Partition,
    opts: &RunOptions,
) -> Result<PartitionedRun, PartitionError> {
    for pe in &partition.sw {
        if app.pe(pe).is_none() {
            return Err(PartitionError::UnknownPe(pe.clone()));
        }
    }
    let started = Instant::now();
    let sim = Simulation::new();
    opts.arm(&sim);
    let h = sim.handle();
    let log = TransactionLog::new();

    let wrapper_cfg = WrapperConfig {
        burst_bytes: arch.burst_bytes,
        poll_interval: arch.poll_interval,
        rx_capacity: arch.rx_capacity,
    };

    // Mailbox adapter per channel (HW adapters; also the HW half of every
    // HW/SW interface).
    let mut pendings = Vec::new();
    let mut bases = Vec::new();
    let mut slaves: Vec<(std::ops::Range<u64>, Arc<dyn shiptlm_ocp::tl::OcpTarget>)> = Vec::new();
    for (k, c) in app.channels().iter().enumerate() {
        let base = MAP_BASE + k as u64 * ADAPTER_SIZE;
        let master_pe = roles.master_pe(&c.name)?;
        let (ml, sl) = if master_pe == &c.a {
            (c.a.as_str(), c.b.as_str())
        } else {
            (c.b.as_str(), c.a.as_str())
        };
        let pending = map_channel(&h, &c.name, base, wrapper_cfg.clone(), (ml, sl));
        slaves.push((base..base + ADAPTER_SIZE, pending.adapter.clone() as _));
        pendings.push(pending);
        bases.push(base);
    }
    let interconnect = build_interconnect(&h, arch, slaves)?;

    // The CPU is one more bus master, after all HW PEs.
    let cpu = Cpu::new(
        &h,
        "cpu0",
        interconnect.master_port(MasterId(app.pes().len())),
    );

    let master_id_of: BTreeMap<&str, MasterId> = app
        .pes()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), MasterId(i)))
        .collect();

    // HW PEs get wrapper/adapter ports; SW PEs get driver bindings.
    let mut hw_ports: BTreeMap<String, Vec<ShipPort>> = BTreeMap::new();
    let mut sw_bindings: BTreeMap<String, Vec<SwChannelBinding>> = BTreeMap::new();
    for ((pending, c), base) in pendings.iter().zip(app.channels()).zip(&bases) {
        let master_pe = roles.master_of[&c.name].clone();
        let slave_pe = if master_pe == c.a {
            c.b.clone()
        } else {
            c.a.clone()
        };
        // Master end.
        if partition.sw.contains(&master_pe) {
            sw_bindings.entry(master_pe.clone()).or_default().push(
                SwChannelBinding::master_polling(
                    &c.name,
                    &master_pe,
                    *base,
                    partition.poll_interval,
                )
                .with_burst(arch.burst_bytes),
            );
        } else {
            let bus_port = interconnect.master_port(master_id_of[master_pe.as_str()]);
            let mport = pending.bind(&bus_port);
            mport.attach_recorder(log.clone());
            let mport = opts.hook_port(&c.name, &master_pe, true, mport);
            hw_ports.entry(master_pe.clone()).or_default().push(mport);
        }
        // Slave end.
        if partition.sw.contains(&slave_pe) {
            sw_bindings.entry(slave_pe.clone()).or_default().push(
                SwChannelBinding::slave_polling(&c.name, &slave_pe, *base, partition.poll_interval)
                    .with_burst(arch.burst_bytes),
            );
        } else {
            let sport = pending.slave_port.clone();
            sport.attach_recorder(log.clone());
            let sport = opts.hook_port(&c.name, &slave_pe, true, sport);
            hw_ports.entry(slave_pe.clone()).or_default().push(sport);
        }
    }

    // Spawn HW PEs as kernel processes, SW PEs as RTOS tasks.
    let mut sw_index = 0u8;
    for pe in app.pes() {
        let behavior = app.behavior(&pe.name);
        if partition.sw.contains(&pe.name) {
            let bindings = sw_bindings.remove(&pe.name).unwrap_or_default();
            let prio = partition.base_priority.saturating_sub(sw_index);
            sw_index += 1;
            let log = log.clone();
            cpu.spawn_sw_pe(&pe.name, prio, bindings, move |ctx, ports| {
                for p in &ports {
                    p.attach_recorder(log.clone());
                }
                behavior(ctx, ports);
            });
        } else {
            let ports = hw_ports.remove(&pe.name).unwrap_or_default();
            sim.spawn_thread(&pe.name, move |ctx| behavior(ctx, ports));
        }
    }
    let result = opts.execute(&sim);

    Ok(PartitionedRun {
        mapped: MappedRun {
            output: RunOutput {
                log,
                sim_time: result
                    .time
                    .saturating_since(shiptlm_kernel::time::SimTime::ZERO),
                delta_cycles: sim.delta_count(),
                wall_seconds: started.elapsed().as_secs_f64(),
                txn: opts.collect(&sim),
                metrics: opts.collect_metrics(&sim),
                reason: result.reason,
                diagnosis: RunOptions::diagnose_blocked(&sim),
            },
            bus: interconnect.stats(),
        },
        rtos: cpu.rtos.stats(),
    })
}
