//! # shiptlm
//!
//! A Rust reproduction of **W. Klingauf, "Systematic Transaction Level
//! Modeling of Embedded Systems with SystemC" (DATE 2005)**: a TLM design
//! flow that develops the HW and SW components of an embedded system over
//! the lightweight **SHIP** transaction protocol, enabling fast
//! communication architecture exploration, rapid prototyping and early
//! embedded-software development.
//!
//! The stack (one crate per subsystem, re-exported here):
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | design flow | [`flow`] | the three-model refinement with equivalence checking |
//! | exploration | [`explore`] | app netlists, automatic mapping, sweeps, reports |
//! | HW/SW | [`hwsw`] | RTOS, CPU model, device driver, eSW synthesis |
//! | CAMs | [`cam`] | PLB/OPB/crossbar models, wrappers, accessors |
//! | OCP | [`ocp`] | TL payloads/transport, memory, pin-level FSMs |
//! | SHIP | [`ship`] | the four-call channel, serialization, roles, recording |
//! | kernel | [`kernel`] | discrete-event simulation with SystemC semantics |
//!
//! ## Quickstart
//!
//! ```
//! use shiptlm::prelude::*;
//!
//! // A platform-independent application…
//! let mut app = AppSpec::new("hello");
//! app.add_pe("producer", || Box::new(|ctx, ports: Vec<ShipPort>| {
//!     for i in 0..8u32 {
//!         ports[0].send(ctx, &i).unwrap();
//!     }
//! }));
//! app.add_pe("consumer", || Box::new(|ctx, ports: Vec<ShipPort>| {
//!     for i in 0..8u32 {
//!         assert_eq!(ports[0].recv::<u32>(ctx).unwrap(), i);
//!     }
//! }));
//! app.connect("link", "producer", "consumer");
//!
//! // …refined through the flow onto a PLB-like bus.
//! let run = DesignFlow::new(app, ArchSpec::plb()).run().unwrap();
//! assert_eq!(run.component_assembly.roles.master_of["link"], "producer");
//! assert!(run.ccatb.bus.transactions > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flow;
pub mod partition;

pub use shiptlm_cam as cam;
pub use shiptlm_explore as explore;
pub use shiptlm_hwsw as hwsw;
pub use shiptlm_kernel as kernel;
pub use shiptlm_ocp as ocp;
pub use shiptlm_ship as ship;

/// One-stop imports for applications using the full stack.
pub mod prelude {
    pub use crate::flow::{DesignFlow, FlowError, FlowRun, Level};
    pub use crate::partition::{
        run_partitioned, run_partitioned_with, Partition, PartitionError, PartitionedRun,
    };
    pub use shiptlm_cam::prelude::*;
    pub use shiptlm_explore::prelude::*;
    pub use shiptlm_hwsw::prelude::*;
    pub use shiptlm_kernel::prelude::*;
    pub use shiptlm_ocp::prelude::*;
    pub use shiptlm_ship::prelude::*;
}
