//! The systematic design flow of the paper's Figure 1.
//!
//! One application specification is refined through three models, each bound
//! to its predetermined communication protocol:
//!
//! 1. **Component-assembly model** — abstract SHIP channels, untimed;
//!    master/slave roles are detected here.
//! 2. **CCATB model** — channels mapped onto a communication architecture
//!    model (CAM) via SHIP↔OCP wrappers; cycle-count-accurate boundary
//!    timing.
//! 3. **Pin-accurate model** — master PEs attach through pin-level OCP
//!    accessors; every transaction crosses real signal pins.
//!
//! PE source code is reused verbatim at every level, and transaction logs
//! are checked for content equivalence across levels.

use std::error::Error;
use std::fmt;

use shiptlm_explore::app::AppSpec;
use shiptlm_explore::arch::ArchSpec;
use shiptlm_explore::mapper::{
    run_component_assembly_with, run_mapped_with, run_pin_accurate_with, CaRun, MapError,
    MappedRun, RunOptions,
};
use shiptlm_explore::metrics::{Report, RunMetrics};
use shiptlm_explore::pool::WorkerPool;
use shiptlm_ship::record::EquivalenceError;

/// The three abstraction levels of the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Untimed SHIP channels.
    ComponentAssembly,
    /// Wrappers + CAM, cycle-count accurate at transaction boundaries.
    Ccatb,
    /// Pin-level OCP accessors in front of the CAM.
    PinAccurate,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::ComponentAssembly => "component-assembly",
            Level::Ccatb => "ccatb",
            Level::PinAccurate => "pin-accurate",
        })
    }
}

/// Failure of a flow run.
#[derive(Debug)]
pub enum FlowError {
    /// Role detection / mapping failed.
    Map(MapError),
    /// A refined level diverged from the component-assembly reference.
    Equivalence {
        /// The diverging level.
        level: Level,
        /// The divergence details.
        source: EquivalenceError,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Map(e) => write!(f, "mapping failed: {e}"),
            FlowError::Equivalence { level, source } => {
                write!(f, "{level} model diverged from the reference: {source}")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Map(e) => Some(e),
            FlowError::Equivalence { source, .. } => Some(source),
        }
    }
}

impl From<MapError> for FlowError {
    fn from(e: MapError) -> Self {
        FlowError::Map(e)
    }
}

/// Results of running the full flow.
#[derive(Debug)]
pub struct FlowRun {
    /// The component-assembly run (reference) with detected roles.
    pub component_assembly: CaRun,
    /// The CCATB run.
    pub ccatb: MappedRun,
    /// The pin-accurate run, when requested.
    pub pin_accurate: Option<MappedRun>,
}

impl FlowRun {
    /// Per-level metrics as a comparison table.
    pub fn report(&self) -> Report {
        let mut report = Report::new();
        let ca = &self.component_assembly.output;
        let mut row = RunMetrics::from_log(
            "component-assembly",
            &ca.log,
            ca.sim_time,
            None,
            ca.delta_cycles,
            ca.wall_seconds,
        );
        row.metrics = ca.metrics.clone();
        report.push(row);
        let mut row = RunMetrics::from_log(
            "ccatb",
            &self.ccatb.output.log,
            self.ccatb.output.sim_time,
            Some(self.ccatb.bus.clone()),
            self.ccatb.output.delta_cycles,
            self.ccatb.output.wall_seconds,
        );
        row.metrics = self.ccatb.output.metrics.clone();
        report.push(row);
        if let Some(pin) = &self.pin_accurate {
            let mut row = RunMetrics::from_log(
                "pin-accurate",
                &pin.output.log,
                pin.output.sim_time,
                Some(pin.bus.clone()),
                pin.output.delta_cycles,
                pin.output.wall_seconds,
            );
            row.metrics = pin.output.metrics.clone();
            report.push(row);
        }
        report
    }
}

/// Drives one application through the whole design flow.
///
/// ```
/// use shiptlm::flow::DesignFlow;
/// use shiptlm_explore::arch::ArchSpec;
/// use shiptlm_explore::workload;
/// use shiptlm_kernel::time::SimDur;
///
/// # fn main() -> Result<(), shiptlm::flow::FlowError> {
/// let app = workload::pipeline(3, 4, 64, SimDur::ZERO);
/// let run = DesignFlow::new(app, ArchSpec::plb()).run()?;
/// assert!(run.ccatb.bus.transactions > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DesignFlow {
    app: AppSpec,
    arch: ArchSpec,
    with_pin_level: bool,
    opts: RunOptions,
}

impl DesignFlow {
    /// Creates a flow for `app` targeting `arch`.
    ///
    /// The untimed role-detection run defaults to
    /// [`Backend::Auto`](shiptlm_explore::mapper::Backend): direct execution
    /// when the model qualifies, transparent DE fallback otherwise. Override
    /// with [`with_options`](Self::with_options).
    pub fn new(app: AppSpec, arch: ArchSpec) -> Self {
        DesignFlow {
            app,
            arch,
            with_pin_level: false,
            opts: RunOptions::default().with_backend(shiptlm_explore::mapper::Backend::Auto),
        }
    }

    /// Also elaborates and verifies the pin-accurate prototype level
    /// (slower to simulate).
    pub fn with_pin_level(mut self) -> Self {
        self.with_pin_level = true;
        self
    }

    /// Enables the transaction recorder on every level (`capacity` events
    /// per run); each run's trace is available as `output.txn` on the
    /// [`FlowRun`] members.
    pub fn with_recorder(mut self, capacity: usize) -> Self {
        self.opts.record_txns = Some(capacity);
        self
    }

    /// Enables the time-resolved metrics registry on every level with the
    /// given sim-time sampling window; each run's snapshot is available as
    /// `output.metrics` on the [`FlowRun`] members and rides along in
    /// [`FlowRun::report`] rows.
    pub fn with_metrics(mut self, window: shiptlm_kernel::time::SimDur) -> Self {
        self.opts.metrics = Some(window);
        self
    }

    /// Replaces the per-level [`RunOptions`] wholesale (timeouts, time
    /// limits, port hooks). Conformance harnesses use this to bound and
    /// instrument every level uniformly.
    pub fn with_options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Runs every level and checks cross-level content equivalence.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Map`] when role detection fails and
    /// [`FlowError::Equivalence`] when a refined level's transaction log
    /// diverges from the component-assembly reference.
    pub fn run(&self) -> Result<FlowRun, FlowError> {
        let ca = run_component_assembly_with(&self.app, &self.opts)?;
        let ccatb = run_mapped_with(&self.app, &ca.roles, &self.arch, &self.opts)?;
        ca.output
            .log
            .content_equivalent(&ccatb.output.log)
            .map_err(|source| FlowError::Equivalence {
                level: Level::Ccatb,
                source,
            })?;
        let pin_accurate = if self.with_pin_level {
            Some(run_pin_accurate_with(
                &self.app, &ca.roles, &self.arch, &self.opts,
            )?)
        } else {
            None
        };
        Self::check_and_assemble(ca, ccatb, pin_accurate)
    }

    /// Like [`DesignFlow::run`], but simulates the CCATB and pin-accurate
    /// levels concurrently on `pool` (the same persistent worker pool sweeps
    /// use — e.g. [`WorkerPool::global`]). The refined levels only depend on
    /// the component-assembly reference, never on each other, so
    /// overlapping them is free parallelism when the pin level is enabled;
    /// without it this is equivalent to [`DesignFlow::run`].
    ///
    /// # Errors
    ///
    /// As [`DesignFlow::run`]; on concurrent failures the CCATB level's
    /// error wins, matching the serial order.
    pub fn run_on(&self, pool: &WorkerPool) -> Result<FlowRun, FlowError> {
        if !self.with_pin_level {
            return self.run();
        }
        let ca = run_component_assembly_with(&self.app, &self.opts)?;
        let mut runs = pool.run_fallible(2, 2, 1, |i| {
            if i == 0 {
                run_mapped_with(&self.app, &ca.roles, &self.arch, &self.opts)
            } else {
                run_pin_accurate_with(&self.app, &ca.roles, &self.arch, &self.opts)
            }
        })?;
        let pin = runs.pop().expect("pin-accurate level ran");
        let ccatb = runs.pop().expect("ccatb level ran");
        Self::check_and_assemble(ca, ccatb, Some(pin))
    }

    fn check_and_assemble(
        ca: CaRun,
        ccatb: MappedRun,
        pin_accurate: Option<MappedRun>,
    ) -> Result<FlowRun, FlowError> {
        ca.output
            .log
            .content_equivalent(&ccatb.output.log)
            .map_err(|source| FlowError::Equivalence {
                level: Level::Ccatb,
                source,
            })?;
        if let Some(pin) = &pin_accurate {
            ca.output
                .log
                .content_equivalent(&pin.output.log)
                .map_err(|source| FlowError::Equivalence {
                    level: Level::PinAccurate,
                    source,
                })?;
        }
        Ok(FlowRun {
            component_assembly: ca,
            ccatb,
            pin_accurate,
        })
    }
}
