//! Liveness diagnosis through SHIP channels: deadlock reports that name the
//! blocked processes, the channel and the blocking call, and timeouts that
//! turn hangs into [`ShipError::Timeout`].

use std::sync::{Arc, Mutex};

use shiptlm_kernel::prelude::*;
use shiptlm_ship::prelude::*;

/// The acceptance scenario: two PEs each blocked in `recv`, both expecting
/// the other to send first. The diagnosis must name both processes, the
/// channel and the blocking call, and find the wait cycle.
#[test]
fn deadlocked_two_pe_example_is_diagnosed() {
    let sim = Simulation::new();
    let ch = ShipChannel::new(&sim.handle(), "link", ShipConfig::default());
    let (pa, pb) = ch.ports("producer", "consumer");
    sim.spawn_thread("producer", move |ctx| {
        // Waits for the consumer to speak first — it never will.
        let _ = pa.recv::<u32>(ctx);
    });
    sim.spawn_thread("consumer", move |ctx| {
        let _ = pb.recv::<u32>(ctx);
    });
    let result = sim.run();
    assert_eq!(result.reason, StopReason::Starved);

    let report = sim.diagnose();
    assert!(report.has_cycle(), "expected a wait cycle:\n{report}");
    let text = report.to_string();
    assert!(text.contains("producer"), "missing process name:\n{text}");
    assert!(text.contains("consumer"), "missing process name:\n{text}");
    assert!(
        text.contains("ship channel 'link'"),
        "missing channel:\n{text}"
    );
    assert!(text.contains("recv"), "missing blocking call:\n{text}");
    assert!(
        text.contains("DEADLOCK cycle"),
        "missing cycle line:\n{text}"
    );
}

/// A request cycle across two channels: each PE serves the other but both
/// fire their request first.
#[test]
fn cross_request_cycle_is_diagnosed() {
    let sim = Simulation::new();
    let ab = ShipChannel::new(&sim.handle(), "a_to_b", ShipConfig::default());
    let ba = ShipChannel::new(&sim.handle(), "b_to_a", ShipConfig::default());
    let (a_m, b_s) = ab.ports("pe_a", "pe_b");
    let (b_m, a_s) = ba.ports("pe_b", "pe_a");
    sim.spawn_thread("pe_a", move |ctx| {
        // Request first, serve later: needs pe_b to answer, but pe_b is
        // symmetric — classic request cycle.
        let _ = a_m.request::<u32, u32>(ctx, &1);
        let q: u32 = a_s.recv(ctx).unwrap();
        a_s.reply(ctx, &q).unwrap();
    });
    sim.spawn_thread("pe_b", move |ctx| {
        let _ = b_m.request::<u32, u32>(ctx, &2);
        let q: u32 = b_s.recv(ctx).unwrap();
        b_s.reply(ctx, &q).unwrap();
    });
    let result = sim.run();
    assert_eq!(result.reason, StopReason::Starved);

    let report = sim.diagnose();
    assert!(report.has_cycle(), "expected a wait cycle:\n{report}");
    let text = report.to_string();
    assert!(text.contains("pe_a"), "{text}");
    assert!(text.contains("pe_b"), "{text}");
    assert!(text.contains("request"), "{text}");
}

/// A healthy pipeline that simply ran out of work must not be reported as
/// deadlocked (no false positives from completed processes).
#[test]
fn finished_run_reports_no_cycle() {
    let sim = Simulation::new();
    let ch = ShipChannel::new(&sim.handle(), "ok", ShipConfig::default());
    let (tx, rx) = ch.ports("p", "c");
    sim.spawn_thread("p", move |ctx| {
        for i in 0..4u32 {
            tx.send(ctx, &i).unwrap();
        }
    });
    sim.spawn_thread("c", move |ctx| {
        for _ in 0..4 {
            let _: u32 = rx.recv(ctx).unwrap();
        }
    });
    let result = sim.run();
    assert_eq!(result.reason, StopReason::Starved);
    let report = sim.diagnose();
    assert!(!report.has_cycle(), "false positive:\n{report}");
    assert!(report.blocked.is_empty(), "no process should be blocked");
}

/// A `request` with a configured timeout returns [`ShipError::Timeout`]
/// instead of hanging when the slave never replies.
#[test]
fn timed_out_request_returns_timeout_error() {
    let sim = Simulation::new();
    let ch = ShipChannel::new(
        &sim.handle(),
        "rpc",
        ShipConfig {
            timeout: Some(SimDur::us(5)),
            ..ShipConfig::default()
        },
    );
    let (master, _slave) = ch.ports("cpu", "acc");
    let got = Arc::new(Mutex::new(None));
    {
        let got = Arc::clone(&got);
        sim.spawn_thread("cpu", move |ctx| {
            *got.lock().unwrap() = Some(master.request::<u32, u32>(ctx, &7));
        });
    }
    // No slave process at all: the reply never comes.
    sim.run();
    let err = got
        .lock()
        .unwrap()
        .take()
        .expect("request should have completed with an error")
        .unwrap_err();
    match err {
        ShipError::Timeout {
            channel,
            call,
            ref detail,
            ..
        } => {
            assert_eq!(channel, "rpc");
            assert_eq!(call, "request");
            assert!(
                detail.contains("owed"),
                "detail should snapshot owed replies: {detail}"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// `recv` with a timeout on an idle channel errors out instead of blocking
/// the simulation forever.
#[test]
fn timed_out_recv_returns_timeout_error() {
    let sim = Simulation::new();
    let ch = ShipChannel::new(
        &sim.handle(),
        "idle",
        ShipConfig {
            timeout: Some(SimDur::ns(500)),
            ..ShipConfig::default()
        },
    );
    let (_tx, rx) = ch.ports("p", "c");
    let got = Arc::new(Mutex::new(None));
    {
        let got = Arc::clone(&got);
        sim.spawn_thread("c", move |ctx| {
            *got.lock().unwrap() = Some(rx.recv::<u32>(ctx));
        });
    }
    let result = sim.run();
    assert!(matches!(
        got.lock().unwrap().take(),
        Some(Err(ShipError::Timeout { call: "recv", .. }))
    ));
    // The timeout fired at simulated time 500 ns, not at wall-clock whim.
    assert_eq!(result.time, SimTime::ZERO + SimDur::ns(500));
}
