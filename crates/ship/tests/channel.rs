//! SHIP channel behaviour: the four blocking calls, back-pressure, RPC
//! ordering, role detection and transaction recording.

use std::sync::{Arc, Mutex};

use shiptlm_kernel::prelude::*;
use shiptlm_ship::prelude::*;

fn channel(sim: &Simulation, name: &str) -> ShipChannel {
    ShipChannel::new(&sim.handle(), name, ShipConfig::default())
}

#[test]
fn send_recv_transfers_objects_in_order() {
    let sim = Simulation::new();
    let ch = channel(&sim, "c");
    let (tx, rx) = ch.ports("p", "c");
    let got = Arc::new(Mutex::new(Vec::new()));
    sim.spawn_thread("p", move |ctx| {
        for i in 0..20u32 {
            tx.send(ctx, &(i, format!("msg{i}"))).unwrap();
        }
    });
    {
        let got = Arc::clone(&got);
        sim.spawn_thread("c", move |ctx| {
            for _ in 0..20 {
                let (i, s): (u32, String) = rx.recv(ctx).unwrap();
                got.lock().unwrap().push((i, s));
            }
        });
    }
    sim.run();
    let got = got.lock().unwrap();
    assert_eq!(got.len(), 20);
    for (i, (n, s)) in got.iter().enumerate() {
        assert_eq!(*n, i as u32);
        assert_eq!(s, &format!("msg{i}"));
    }
}

#[test]
fn send_blocks_on_full_channel() {
    let sim = Simulation::new();
    let ch = ShipChannel::new(
        &sim.handle(),
        "small",
        ShipConfig {
            capacity: 2,
            ..ShipConfig::default()
        },
    );
    let (tx, rx) = ch.ports("p", "c");
    let send_times = Arc::new(Mutex::new(Vec::new()));
    {
        let st = Arc::clone(&send_times);
        sim.spawn_thread("p", move |ctx| {
            for i in 0..4u8 {
                tx.send(ctx, &i).unwrap();
                st.lock().unwrap().push(ctx.now().as_ps());
            }
        });
    }
    sim.spawn_thread("c", move |ctx| {
        for _ in 0..4 {
            ctx.wait_for(SimDur::ns(100));
            let _: u8 = rx.recv(ctx).unwrap();
        }
    });
    sim.run();
    let st = send_times.lock().unwrap();
    // First two fit the buffer at t=0; the rest wait for reads at 100/200 ns.
    assert_eq!(st[0], 0);
    assert_eq!(st[1], 0);
    assert_eq!(st[2], 100_000);
    assert_eq!(st[3], 200_000);
}

#[test]
fn request_reply_rpc_roundtrip() {
    let sim = Simulation::new();
    let ch = channel(&sim, "rpc");
    let (master, slave) = ch.ports("cpu", "acc");
    sim.spawn_thread("cpu", move |ctx| {
        for i in 0..10u64 {
            let sq: u64 = master.request(ctx, &i).unwrap();
            assert_eq!(sq, i * i);
        }
    });
    sim.spawn_thread("acc", move |ctx| {
        for _ in 0..10 {
            let q: u64 = slave.recv(ctx).unwrap();
            slave.reply(ctx, &(q * q)).unwrap();
        }
    });
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    assert_eq!(ch.observed_roles().0, RoleObservation::Master);
    assert_eq!(ch.observed_roles().1, RoleObservation::Slave);
    assert!(ch.validate_roles().is_ok());
}

#[test]
fn reply_without_request_is_a_protocol_error() {
    let sim = Simulation::new();
    let ch = channel(&sim, "bad");
    let (_m, slave) = ch.ports("m", "s");
    let err = Arc::new(Mutex::new(None));
    {
        let err = Arc::clone(&err);
        sim.spawn_thread("s", move |ctx| {
            let e = slave.reply(ctx, &1u8).unwrap_err();
            *err.lock().unwrap() = Some(e);
        });
    }
    sim.run();
    assert!(matches!(
        err.lock().unwrap().take(),
        Some(ShipError::Protocol(_))
    ));
}

#[test]
fn mixed_usage_detected_as_inconsistent() {
    let sim = Simulation::new();
    let ch = channel(&sim, "mix");
    let (a, b) = ch.ports("a", "b");
    sim.spawn_thread("a", move |ctx| {
        a.send(ctx, &1u8).unwrap();
        let _: u8 = a.recv(ctx).unwrap(); // violates master discipline
    });
    sim.spawn_thread("b", move |ctx| {
        let _: u8 = b.recv(ctx).unwrap();
        b.send(ctx, &2u8).unwrap();
    });
    sim.run();
    let (ra, rb) = ch.observed_roles();
    assert_eq!(ra, RoleObservation::Inconsistent);
    assert_eq!(rb, RoleObservation::Inconsistent);
    assert!(ch.validate_roles().is_err());
}

#[test]
fn unused_channel_roles() {
    let sim = Simulation::new();
    let ch = channel(&sim, "idle");
    let (_a, _b) = ch.ports("a", "b");
    sim.run();
    assert_eq!(
        ch.observed_roles(),
        (RoleObservation::Unused, RoleObservation::Unused)
    );
}

#[test]
fn wrong_type_decode_fails_cleanly() {
    let sim = Simulation::new();
    let ch = channel(&sim, "c");
    let (tx, rx) = ch.ports("p", "c");
    let got = Arc::new(Mutex::new(None));
    sim.spawn_thread("p", move |ctx| {
        tx.send(ctx, &0xFFu8).unwrap(); // one byte
    });
    {
        let got = Arc::clone(&got);
        sim.spawn_thread("c", move |ctx| {
            // Try to decode as u32: four bytes needed.
            *got.lock().unwrap() = Some(rx.recv::<u32>(ctx));
        });
    }
    sim.run();
    assert!(matches!(
        got.lock().unwrap().take(),
        Some(Err(ShipError::Wire(_)))
    ));
}

#[test]
fn channel_timing_models_latency_and_bandwidth() {
    let sim = Simulation::new();
    let ch = ShipChannel::new(
        &sim.handle(),
        "timed",
        ShipConfig {
            capacity: 16,
            latency: SimDur::ns(100),
            per_byte: SimDur::ns(1),
            ..ShipConfig::default()
        },
    );
    let (tx, rx) = ch.ports("p", "c");
    let recv_time = Arc::new(Mutex::new(SimTime::ZERO));
    sim.spawn_thread("p", move |ctx| {
        // Vec<u8> of 8 bytes: wire size = 8-byte length prefix + 8 = 16 bytes.
        tx.send(ctx, &vec![0u8; 8]).unwrap();
    });
    {
        let rt = Arc::clone(&recv_time);
        sim.spawn_thread("c", move |ctx| {
            let _: Vec<u8> = rx.recv(ctx).unwrap();
            *rt.lock().unwrap() = ctx.now();
        });
    }
    sim.run();
    // 100 ns latency + 16 bytes * 1 ns.
    assert_eq!(*recv_time.lock().unwrap(), SimTime::ZERO + SimDur::ns(116));
}

#[test]
fn serde_payloads_travel_through_channels() {
    #[derive(Debug, PartialEq, Clone)]
    struct MacroBlock {
        x: u16,
        y: u16,
        coeffs: Vec<i16>,
    }

    impl ShipSerialize for MacroBlock {
        fn serialize(&self, w: &mut ByteWriter) {
            self.x.serialize(w);
            self.y.serialize(w);
            self.coeffs.serialize(w);
        }
        fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
            Ok(MacroBlock {
                x: u16::deserialize(r)?,
                y: u16::deserialize(r)?,
                coeffs: Vec::deserialize(r)?,
            })
        }
    }

    let sim = Simulation::new();
    let ch = channel(&sim, "blocks");
    let (tx, rx) = ch.ports("front", "back");
    let block = MacroBlock {
        x: 3,
        y: 7,
        coeffs: (0..64).map(|i| i - 32).collect(),
    };
    let expected = block.clone();
    sim.spawn_thread("front", move |ctx| {
        tx.send(ctx, &Serde(block.clone())).unwrap();
    });
    sim.spawn_thread("back", move |ctx| {
        let got: Serde<MacroBlock> = rx.recv(ctx).unwrap();
        assert_eq!(got.0, expected);
    });
    sim.run();
}

#[test]
fn recorder_captures_all_operations() {
    let sim = Simulation::new();
    let ch = channel(&sim, "rec");
    let (m, s) = ch.ports("m", "s");
    let log = TransactionLog::new();
    m.attach_recorder(log.clone());
    s.attach_recorder(log.clone());
    sim.spawn_thread("m", move |ctx| {
        m.send(ctx, &1u32).unwrap();
        let _: u32 = m.request(ctx, &2u32).unwrap();
    });
    sim.spawn_thread("s", move |ctx| {
        let _: u32 = s.recv(ctx).unwrap();
        let _: u32 = s.recv(ctx).unwrap();
        s.reply(ctx, &99u32).unwrap();
    });
    sim.run();
    let recs = log.to_vec();
    assert_eq!(recs.len(), 5);
    let ops: Vec<ShipOp> = recs.iter().map(|r| r.op).collect();
    assert!(ops.contains(&ShipOp::Send));
    assert!(ops.contains(&ShipOp::Request));
    assert!(ops.contains(&ShipOp::Reply));
    assert_eq!(ops.iter().filter(|o| **o == ShipOp::Recv).count(), 2);
}

#[test]
fn equivalent_runs_produce_equivalent_logs() {
    // Run the same workload twice (different channel timing) and compare.
    let run = |latency: SimDur| {
        let sim = Simulation::new();
        let ch = ShipChannel::new(
            &sim.handle(),
            "c",
            ShipConfig {
                capacity: 4,
                latency,
                per_byte: SimDur::ZERO,
                ..ShipConfig::default()
            },
        );
        let (tx, rx) = ch.ports("p", "c");
        let log = TransactionLog::new();
        tx.attach_recorder(log.clone());
        rx.attach_recorder(log.clone());
        sim.spawn_thread("p", move |ctx| {
            for i in 0..8u32 {
                tx.send(ctx, &vec![i as u8; (i + 1) as usize]).unwrap();
            }
        });
        sim.spawn_thread("c", move |ctx| {
            for _ in 0..8 {
                let _: Vec<u8> = rx.recv(ctx).unwrap();
            }
        });
        sim.run();
        log
    };
    let fast = run(SimDur::ZERO);
    let slow = run(SimDur::us(3));
    assert!(fast.content_equivalent(&slow).is_ok());
}

#[test]
fn multiple_outstanding_requests_replied_in_fifo_order() {
    let sim = Simulation::new();
    let ch = channel(&sim, "pipe");
    let (m, s) = ch.ports("m", "s");
    let results = Arc::new(Mutex::new(Vec::new()));
    // Two master processes sharing the port would be unusual; instead one
    // master fires requests back-to-back from a helper protocol: here we
    // emulate pipelining by having the slave delay replies.
    {
        let results = Arc::clone(&results);
        sim.spawn_thread("m", move |ctx| {
            for i in 0..3u32 {
                let r: u32 = m.request(ctx, &i).unwrap();
                results.lock().unwrap().push(r);
            }
        });
    }
    sim.spawn_thread("s", move |ctx| {
        for _ in 0..3 {
            let q: u32 = s.recv(ctx).unwrap();
            ctx.wait_for(SimDur::ns(50));
            s.reply(ctx, &(q + 100)).unwrap();
        }
    });
    sim.run();
    assert_eq!(*results.lock().unwrap(), vec![100, 101, 102]);
}
