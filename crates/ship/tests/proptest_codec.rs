//! Property-based tests: every value the codec can encode decodes back to
//! itself, and corrupted streams never panic.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use shiptlm_ship::codec::{from_bytes, to_bytes};
use shiptlm_ship::serialize::{from_wire, to_wire};

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
enum Op {
    Idle,
    Write { addr: u64, data: Vec<u8> },
    Read(u64, u16),
    Tag(String),
}

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
struct Record {
    id: u32,
    ops: Vec<Op>,
    note: Option<String>,
    scale: f64,
    flags: (bool, bool, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Idle),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(addr, data)| Op::Write { addr, data }),
        (any::<u64>(), any::<u16>()).prop_map(|(a, n)| Op::Read(a, n)),
        "[a-zA-Z0-9 ]{0,16}".prop_map(Op::Tag),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        any::<u32>(),
        proptest::collection::vec(op_strategy(), 0..8),
        proptest::option::of("[ -~]{0,20}"),
        any::<f64>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan()),
        (any::<bool>(), any::<bool>(), any::<u8>()),
    )
        .prop_map(|(id, ops, note, scale, flags)| Record {
            id,
            ops,
            note,
            scale,
            flags,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serde_roundtrip(rec in record_strategy()) {
        let bytes = to_bytes(&rec).unwrap();
        let back: Record = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn ship_serialize_roundtrip_vecs(v in proptest::collection::vec(any::<u32>(), 0..128)) {
        let bytes = to_wire(&v);
        let back: Vec<u32> = from_wire(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn ship_serialize_roundtrip_strings(s in "\\PC{0,64}") {
        let owned = s.to_string();
        let bytes = to_wire(&owned);
        let back: String = from_wire(&bytes).unwrap();
        prop_assert_eq!(back, owned);
    }

    #[test]
    fn truncation_never_panics(rec in record_strategy(), cut in 0usize..200) {
        let bytes = to_bytes(&rec).unwrap();
        let cut = cut.min(bytes.len());
        // Either decodes to some value (prefix happens to be valid) or
        // errors; must never panic or hang.
        let _ = from_bytes::<Record>(&bytes[..cut]);
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes::<Record>(&bytes);
        let _ = from_wire::<Vec<u64>>(&bytes);
        let _ = from_wire::<String>(&bytes);
    }

    #[test]
    fn encoding_is_deterministic(rec in record_strategy()) {
        prop_assert_eq!(to_bytes(&rec).unwrap(), to_bytes(&rec).unwrap());
    }
}
