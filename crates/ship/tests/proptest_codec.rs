//! Randomized codec tests: every value the codec can encode decodes back to
//! itself, and corrupted streams never panic.
//!
//! Inputs come from a deterministic seeded [`Rng`], so each case reproduces
//! from its iteration index.

use shiptlm_kernel::rng::Rng;
use shiptlm_ship::codec::{from_bytes, to_bytes};
use shiptlm_ship::prelude::*;
use shiptlm_ship::serialize::{from_wire, to_wire};

#[derive(Debug, PartialEq, Clone)]
enum Op {
    Idle,
    Write { addr: u64, data: Vec<u8> },
    Read(u64, u16),
    Tag(String),
}

impl ShipSerialize for Op {
    fn serialize(&self, w: &mut ByteWriter) {
        match self {
            Op::Idle => w.put_u8(0),
            Op::Write { addr, data } => {
                w.put_u8(1);
                addr.serialize(w);
                data.serialize(w);
            }
            Op::Read(a, n) => {
                w.put_u8(2);
                a.serialize(w);
                n.serialize(w);
            }
            Op::Tag(s) => {
                w.put_u8(3);
                s.serialize(w);
            }
        }
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Op::Idle),
            1 => Ok(Op::Write {
                addr: u64::deserialize(r)?,
                data: Vec::deserialize(r)?,
            }),
            2 => Ok(Op::Read(u64::deserialize(r)?, u16::deserialize(r)?)),
            3 => Ok(Op::Tag(String::deserialize(r)?)),
            v => Err(WireError::InvalidValue(format!("op variant {v}"))),
        }
    }
}

#[derive(Debug, PartialEq, Clone)]
struct Record {
    id: u32,
    ops: Vec<Op>,
    note: Option<String>,
    scale: f64,
    flags: (bool, bool, u8),
}

impl ShipSerialize for Record {
    fn serialize(&self, w: &mut ByteWriter) {
        self.id.serialize(w);
        self.ops.serialize(w);
        self.note.serialize(w);
        self.scale.serialize(w);
        self.flags.serialize(w);
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Record {
            id: u32::deserialize(r)?,
            ops: Vec::deserialize(r)?,
            note: Option::deserialize(r)?,
            scale: f64::deserialize(r)?,
            flags: <(bool, bool, u8)>::deserialize(r)?,
        })
    }
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.gen_range_u64(0, 4) {
        0 => Op::Idle,
        1 => {
            let addr = rng.next_u64();
            let len = rng.gen_range_usize(0, 64);
            Op::Write {
                addr,
                data: rng.bytes(len),
            }
        }
        2 => Op::Read(rng.next_u64(), rng.next_u16()),
        _ => {
            let len = rng.gen_range_usize(0, 16);
            Op::Tag(rng.alnum_string(len))
        }
    }
}

fn gen_record(rng: &mut Rng) -> Record {
    Record {
        id: rng.next_u32(),
        ops: (0..rng.gen_range_usize(0, 8))
            .map(|_| gen_op(rng))
            .collect(),
        note: if rng.gen_bool() {
            let len = rng.gen_range_usize(0, 20);
            Some(rng.alnum_string(len))
        } else {
            None
        },
        scale: rng.gen_f64(),
        flags: (rng.gen_bool(), rng.gen_bool(), rng.next_u8()),
    }
}

const CASES: u64 = 256;

#[test]
fn codec_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_0000 + case);
        let rec = gen_record(&mut rng);
        let bytes = to_bytes(&rec).unwrap();
        let back: Record = from_bytes(&bytes).unwrap();
        assert_eq!(back, rec, "case {case}");
    }
}

#[test]
fn ship_serialize_roundtrip_vecs() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_1000 + case);
        let v: Vec<u32> = (0..rng.gen_range_usize(0, 128))
            .map(|_| rng.next_u32())
            .collect();
        let bytes = to_wire(&v);
        let back: Vec<u32> = from_wire(&bytes).unwrap();
        assert_eq!(back, v, "case {case}");
    }
}

#[test]
fn ship_serialize_roundtrip_strings() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_2000 + case);
        // Mix ASCII and multi-byte codepoints.
        let len = rng.gen_range_usize(0, 64);
        let s: String = (0..len)
            .map(|_| match rng.gen_range_u64(0, 4) {
                0 => char::from(rng.gen_range_u64(0x20, 0x7f) as u8),
                1 => 'ü',
                2 => '→',
                _ => '𝄞',
            })
            .collect();
        let bytes = to_wire(&s);
        let back: String = from_wire(&bytes).unwrap();
        assert_eq!(back, s, "case {case}");
    }
}

#[test]
fn truncation_never_panics() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_3000 + case);
        let rec = gen_record(&mut rng);
        let bytes = to_bytes(&rec).unwrap();
        let cut = rng.gen_range_usize(0, 200).min(bytes.len());
        // Either decodes to some value (prefix happens to be valid) or
        // errors; must never panic or hang.
        let _ = from_bytes::<Record>(&bytes[..cut]);
    }
}

#[test]
fn random_bytes_never_panic() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_4000 + case);
        let len = rng.gen_range_usize(0, 256);
        let bytes = rng.bytes(len);
        let _ = from_bytes::<Record>(&bytes);
        let _ = from_wire::<Vec<u64>>(&bytes);
        let _ = from_wire::<String>(&bytes);
    }
}

#[test]
fn encoding_is_deterministic() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_5000 + case);
        let rec = gen_record(&mut rng);
        assert_eq!(
            to_bytes(&rec).unwrap(),
            to_bytes(&rec).unwrap(),
            "case {case}"
        );
    }
}

#[test]
fn ship_bytes_roundtrip_including_empty_and_large() {
    // The explicit edge cases first: a zero-length payload and buffers
    // past the 64 KiB mark (beyond any burst or mailbox window size).
    let empty = ShipBytes::new();
    let wire = to_wire(&empty);
    assert_eq!(wire.len(), 8, "empty payload is just the length prefix");
    let back: ShipBytes = from_wire(&wire).unwrap();
    assert!(back.is_empty());

    let mut rng = Rng::seed_from_u64(0x5e12_6000);
    for case in 0..8u32 {
        let len = 64 * 1024 + rng.gen_range_usize(1, 4096);
        let payload = ShipBytes::from(rng.bytes(len));
        let wire = to_wire(&payload);
        assert_eq!(wire.len(), len + 8, "case {case}");
        let back: ShipBytes = from_wire(&wire).unwrap();
        assert_eq!(back.as_slice(), payload.as_slice(), "case {case}");
    }
}

#[test]
fn ship_bytes_wire_matches_vec_u8() {
    // `ShipBytes` documents wire compatibility with `Vec<u8>`: both
    // encodings are byte-identical and cross-decode.
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_7000 + case);
        let len = rng.gen_range_usize(0, 300);
        let v = rng.bytes(len);
        let as_vec = to_wire(&v);
        let as_bytes = to_wire(&ShipBytes::from(v.clone()));
        assert_eq!(as_vec, as_bytes, "case {case}: encodings differ");
        let cross_a: Vec<u8> = from_wire(&as_bytes).unwrap();
        let cross_b: ShipBytes = from_wire(&as_vec).unwrap();
        assert_eq!(cross_a, v, "case {case}");
        assert_eq!(cross_b.as_slice(), v.as_slice(), "case {case}");
    }
}

#[test]
fn ship_bytes_rejects_overlong_length_prefix() {
    // A length prefix claiming more payload than the buffer holds must
    // error (BadLength), never allocate or panic — including the huge
    // prefix a corrupted empty message would produce.
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5e12_8000 + case);
        let len = rng.gen_range_usize(0, 64);
        let mut wire = to_wire(&ShipBytes::from(rng.bytes(len)));
        // Inflate the length prefix past the available bytes.
        wire[7] ^= 0x80;
        assert!(
            from_wire::<ShipBytes>(&wire).is_err(),
            "case {case}: oversized prefix must not decode"
        );
        let _ = from_wire::<Vec<u8>>(&wire); // must not panic either
    }
}
