//! Decode hardening of the SHIP wire format against untrusted input.
//!
//! The gateway feeds bytes straight off a TCP socket into these decoders,
//! so every malformed stream — truncated mid-length-prefix, corrupted by
//! bit flips, or carrying a nested envelope whose inner prefix overruns the
//! outer body — must come back as a classified [`WireError`], never a panic
//! and never an allocation disproportionate to the input.

use shiptlm_ship::codec::Serde;
use shiptlm_ship::serialize::{from_wire, to_wire, ShipSerialize};
use shiptlm_ship::wire::{ByteReader, ByteWriter, WireError};

/// A representative nested message: strings, vectors, options, envelopes.
#[derive(Debug, PartialEq, Clone)]
struct JobLike {
    name: String,
    seeds: Vec<u64>,
    payloads: Vec<Vec<u8>>,
    note: Option<String>,
}

impl ShipSerialize for JobLike {
    fn serialize(&self, w: &mut ByteWriter) {
        self.name.serialize(w);
        self.seeds.serialize(w);
        self.payloads.serialize(w);
        self.note.serialize(w);
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(JobLike {
            name: String::deserialize(r)?,
            seeds: Vec::deserialize(r)?,
            payloads: Vec::deserialize(r)?,
            note: Option::deserialize(r)?,
        })
    }
}

fn sample() -> JobLike {
    JobLike {
        name: "fft-radix4".into(),
        seeds: vec![1, u64::MAX, 0x0054_171A_B1E5],
        payloads: vec![vec![0xAB; 300], Vec::new(), (0..=255).collect()],
        note: Some("grüße".into()),
    }
}

/// Deterministic xorshift for corruption patterns — no external RNG crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn every_truncation_point_returns_a_classified_error() {
    let bytes = to_wire(&Serde(sample()));
    for cut in 0..bytes.len() {
        let err = from_wire::<Serde<JobLike>>(&bytes[..cut])
            .expect_err("truncated stream must not decode");
        assert!(
            matches!(
                err,
                WireError::UnexpectedEnd { .. }
                    | WireError::BadLength(_)
                    | WireError::InvalidValue(_)
            ),
            "cut at {cut}: unclassified error {err:?}"
        );
    }
}

#[test]
fn random_byte_corruption_never_panics() {
    let clean = to_wire(&Serde(sample()));
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    for _ in 0..2000 {
        let mut bytes = clean.clone();
        // Flip 1–4 random bytes anywhere in the stream (length prefixes,
        // tags and payload alike).
        let flips = 1 + (rng.next() % 4) as usize;
        for _ in 0..flips {
            let at = (rng.next() % bytes.len() as u64) as usize;
            bytes[at] ^= (rng.next() % 255 + 1) as u8;
        }
        // Either a clean decode of a different value or a classified error;
        // a panic or runaway allocation fails (or wedges) the test.
        let _ = from_wire::<Serde<JobLike>>(&bytes);
    }
}

#[test]
fn random_garbage_streams_never_panic() {
    let mut rng = Rng(0xBAD5_EED5_0000_0002);
    for round in 0..2000 {
        let len = (rng.next() % 96) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = from_wire::<Serde<JobLike>>(&bytes);
        let _ = from_wire::<JobLike>(&bytes);
        let _ = from_wire::<Vec<Vec<u8>>>(&bytes);
        let _ = from_wire::<String>(&bytes);
        assert!(round < 2000);
    }
}

#[test]
fn truncation_mid_length_prefix_is_unexpected_end() {
    let mut w = ByteWriter::new();
    w.put_len_prefixed(b"hello world");
    let bytes = w.into_bytes();
    // Keep only 3 of the 8 prefix bytes.
    let mut r = ByteReader::new(&bytes[..3]);
    assert_eq!(
        r.get_len_prefixed(),
        Err(WireError::UnexpectedEnd {
            needed: 8,
            remaining: 3
        })
    );
}

#[test]
fn inner_envelope_overrunning_outer_body_is_rejected() {
    // Outer envelope: 16-byte body. Inner envelope claims 1 GiB.
    let mut w = ByteWriter::new();
    w.put_len_prefixed_with(|w| {
        w.put_u64(1 << 30); // forged inner length prefix
        w.put_u64(0xDEAD_BEEF); // 8 bytes of actual body
    });
    // ... followed by plenty of trailing bytes that the inner prefix must
    // NOT be allowed to reach through the envelope boundary.
    w.put_bytes(&[0u8; 4096]);
    let bytes = w.into_bytes();

    let mut outer = ByteReader::new(&bytes);
    let mut inner = outer.sub_reader().expect("outer envelope is well-formed");
    assert!(
        matches!(inner.get_len_prefixed(), Err(WireError::BadLength(_))),
        "inner prefix bounded by the envelope, not the parent stream"
    );
    // The parent reader sits exactly past the outer envelope.
    assert_eq!(outer.remaining(), 4096);
}

#[test]
fn nested_vec_length_bomb_allocates_proportionally_to_input() {
    // Claims 2^20 - 1 inner vectors but carries only 64 bytes: the decode
    // must fail with a classified error after a small, input-bounded
    // allocation (the capacity hint is capped by the remaining bytes).
    let mut w = ByteWriter::new();
    w.put_u64((1 << 20) - 1);
    w.put_bytes(&[0xFF; 64]);
    let bytes = w.into_bytes();
    let err = from_wire::<Vec<Vec<u64>>>(&bytes).unwrap_err();
    assert!(
        matches!(err, WireError::BadLength(_) | WireError::UnexpectedEnd { .. }),
        "got {err:?}"
    );
}

#[test]
fn huge_string_prefix_is_bad_length() {
    let mut w = ByteWriter::new();
    w.put_u64(u64::MAX / 2);
    w.put_bytes(b"short");
    assert!(matches!(
        from_wire::<String>(&w.into_bytes()),
        Err(WireError::BadLength(_))
    ));
}

#[test]
fn trailing_bytes_after_valid_envelope_are_rejected() {
    let mut bytes = to_wire(&Serde(sample()));
    bytes.extend_from_slice(&[1, 2, 3]);
    assert_eq!(
        from_wire::<Serde<JobLike>>(&bytes),
        Err(WireError::TrailingBytes(3))
    );
}
