//! `ShipBytes` — the zero-copy payload carrier of the SHIP data path.
//!
//! Every SHIP transfer used to move a `Vec<u8>` by value through each hop of
//! the stack (port → endpoint → queue → peer port), cloning it wherever the
//! payload was both forwarded *and* recorded. [`ShipBytes`] keeps one
//! contiguous, immutable buffer behind an [`Arc`], so forwarding a payload
//! across a channel, a mailbox adapter or a device driver is a reference
//! count bump instead of a memcpy. The buffer is frozen at construction —
//! exactly the semantics of a serialized wire message.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-clonable byte payload.
///
/// Construction from a `Vec<u8>` is zero-copy (the vector is moved behind
/// the `Arc`), and `clone` is O(1). Dereferences to `[u8]`, so all slice
/// APIs work directly:
///
/// ```
/// use shiptlm_ship::bytes::ShipBytes;
///
/// let b = ShipBytes::from(vec![1u8, 2, 3]);
/// let b2 = b.clone();           // refcount bump, no copy
/// assert_eq!(&*b2, &[1, 2, 3]);
/// assert_eq!(b.len(), 3);
/// ```
#[derive(Clone, Default)]
pub struct ShipBytes {
    inner: Arc<Vec<u8>>,
}

impl ShipBytes {
    /// An empty payload.
    pub fn new() -> Self {
        ShipBytes::default()
    }

    /// The payload as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Recovers the owned vector: without copying when this is the only
    /// handle, cloning otherwise.
    pub fn into_vec(self) -> Vec<u8> {
        Arc::try_unwrap(self.inner).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Copies the payload into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.as_ref().clone()
    }
}

impl From<Vec<u8>> for ShipBytes {
    fn from(v: Vec<u8>) -> Self {
        ShipBytes { inner: Arc::new(v) }
    }
}

impl From<&[u8]> for ShipBytes {
    fn from(s: &[u8]) -> Self {
        ShipBytes {
            inner: Arc::new(s.to_vec()),
        }
    }
}

impl<const N: usize> From<[u8; N]> for ShipBytes {
    fn from(a: [u8; N]) -> Self {
        ShipBytes {
            inner: Arc::new(a.to_vec()),
        }
    }
}

impl Deref for ShipBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for ShipBytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl PartialEq for ShipBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ShipBytes {}

impl PartialEq<[u8]> for ShipBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for ShipBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for ShipBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShipBytes({} B)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let b = ShipBytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
        assert_eq!(c.len(), 1024);
    }

    #[test]
    fn into_vec_is_zero_copy_when_unique() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = ShipBytes::from(v);
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr);
    }

    #[test]
    fn into_vec_clones_when_shared() {
        let b = ShipBytes::from(vec![7u8; 8]);
        let c = b.clone();
        assert_eq!(b.into_vec(), c.to_vec());
    }

    #[test]
    fn slice_semantics() {
        let b = ShipBytes::from(&[1u8, 2, 3][..]);
        assert_eq!(&b[1..], &[2, 3]);
        assert!(!b.is_empty());
        assert_eq!(b, vec![1u8, 2, 3]);
    }
}
