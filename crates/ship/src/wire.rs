//! The SHIP wire format: little-endian, length-prefixed byte streams.
//!
//! Everything a SHIP channel transfers is first flattened into this format,
//! mirroring the paper's `ship_serializable_if` contract ("the channel calls
//! these functions to transform communication objects into serial data
//! streams and vice versa"). The same bytes later become bus beats when the
//! channel is mapped onto a communication architecture, so the format is
//! deliberately compact and position-independent.

use std::error::Error;
use std::fmt;

/// Failure while decoding a wire stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes.
    UnexpectedEnd {
        /// How many more bytes were needed.
        needed: usize,
        /// How many remained.
        remaining: usize,
    },
    /// A length prefix exceeded the remaining stream or a sanity bound.
    BadLength(u64),
    /// An invalid encoding for the target type (e.g. a bool that is not 0/1,
    /// invalid UTF-8, an unknown enum variant index).
    InvalidValue(String),
    /// Bytes were left over after a complete top-level decode.
    TrailingBytes(usize),
    /// The requested serde operation is not supported by the non-self-
    /// describing SHIP format (e.g. `deserialize_any`).
    Unsupported(&'static str),
    /// Custom error raised by a serde implementation.
    Custom(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { needed, remaining } => write!(
                f,
                "unexpected end of wire stream: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            WireError::InvalidValue(s) => write!(f, "invalid encoded value: {s}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            WireError::Unsupported(what) => {
                write!(f, "unsupported by the ship wire format: {what}")
            }
            WireError::Custom(s) => f.write_str(s),
        }
    }
}

impl Error for WireError {}

/// Serializes values into a growing byte buffer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as a single `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i8`.
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `i16`.
    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an IEEE-754 `f32` (LE bit pattern).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an IEEE-754 `f64` (LE bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_len_prefixed(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.put_bytes(bytes);
    }

    /// Length-prefixes whatever `body` writes, without materializing it in
    /// a separate buffer first: reserves the 8-byte prefix, runs `body`
    /// against this writer, then backpatches the prefix with the number of
    /// bytes produced. Wire-identical to encoding the body separately and
    /// calling [`put_len_prefixed`](Self::put_len_prefixed).
    pub fn put_len_prefixed_with(&mut self, body: impl FnOnce(&mut ByteWriter)) {
        let prefix_at = self.buf.len();
        self.put_u64(0);
        let start = self.buf.len();
        body(self);
        let len = (self.buf.len() - start) as u64;
        self.buf[prefix_at..start].copy_from_slice(&len.to_le_bytes());
    }
}

impl From<Vec<u8>> for ByteWriter {
    /// Wraps an existing buffer, appending after its current contents.
    /// [`into_bytes`](ByteWriter::into_bytes) returns the same allocation,
    /// so encode loops can reuse one buffer across messages
    /// (see [`serialize_into`](crate::serialize::serialize_into)).
    fn from(buf: Vec<u8>) -> Self {
        ByteWriter { buf }
    }
}

/// Deserializes values from a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

macro_rules! get_le {
    ($name:ident, $t:ty) => {
        /// Reads a little-endian value.
        ///
        /// # Errors
        ///
        /// Returns [`WireError::UnexpectedEnd`] when the stream is exhausted.
        pub fn $name(&mut self) -> Result<$t, WireError> {
            const N: usize = std::mem::size_of::<$t>();
            let bytes = self.take(N)?;
            Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
        }
    };
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the whole stream was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] when fewer than `n` remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] when the stream is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a strict bool (`0` or `1`).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidValue`] for any other byte.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidValue(format!("bool byte {b:#x}"))),
        }
    }

    get_le!(get_u16, u16);
    get_le!(get_u32, u32);
    get_le!(get_u64, u64);
    get_le!(get_i16, i16);
    get_le!(get_i32, i32);
    get_le!(get_i64, i64);
    get_le!(get_f32, f32);
    get_le!(get_f64, f64);

    /// Reads a little-endian `i8`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] when the stream is exhausted.
    pub fn get_i8(&mut self) -> Result<i8, WireError> {
        Ok(self.get_u8()? as i8)
    }

    /// Reads a `u64` length prefix and that many bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadLength`] when the prefix exceeds the stream.
    pub fn get_len_prefixed(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(WireError::BadLength(n));
        }
        self.take(n as usize)
    }

    /// Reads a `u64` length prefix and returns a child reader over exactly
    /// that many bytes, advancing this reader past them.
    ///
    /// Decoding a nested [`put_len_prefixed_with`](ByteWriter::put_len_prefixed_with)
    /// envelope through a child reader bounds every inner read by the
    /// envelope body: an inner prefix that overruns the outer body fails
    /// with a classified [`WireError`] instead of silently consuming the
    /// parent stream's bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadLength`] when the prefix exceeds the stream.
    pub fn sub_reader(&mut self) -> Result<ByteReader<'a>, WireError> {
        Ok(ByteReader::new(self.get_len_prefixed()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.put_bool(true);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0102030405060708);
        w.put_i32(-42);
        w.put_f64(3.5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0102030405060708);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn little_endian_layout() {
        let mut w = ByteWriter::new();
        w.put_u32(0x11223344);
        assert_eq!(w.as_bytes(), &[0x44, 0x33, 0x22, 0x11]);
    }

    #[test]
    fn unexpected_end_reports_counts() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.get_u32().unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEnd {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn strict_bool_rejects_garbage() {
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(r.get_bool(), Err(WireError::InvalidValue(_))));
    }

    #[test]
    fn len_prefixed_with_matches_two_pass_encoding() {
        let mut by_copy = ByteWriter::new();
        let mut body = ByteWriter::new();
        body.put_u32(0xDEAD);
        body.put_len_prefixed(b"inner");
        by_copy.put_u16(7);
        by_copy.put_len_prefixed(body.as_bytes());

        let mut streamed = ByteWriter::new();
        streamed.put_u16(7);
        streamed.put_len_prefixed_with(|w| {
            w.put_u32(0xDEAD);
            w.put_len_prefixed(b"inner");
        });
        assert_eq!(streamed.as_bytes(), by_copy.as_bytes());
    }

    #[test]
    fn len_prefixed_with_nests() {
        let mut w = ByteWriter::new();
        w.put_len_prefixed_with(|w| {
            w.put_len_prefixed_with(|w| w.put_u8(9));
        });
        let mut r = ByteReader::new(w.as_bytes());
        let outer = r.get_len_prefixed().unwrap();
        let mut r2 = ByteReader::new(outer);
        assert_eq!(r2.get_len_prefixed().unwrap(), &[9]);
    }

    #[test]
    fn writer_from_vec_appends_and_returns_same_allocation() {
        let mut buf = Vec::with_capacity(64);
        buf.push(0xEE);
        let ptr = buf.as_ptr();
        let mut w = ByteWriter::from(buf);
        w.put_u8(0xFF);
        let out = w.into_bytes();
        assert_eq!(out, vec![0xEE, 0xFF]);
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    fn len_prefixed_roundtrip_and_bound_check() {
        let mut w = ByteWriter::new();
        w.put_len_prefixed(b"hello");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_len_prefixed().unwrap(), b"hello");

        let mut bad = bytes.clone();
        bad[0] = 200; // length longer than payload
        let mut r = ByteReader::new(&bad);
        assert!(matches!(r.get_len_prefixed(), Err(WireError::BadLength(_))));
    }
}
