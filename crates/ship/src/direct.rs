//! Direct-execution SHIP channel: the untimed channel semantics on the
//! [`DirectSim`](shiptlm_kernel::direct::DirectSim) backend.
//!
//! A [`DirectChannel`] is behaviourally identical to an untimed
//! [`ShipChannel`](crate::channel::ShipChannel): the same four blocking
//! calls, the same per-direction bounded queues, the same request/reply
//! accounting and the same error strings. What changes is the blocking
//! mechanism — instead of yielding to the delta-cycle scheduler, a blocked
//! call parks on the channel's [`Gate`] (a mutex/condvar pair) and the peer
//! wakes it with a plain notification. No kernel runs; a message hand-off
//! is two lock acquisitions.
//!
//! Equivalence rests on the untimed level's semantics being independent of
//! scheduling order: the cross-level checker compares per-(channel, port)
//! content streams, which are fixed by the channel protocol alone. Timeout
//! behaviour is preserved through the backend's exact global stall
//! detection — a budgeted call times out iff every live thread is blocked,
//! exactly when the DE kernel would advance time and fire the (all-equal)
//! untimed deadlines.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use shiptlm_kernel::direct::{Construct, DirectCore, Disqualified, Gate, ParkInfo, ParkVerdict};
use shiptlm_kernel::process::ThreadCtx;

use crate::bytes::ShipBytes;
use crate::channel::{ShipConfig, ShipEndpoint, ShipPort, Side};
use crate::error::ShipError;
use crate::role::{RoleObservation, Usage};

/// Message discriminant mirroring the DE channel's data/request split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Data,
    Request,
}

/// Per-side queue bundle; index *i* belongs to side *i* (0 = A, 1 = B).
/// Same layout and meaning as the DE channel's `DirQueues`.
#[derive(Debug, Default)]
struct DirState {
    /// Data/request messages **from** this side to the opposite one.
    messages: VecDeque<(Kind, ShipBytes)>,
    /// Replies destined **to** this side (this side was the requester).
    replies: VecDeque<ShipBytes>,
    /// Requests **from** this side the peer has popped but not yet replied
    /// to.
    owed_replies: u64,
}

struct DirectShared {
    name: String,
    capacity: usize,
    /// Whether blocking calls carry a sim-time budget (`ShipConfig::timeout`).
    timeout_armed: bool,
    core: Arc<DirectCore>,
    /// One gate guards both directions: every mutation may unblock either
    /// side, and waiters re-check their own condition on wake.
    gate: Arc<Gate<[DirState; 2]>>,
    usage: [Arc<Usage>; 2],
    /// `ship channel '<name>'`, interned for deadlock reports.
    resource: Arc<str>,
}

fn dir_index(side: Side) -> usize {
    match side {
        Side::A => 0,
        Side::B => 1,
    }
}

/// A point-to-point SHIP channel running on the direct backend.
///
/// Construct with [`DirectChannel::new`] against a
/// [`DirectSim`](shiptlm_kernel::direct::DirectSim)'s core, take the two
/// [`ShipPort`]s with [`ports`](DirectChannel::ports), and hand them to
/// thread bodies exactly as with a [`ShipChannel`](crate::channel::ShipChannel)
/// — PE source code cannot tell the backends apart.
pub struct DirectChannel {
    shared: Arc<DirectShared>,
}

impl DirectChannel {
    /// Creates a channel on the given direct core.
    ///
    /// # Errors
    ///
    /// Returns [`Disqualified`] when `config` carries transport latency —
    /// a timed channel needs the DE kernel.
    ///
    /// # Panics
    ///
    /// Panics when `config.capacity` is zero, like the DE channel.
    pub fn new(
        core: &Arc<DirectCore>,
        name: &str,
        config: ShipConfig,
    ) -> Result<Self, Disqualified> {
        assert!(
            config.capacity > 0,
            "ship channel capacity must be non-zero"
        );
        if !config.latency.is_zero() || !config.per_byte.is_zero() {
            return Err(Disqualified {
                construct: Construct::TimedChannel,
                process: "<elaboration>".to_string(),
            });
        }
        Ok(DirectChannel {
            shared: Arc::new(DirectShared {
                name: name.to_string(),
                capacity: config.capacity,
                timeout_armed: config.timeout.is_some(),
                core: Arc::clone(core),
                gate: core.gate([DirState::default(), DirState::default()]),
                usage: [Arc::new(Usage::new()), Arc::new(Usage::new())],
                resource: Arc::from(format!("ship channel '{name}'")),
            }),
        })
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Creates the two port handles, labelled with their PE names.
    pub fn ports(&self, label_a: &str, label_b: &str) -> (ShipPort, ShipPort) {
        let channel: Arc<str> = Arc::from(self.shared.name.as_str());
        let a = ShipPort::with_usage(
            Arc::new(DirectEndpoint {
                shared: Arc::clone(&self.shared),
                side: Side::A,
            }),
            Arc::clone(&self.shared.usage[0]),
            Arc::clone(&channel),
            label_a,
        );
        let b = ShipPort::with_usage(
            Arc::new(DirectEndpoint {
                shared: Arc::clone(&self.shared),
                side: Side::B,
            }),
            Arc::clone(&self.shared.usage[1]),
            channel,
            label_b,
        );
        (a, b)
    }

    /// Observed roles of (side A, side B) — the paper's automatic
    /// master/slave detection, identical to the DE channel's.
    pub fn observed_roles(&self) -> (RoleObservation, RoleObservation) {
        (
            self.shared.usage[0].snapshot().observe(),
            self.shared.usage[1].snapshot().observe(),
        )
    }
}

impl fmt::Debug for DirectChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ra, rb) = self.observed_roles();
        f.debug_struct("DirectChannel")
            .field("name", &self.shared.name)
            .field("role_a", &ra)
            .field("role_b", &rb)
            .finish()
    }
}

struct DirectEndpoint {
    shared: Arc<DirectShared>,
    side: Side,
}

impl DirectEndpoint {
    fn out_dir(&self) -> usize {
        dir_index(self.side)
    }
    fn in_dir(&self) -> usize {
        dir_index(self.side.opposite())
    }
    fn side_str(&self) -> &'static str {
        match self.side {
            Side::A => "A",
            Side::B => "B",
        }
    }

    /// The calling thread's index on this channel's core.
    ///
    /// # Errors
    ///
    /// Rejects contexts from other backends or other direct runs — a port
    /// smuggled across runs would park against the wrong stall domain.
    fn who(&self, ctx: &ThreadCtx) -> Result<usize, ShipError> {
        match ctx.direct_backend() {
            Some((core, who)) if Arc::ptr_eq(core, &self.shared.core) => Ok(who),
            _ => Err(ShipError::Protocol(format!(
                "direct channel '{}' used outside its direct-execution run",
                self.shared.name
            ))),
        }
    }

    /// Queue-state snapshot embedded in timeout errors; same wording as the
    /// DE channel's.
    fn snapshot(dirs: &[DirState; 2]) -> String {
        format!(
            "a2b {} queued / {} owed replies, b2a {} queued / {} owed replies",
            dirs[0].messages.len(),
            dirs[0].owed_replies,
            dirs[1].messages.len(),
            dirs[1].owed_replies
        )
    }

    fn timeout_error(&self, call: &'static str, dirs: &[DirState; 2]) -> ShipError {
        ShipError::Timeout {
            channel: self.shared.name.clone(),
            side: self.side_str().to_string(),
            call,
            detail: Self::snapshot(dirs),
        }
    }

    fn park_info(&self, description: &'static str) -> ParkInfo {
        ParkInfo {
            resource: Arc::clone(&self.shared.resource),
            description,
            timeout_armed: self.shared.timeout_armed,
        }
    }

    fn push_message(
        &self,
        ctx: &mut ThreadCtx,
        msg: (Kind, ShipBytes),
        call: &'static str,
    ) -> Result<(), ShipError> {
        let who = self.who(ctx)?;
        let dir = self.out_dir();
        let gate = &self.shared.gate;
        let mut g = gate.lock();
        loop {
            if g[dir].messages.len() < self.shared.capacity {
                g[dir].messages.push_back(msg);
                gate.notify_all(&mut g);
                return Ok(());
            }
            let (guard, verdict) = self.shared.core.park(
                gate,
                g,
                who,
                self.park_info("send (channel full, awaiting reader)"),
            );
            g = guard;
            if verdict == ParkVerdict::TimedOut {
                return Err(self.timeout_error(call, &g));
            }
        }
    }
}

impl ShipEndpoint for DirectEndpoint {
    fn send_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        self.push_message(ctx, (Kind::Data, bytes), "send")
    }

    fn recv_bytes(&self, ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError> {
        let who = self.who(ctx)?;
        let dir = self.in_dir();
        let gate = &self.shared.gate;
        let mut g = gate.lock();
        loop {
            if let Some((kind, bytes)) = g[dir].messages.pop_front() {
                if kind == Kind::Request {
                    g[dir].owed_replies += 1;
                }
                gate.notify_all(&mut g);
                return Ok(bytes);
            }
            let (guard, verdict) =
                self.shared
                    .core
                    .park(gate, g, who, self.park_info("recv (awaiting message)"));
            g = guard;
            if verdict == ParkVerdict::TimedOut {
                return Err(self.timeout_error("recv", &g));
            }
        }
    }

    fn request_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<ShipBytes, ShipError> {
        self.push_message(ctx, (Kind::Request, bytes), "request")?;
        let who = self.who(ctx)?;
        // Replies travelling back to this side are indexed by this side.
        let my_dir = self.out_dir();
        let gate = &self.shared.gate;
        let mut g = gate.lock();
        loop {
            if let Some(r) = g[my_dir].replies.pop_front() {
                return Ok(r);
            }
            let (guard, verdict) =
                self.shared
                    .core
                    .park(gate, g, who, self.park_info("request (awaiting reply)"));
            g = guard;
            if verdict == ParkVerdict::TimedOut {
                return Err(self.timeout_error("request", &g));
            }
        }
    }

    fn reply_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        self.who(ctx)?;
        // The requester lives on the opposite side; its reply queue is
        // indexed by *its* side.
        let peer_dir = self.in_dir();
        let gate = &self.shared.gate;
        let mut g = gate.lock();
        if g[peer_dir].owed_replies == 0 {
            return Err(ShipError::Protocol(format!(
                "reply on channel '{}' without an outstanding request",
                self.shared.name
            )));
        }
        g[peer_dir].owed_replies -= 1;
        g[peer_dir].replies.push_back(bytes);
        gate.notify_all(&mut g);
        Ok(())
    }
}
