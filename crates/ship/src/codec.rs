//! Serde adapter for the SHIP wire format.
//!
//! The paper's SHIP channel transfers "any C++ object that implements the
//! `ship_serializable_if` interface". The Rust equivalent of "any object" is
//! any `serde` type: [`to_bytes`] / [`from_bytes`] encode and decode through
//! a compact, non-self-describing binary codec over the same
//! [`wire`](crate::wire) format the hand-written [`ShipSerialize`]
//! implementations use, and the [`Serde`] wrapper lets such types travel
//! through a SHIP channel directly.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//! use shiptlm_ship::codec::{from_bytes, to_bytes};
//!
//! #[derive(Serialize, Deserialize, Debug, PartialEq)]
//! struct Packet { seq: u32, payload: Vec<u8>, urgent: bool }
//!
//! # fn main() -> Result<(), shiptlm_ship::wire::WireError> {
//! let p = Packet { seq: 9, payload: vec![1, 2], urgent: true };
//! let bytes = to_bytes(&p)?;
//! assert_eq!(from_bytes::<Packet>(&bytes)?, p);
//! # Ok(())
//! # }
//! ```

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::{ser, Serialize};

use crate::serialize::ShipSerialize;
use crate::wire::{ByteReader, ByteWriter, WireError};

impl ser::Error for WireError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

/// Encodes any `serde` value into SHIP wire bytes.
///
/// # Errors
///
/// Returns a [`WireError`] if the value's `Serialize` implementation fails
/// (e.g. a map with an unknown length).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut w = ByteWriter::new();
    value.serialize(&mut Serializer { w: &mut w })?;
    Ok(w.into_bytes())
}

/// Decodes a `serde` value from SHIP wire bytes, requiring full consumption.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input or trailing bytes.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = ByteReader::new(bytes);
    let v = T::deserialize(&mut Deserializer { r: &mut r })?;
    if !r.is_exhausted() {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// Wrapper giving any `serde` type a [`ShipSerialize`] implementation, so it
/// can travel through a SHIP channel: `port.send(ctx, &Serde(my_struct))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Serde<T>(pub T);

impl<T> Serde<T> {
    /// Extracts the wrapped value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> From<T> for Serde<T> {
    fn from(v: T) -> Self {
        Serde(v)
    }
}

impl<T: Serialize + DeserializeOwned> ShipSerialize for Serde<T> {
    fn serialize(&self, w: &mut ByteWriter) {
        let bytes = to_bytes(&self.0).expect("serde serialization failed");
        w.put_len_prefixed(&bytes);
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let bytes = r.get_len_prefixed()?;
        Ok(Serde(from_bytes(bytes)?))
    }
}

struct Serializer<'a> {
    w: &'a mut ByteWriter,
}

impl<'a, 'b> ser::Serializer for &'a mut Serializer<'b> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.w.put_bool(v);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.w.put_i8(v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.w.put_i16(v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.w.put_i32(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.w.put_i64(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.w.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.w.put_u16(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.w.put_u32(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.w.put_u64(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.w.put_f32(v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.w.put_f64(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.w.put_u32(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.w.put_len_prefixed(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.w.put_len_prefixed(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.w.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        self.w.put_u8(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.w.put_u32(variant_index);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.w.put_u32(variant_index);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("sequences of unknown length"))?;
        self.w.put_u64(len as u64);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.w.put_u32(variant_index);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("maps of unknown length"))?;
        self.w.put_u64(len as u64);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.w.put_u32(variant_index);
        Ok(self)
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

macro_rules! impl_compound_ser {
    ($trait:path, $method:ident) => {
        impl<'a, 'b> $trait for &'a mut Serializer<'b> {
            type Ok = ();
            type Error = WireError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

impl_compound_ser!(ser::SerializeSeq, serialize_element);
impl_compound_ser!(ser::SerializeTuple, serialize_element);
impl_compound_ser!(ser::SerializeTupleStruct, serialize_field);
impl_compound_ser!(ser::SerializeTupleVariant, serialize_field);

impl<'a, 'b> ser::SerializeMap for &'a mut Serializer<'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for &'a mut Serializer<'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for &'a mut Serializer<'b> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

struct Deserializer<'a, 'de> {
    r: &'a mut ByteReader<'de>,
}

impl<'a, 'de, 'b> de::Deserializer<'de> for &'b mut Deserializer<'a, 'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported(
            "deserialize_any (the ship wire format is not self-describing)",
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_bool(self.r.get_bool()?)
    }
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i8(self.r.get_i8()?)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i16(self.r.get_i16()?)
    }
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i32(self.r.get_i32()?)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i64(self.r.get_i64()?)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.r.get_u8()?)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u16(self.r.get_u16()?)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u32(self.r.get_u32()?)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u64(self.r.get_u64()?)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_f32(self.r.get_f32()?)
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_f64(self.r.get_f64()?)
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let raw = self.r.get_u32()?;
        let c = char::from_u32(raw)
            .ok_or_else(|| WireError::InvalidValue(format!("char scalar {raw:#x}")))?;
        visitor.visit_char(c)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let bytes = self.r.get_len_prefixed()?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| WireError::InvalidValue(format!("utf-8: {e}")))?;
        visitor.visit_borrowed_str(s)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_borrowed_bytes(self.r.get_len_prefixed()?)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.r.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(WireError::InvalidValue(format!("option tag {b:#x}"))),
        }
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.r.get_u64()?;
        if len > self.r.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        visitor.visit_seq(Access {
            de: self,
            remaining: len as usize,
        })
    }
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Access {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.r.get_u64()?;
        if len > self.r.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        visitor.visit_map(Access {
            de: self,
            remaining: len as usize,
        })
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("identifiers"))
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported(
            "ignored_any (the ship wire format is not self-describing)",
        ))
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Access<'b, 'a, 'de> {
    de: &'b mut Deserializer<'a, 'de>,
    remaining: usize,
}

impl<'b, 'a, 'de> de::SeqAccess<'de> for Access<'b, 'a, 'de> {
    type Error = WireError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'b, 'a, 'de> de::MapAccess<'de> for Access<'b, 'a, 'de> {
    type Error = WireError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'b, 'a, 'de> {
    de: &'b mut Deserializer<'a, 'de>,
}

impl<'b, 'a, 'de> de::EnumAccess<'de> for EnumAccess<'b, 'a, 'de> {
    type Error = WireError;
    type Variant = Self;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let index = self.de.r.get_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'b, 'a, 'de> de::VariantAccess<'de> for EnumAccess<'b, 'a, 'de> {
    type Error = WireError;
    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Nested {
        name: String,
        values: Vec<i32>,
        flag: Option<bool>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Command {
        Nop,
        Write { addr: u64, data: Vec<u8> },
        Read(u64, u32),
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(Nested {
            name: "dct".into(),
            values: vec![-1, 0, 1],
            flag: Some(false),
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Command::Nop);
        roundtrip(Command::Write {
            addr: 0x8000_0000,
            data: vec![1, 2, 3],
        });
        roundtrip(Command::Read(16, 4));
    }

    #[test]
    fn collections_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        roundtrip(m);
        roundtrip(vec![Some('x'), None]);
        roundtrip((1u8, "two".to_string(), 3.0f64));
    }

    #[test]
    fn encoding_is_compact() {
        // A u32 costs exactly 4 bytes; a struct has no framing overhead.
        assert_eq!(to_bytes(&7u32).unwrap().len(), 4);
        #[derive(Serialize)]
        struct P {
            a: u32,
            b: u16,
        }
        assert_eq!(to_bytes(&P { a: 1, b: 2 }).unwrap().len(), 6);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&Nested {
            name: "x".into(),
            values: vec![1, 2, 3],
            flag: None,
        })
        .unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Nested>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_enum_variant_rejected() {
        let mut bytes = to_bytes(&Command::Nop).unwrap();
        bytes[0] = 99;
        assert!(from_bytes::<Command>(&bytes).is_err());
    }

    #[test]
    fn serde_wrapper_implements_ship_serialize() {
        use crate::serialize::{from_wire, to_wire};
        let v = Serde(Nested {
            name: "wrap".into(),
            values: vec![],
            flag: None,
        });
        let bytes = to_wire(&v);
        let back: Serde<Nested> = from_wire(&bytes).unwrap();
        assert_eq!(back.0, v.0);
    }
}
