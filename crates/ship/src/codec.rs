//! Envelope codec for the SHIP wire format.
//!
//! The paper's SHIP channel transfers "any C++ object that implements the
//! `ship_serializable_if` interface". The Rust equivalent is any type
//! implementing [`ShipSerialize`]: [`to_bytes`] / [`from_bytes`] encode and
//! decode through the compact, non-self-describing binary
//! [`wire`](crate::wire) format, and the [`Serde`] wrapper adds a
//! length-prefixed *envelope* around a payload so receivers can skip or
//! validate it without understanding its interior layout (the framing the
//! bus mailbox adapters rely on).
//!
//! ```
//! use shiptlm_ship::codec::{from_bytes, to_bytes};
//! use shiptlm_ship::prelude::*;
//!
//! #[derive(Debug, PartialEq)]
//! struct Packet { seq: u32, payload: Vec<u8>, urgent: bool }
//!
//! impl ShipSerialize for Packet {
//!     fn serialize(&self, w: &mut ByteWriter) {
//!         self.seq.serialize(w);
//!         self.payload.serialize(w);
//!         self.urgent.serialize(w);
//!     }
//!     fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
//!         Ok(Packet {
//!             seq: u32::deserialize(r)?,
//!             payload: Vec::deserialize(r)?,
//!             urgent: bool::deserialize(r)?,
//!         })
//!     }
//! }
//!
//! # fn main() -> Result<(), shiptlm_ship::wire::WireError> {
//! let p = Packet { seq: 9, payload: vec![1, 2], urgent: true };
//! let bytes = to_bytes(&p)?;
//! assert_eq!(from_bytes::<Packet>(&bytes)?, p);
//! # Ok(())
//! # }
//! ```

use crate::serialize::{from_wire, to_wire, ShipSerialize};
use crate::wire::{ByteReader, ByteWriter, WireError};

/// Encodes any [`ShipSerialize`] value into SHIP wire bytes.
///
/// # Errors
///
/// Infallible today (kept as a `Result` so richer backends can report
/// encoder-side failures without an API break).
pub fn to_bytes<T: ShipSerialize>(value: &T) -> Result<Vec<u8>, WireError> {
    Ok(to_wire(value))
}

/// Decodes a [`ShipSerialize`] value from SHIP wire bytes, requiring full
/// consumption of the input.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input or trailing bytes.
pub fn from_bytes<T: ShipSerialize>(bytes: &[u8]) -> Result<T, WireError> {
    from_wire(bytes)
}

/// Wrapper that frames a [`ShipSerialize`] payload in a length-prefixed
/// envelope, so it can travel through a SHIP channel with self-delimiting
/// framing: `port.send(ctx, &Serde(my_struct))`.
///
/// The name is kept from the original `serde`-backed adapter; the wrapper is
/// now dependency-free but preserves the same wire envelope (length prefix +
/// payload bytes), so recorded digests stay comparable across levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Serde<T>(pub T);

impl<T> Serde<T> {
    /// Extracts the wrapped value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> From<T> for Serde<T> {
    fn from(v: T) -> Self {
        Serde(v)
    }
}

impl<T: ShipSerialize> ShipSerialize for Serde<T> {
    fn serialize(&self, w: &mut ByteWriter) {
        // Stream the payload straight into the output buffer and backpatch
        // the length prefix — no per-message temporary allocation.
        w.put_len_prefixed_with(|w| self.0.serialize(w));
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let bytes = r.get_len_prefixed()?;
        Ok(Serde(from_wire(bytes)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: ShipSerialize + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[derive(Debug, PartialEq, Clone)]
    struct Nested {
        name: String,
        values: Vec<i32>,
        flag: Option<bool>,
    }

    impl ShipSerialize for Nested {
        fn serialize(&self, w: &mut ByteWriter) {
            self.name.serialize(w);
            self.values.serialize(w);
            self.flag.serialize(w);
        }
        fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
            Ok(Nested {
                name: String::deserialize(r)?,
                values: Vec::deserialize(r)?,
                flag: Option::deserialize(r)?,
            })
        }
    }

    #[derive(Debug, PartialEq, Clone)]
    enum Command {
        Nop,
        Write { addr: u64, data: Vec<u8> },
        Read(u64, u32),
    }

    impl ShipSerialize for Command {
        fn serialize(&self, w: &mut ByteWriter) {
            match self {
                Command::Nop => w.put_u32(0),
                Command::Write { addr, data } => {
                    w.put_u32(1);
                    addr.serialize(w);
                    data.serialize(w);
                }
                Command::Read(addr, n) => {
                    w.put_u32(2);
                    addr.serialize(w);
                    n.serialize(w);
                }
            }
        }
        fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
            match r.get_u32()? {
                0 => Ok(Command::Nop),
                1 => Ok(Command::Write {
                    addr: u64::deserialize(r)?,
                    data: Vec::deserialize(r)?,
                }),
                2 => Ok(Command::Read(u64::deserialize(r)?, u32::deserialize(r)?)),
                v => Err(WireError::InvalidValue(format!("command variant {v}"))),
            }
        }
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(Nested {
            name: "dct".into(),
            values: vec![-1, 0, 1],
            flag: Some(false),
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Command::Nop);
        roundtrip(Command::Write {
            addr: 0x8000_0000,
            data: vec![1, 2, 3],
        });
        roundtrip(Command::Read(16, 4));
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![Some(1u32), None]);
        roundtrip((1u8, "two".to_string(), 3.0f64));
        roundtrip(vec![vec![1u8, 2], vec![], vec![3]]);
    }

    #[test]
    fn encoding_is_compact() {
        // A u32 costs exactly 4 bytes; a tuple has no framing overhead.
        assert_eq!(to_bytes(&7u32).unwrap().len(), 4);
        assert_eq!(to_bytes(&(1u32, 2u16)).unwrap().len(), 6);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&Nested {
            name: "x".into(),
            values: vec![1, 2, 3],
            flag: None,
        })
        .unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Nested>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_enum_variant_rejected() {
        let mut bytes = to_bytes(&Command::Nop).unwrap();
        bytes[0] = 99;
        assert!(from_bytes::<Command>(&bytes).is_err());
    }

    #[test]
    fn serde_wrapper_is_length_prefixed() {
        let v = Serde(Nested {
            name: "wrap".into(),
            values: vec![],
            flag: None,
        });
        let bytes = to_wire(&v);
        let back: Serde<Nested> = from_wire(&bytes).unwrap();
        assert_eq!(back.0, v.0);
        // Envelope = 8-byte length prefix + interior payload.
        let interior = to_wire(&v.0);
        assert_eq!(bytes.len(), 8 + interior.len());
    }
}
