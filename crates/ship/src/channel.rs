//! The SHIP channel: a directed point-to-point transaction channel with the
//! four blocking interface method calls `send`, `recv`, `request`, `reply`
//! (paper §2).
//!
//! A [`ShipChannel`] joins exactly two endpoints. Each endpoint is wrapped in
//! a [`ShipPort`], the handle a processing element (PE) programs against.
//! Because `ShipPort` is backed by the object-safe [`ShipEndpoint`] trait,
//! the *same PE source code* runs unchanged when the channel is later mapped
//! onto a bus (wrapper endpoints) or across the HW/SW boundary (device-driver
//! endpoints) — the paper's central "no source change" constraint.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use shiptlm_kernel::event::Event;
use shiptlm_kernel::liveness::EndpointId;
use shiptlm_kernel::process::ThreadCtx;
use shiptlm_kernel::sim::SimHandle;
use shiptlm_kernel::time::{SimDur, SimTime};
use shiptlm_kernel::txn::{TxnLevel, TxnSpan};

use crate::bytes::ShipBytes;
use crate::error::ShipError;
use crate::record::{fnv1a, ShipOp, TransactionLog, TxRecord};
use crate::role::{RoleObservation, Usage};
use crate::serialize::{from_wire, to_wire, ShipSerialize};

/// Which end of a channel an endpoint sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first endpoint.
    A,
    /// The second endpoint.
    B,
}

impl Side {
    /// The opposite end.
    pub fn opposite(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// Configuration of an (untimed or estimation-timed) SHIP channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipConfig {
    /// Maximum buffered messages per direction; `send` blocks when full.
    pub capacity: usize,
    /// Fixed transport latency applied to every transfer.
    pub latency: SimDur,
    /// Additional latency per payload byte (coarse bandwidth estimate for
    /// pre-mapping exploration).
    pub per_byte: SimDur,
    /// Simulated-time budget for each blocking call. When set, a call that
    /// would block past the budget returns [`ShipError::Timeout`] with a
    /// channel-state snapshot instead of hanging the simulation. `None`
    /// (the default) blocks indefinitely, per the paper.
    pub timeout: Option<SimDur>,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig {
            capacity: 16,
            latency: SimDur::ZERO,
            per_byte: SimDur::ZERO,
            timeout: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgKind {
    Data,
    Request,
}

#[derive(Debug)]
struct Message {
    kind: MsgKind,
    bytes: ShipBytes,
}

/// Per-side queue bundle; index *i* belongs to side *i* (0 = A, 1 = B).
#[derive(Debug, Default)]
struct DirQueues {
    /// Data/request messages **from** this side to the opposite one.
    messages: VecDeque<Message>,
    /// Replies destined **to** this side (this side was the requester).
    replies: VecDeque<ShipBytes>,
    /// Requests **from** this side the peer has popped but not yet replied
    /// to.
    owed_replies: u64,
}

struct ChanShared {
    name: String,
    config: ShipConfig,
    /// Index 0: A→B traffic; index 1: B→A traffic.
    dirs: [Mutex<DirQueues>; 2],
    /// Message enqueued by side [A, B].
    msg_written: [Event; 2],
    /// Message dequeued from side [A, B]'s queue.
    msg_read: [Event; 2],
    /// Reply delivered to side [A, B].
    reply_written: [Event; 2],
    usage: [Arc<Usage>; 2],
    /// Handle for liveness bookkeeping (endpoint users, wait annotations).
    sim: SimHandle,
    /// Liveness endpoint ids of side [A, B].
    ep: [EndpointId; 2],
}

impl ChanShared {
    fn dir_index(from: Side) -> usize {
        match from {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

/// A point-to-point SHIP channel between two endpoints.
///
/// ```
/// use shiptlm_kernel::prelude::*;
/// use shiptlm_ship::prelude::*;
///
/// let sim = Simulation::new();
/// let channel = ShipChannel::new(&sim.handle(), "link", ShipConfig::default());
/// let (master, slave) = channel.ports("producer", "consumer");
/// sim.spawn_thread("producer", move |ctx| {
///     master.send(ctx, &42u32).unwrap();
///     let doubled: u32 = master.request(ctx, &21u32).unwrap();
///     assert_eq!(doubled, 42);
/// });
/// sim.spawn_thread("consumer", move |ctx| {
///     assert_eq!(slave.recv::<u32>(ctx).unwrap(), 42);
///     let q: u32 = slave.recv(ctx).unwrap();
///     slave.reply(ctx, &(q * 2)).unwrap();
/// });
/// sim.run();
/// assert_eq!(channel.observed_roles().0.role(), Some(Role::Master));
/// ```
pub struct ShipChannel {
    shared: Arc<ChanShared>,
}

impl ShipChannel {
    /// Creates a channel on the given simulation.
    pub fn new(sim: &SimHandle, name: &str, config: ShipConfig) -> Self {
        assert!(
            config.capacity > 0,
            "ship channel capacity must be non-zero"
        );
        let ev = |suffix: &str| sim.event(&format!("{name}.{suffix}"));
        let msg_written = [ev("a2b.written"), ev("b2a.written")];
        let msg_read = [ev("a2b.read"), ev("b2a.read")];
        let reply_written = [ev("reply2a"), ev("reply2b")];

        // Register both sides as liveness endpoints and annotate each
        // blocking-wait event with its meaning and the side that fires it,
        // so starved runs diagnose into named deadlock reports.
        let resource = format!("ship channel '{name}'");
        let ep = [
            sim.register_blocking_endpoint(&resource, "A"),
            sim.register_blocking_endpoint(&resource, "B"),
        ];
        for side in [0usize, 1] {
            let peer = 1 - side;
            // Waited on by the peer's `recv`; fired by this side writing.
            sim.annotate_wait(
                &msg_written[side],
                "recv (awaiting message)",
                Some(ep[side]),
            );
            // Waited on by this side's `send` when full; fired by the peer
            // draining the direction queue.
            sim.annotate_wait(
                &msg_read[side],
                "send (channel full, awaiting reader)",
                Some(ep[peer]),
            );
            // Waited on by this side's `request`; fired by the peer's
            // `reply`.
            sim.annotate_wait(
                &reply_written[side],
                "request (awaiting reply)",
                Some(ep[peer]),
            );
        }

        ShipChannel {
            shared: Arc::new(ChanShared {
                name: name.to_string(),
                config,
                dirs: [
                    Mutex::new(DirQueues::default()),
                    Mutex::new(DirQueues::default()),
                ],
                msg_written,
                msg_read,
                reply_written,
                usage: [Arc::new(Usage::new()), Arc::new(Usage::new())],
                sim: sim.clone(),
                ep,
            }),
        }
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Creates the two port handles, labelled with their PE names.
    /// Call once; PEs keep their port for the whole simulation.
    pub fn ports(&self, label_a: &str, label_b: &str) -> (ShipPort, ShipPort) {
        // Port labels are conventionally the owning PE names: give liveness
        // a fallback identity for owners that deadlock before calling.
        self.shared
            .sim
            .endpoint_owner_hint(self.shared.ep[0], label_a);
        self.shared
            .sim
            .endpoint_owner_hint(self.shared.ep[1], label_b);
        let channel: Arc<str> = Arc::from(self.shared.name.as_str());
        let a = ShipPort {
            endpoint: Arc::new(ChannelEndpoint {
                shared: Arc::clone(&self.shared),
                side: Side::A,
            }),
            usage: Arc::clone(&self.shared.usage[0]),
            channel: Arc::clone(&channel),
            label: Arc::from(label_a),
            recorder: Arc::new(Mutex::new(None)),
        };
        let b = ShipPort {
            endpoint: Arc::new(ChannelEndpoint {
                shared: Arc::clone(&self.shared),
                side: Side::B,
            }),
            usage: Arc::clone(&self.shared.usage[1]),
            channel,
            label: Arc::from(label_b),
            recorder: Arc::new(Mutex::new(None)),
        };
        (a, b)
    }

    /// Observed roles of (side A, side B) — the paper's automatic
    /// master/slave detection.
    pub fn observed_roles(&self) -> (RoleObservation, RoleObservation) {
        (
            self.shared.usage[0].snapshot().observe(),
            self.shared.usage[1].snapshot().observe(),
        )
    }

    /// Validates that the channel ended up with exactly one master and one
    /// slave end.
    ///
    /// # Errors
    ///
    /// Returns a [`ShipError::Protocol`] describing the offending end
    /// otherwise.
    pub fn validate_roles(&self) -> Result<(), ShipError> {
        use RoleObservation::*;
        match self.observed_roles() {
            (Master, Slave) | (Slave, Master) => Ok(()),
            (a, b) => Err(ShipError::Protocol(format!(
                "channel '{}' has invalid role pair ({a}, {b})",
                self.shared.name
            ))),
        }
    }
}

impl fmt::Debug for ShipChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ra, rb) = self.observed_roles();
        f.debug_struct("ShipChannel")
            .field("name", &self.shared.name)
            .field("role_a", &ra)
            .field("role_b", &rb)
            .finish()
    }
}

/// Raw byte-level endpoint behaviour behind a [`ShipPort`].
///
/// Implemented by the in-memory channel here, by SHIP↔OCP bus wrappers in
/// `shiptlm-cam`, and by the eSW device-driver communication library in
/// `shiptlm-hwsw`. PE code only ever sees [`ShipPort`], so swapping the
/// backing endpoint never requires source changes.
pub trait ShipEndpoint: Send + Sync {
    /// Transfers `bytes` to the peer; blocks while the channel is full.
    ///
    /// The payload is an Arc-backed [`ShipBytes`], so handing it to the
    /// channel (and on to the peer) never copies the buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`ShipError`] on protocol violations.
    fn send_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError>;

    /// Receives the next message (data or request payload); blocks while
    /// empty.
    ///
    /// # Errors
    ///
    /// Returns a [`ShipError`] on protocol violations.
    fn recv_bytes(&self, ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError>;

    /// Sends a request and blocks until the matching reply arrives.
    ///
    /// # Errors
    ///
    /// Returns a [`ShipError`] on protocol violations.
    fn request_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<ShipBytes, ShipError>;

    /// Replies to the oldest outstanding request received on this end.
    ///
    /// # Errors
    ///
    /// Returns [`ShipError::Protocol`] when no request is outstanding.
    fn reply_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError>;
}

struct ChannelEndpoint {
    shared: Arc<ChanShared>,
    side: Side,
}

impl ChannelEndpoint {
    fn out_dir(&self) -> usize {
        ChanShared::dir_index(self.side)
    }
    fn in_dir(&self) -> usize {
        ChanShared::dir_index(self.side.opposite())
    }
    fn ep(&self) -> EndpointId {
        self.shared.ep[ChanShared::dir_index(self.side)]
    }
    fn side_str(&self) -> &'static str {
        match self.side {
            Side::A => "A",
            Side::B => "B",
        }
    }

    /// Records the calling process as this side's user, so wait-for edges
    /// pointing at this endpoint resolve to a process name.
    fn note_user(&self, ctx: &ThreadCtx) {
        self.shared.sim.endpoint_user(self.ep(), ctx.pid());
    }

    /// Simulated-time deadline for the current call, if a timeout is
    /// configured. Taken at call entry, so transport delay counts against
    /// the budget.
    fn deadline(&self, ctx: &ThreadCtx) -> Option<SimTime> {
        self.shared
            .config
            .timeout
            .and_then(|t| ctx.now().checked_add(t))
    }

    /// Queue-state snapshot embedded in timeout errors and endpoint notes.
    fn snapshot(&self) -> String {
        let d0 = self.shared.dirs[0]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let d1 = self.shared.dirs[1]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        format!(
            "a2b {} queued / {} owed replies, b2a {} queued / {} owed replies",
            d0.messages.len(),
            d0.owed_replies,
            d1.messages.len(),
            d1.owed_replies
        )
    }

    fn timeout_error(&self, call: &'static str) -> ShipError {
        ShipError::Timeout {
            channel: self.shared.name.clone(),
            side: self.side_str().to_string(),
            call,
            detail: self.snapshot(),
        }
    }

    /// Blocks on `ev`, honouring the call's deadline when one is set.
    fn wait_or_timeout(
        &self,
        ctx: &mut ThreadCtx,
        ev: &Event,
        call: &'static str,
        deadline: Option<SimTime>,
    ) -> Result<(), ShipError> {
        let Some(dl) = deadline else {
            ctx.wait(ev);
            return Ok(());
        };
        let remaining = dl.saturating_since(ctx.now());
        if remaining.is_zero() {
            return Err(self.timeout_error(call));
        }
        match ctx.wait_any_for(&[ev], remaining) {
            Some(_) => Ok(()),
            None => Err(self.timeout_error(call)),
        }
    }

    /// Publishes this side's outstanding-reply debt as a liveness note.
    fn publish_owed(&self, owed: u64) {
        let note = if owed == 0 {
            None
        } else {
            Some(format!("owes {owed} reply(s)"))
        };
        self.shared.sim.endpoint_note(self.ep(), note);
    }

    fn transport_delay(&self, ctx: &mut ThreadCtx, len: usize) {
        let cfg = &self.shared.config;
        let d = cfg.latency + cfg.per_byte.saturating_mul(len as u64);
        if !d.is_zero() {
            ctx.wait_for(d);
        }
    }

    fn push_message(
        &self,
        ctx: &mut ThreadCtx,
        msg: Message,
        call: &'static str,
        deadline: Option<SimTime>,
    ) -> Result<(), ShipError> {
        let dir = self.out_dir();
        let mut msg = Some(msg);
        loop {
            {
                let mut q = self.shared.dirs[dir]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if q.messages.len() < self.shared.config.capacity {
                    q.messages
                        .push_back(msg.take().expect("message consumed twice"));
                    break;
                }
            }
            self.wait_or_timeout(ctx, &self.shared.msg_read[dir], call, deadline)?;
        }
        self.shared.msg_written[dir].notify_delta();
        Ok(())
    }

    fn pop_message(
        &self,
        ctx: &mut ThreadCtx,
        call: &'static str,
        deadline: Option<SimTime>,
    ) -> Result<Message, ShipError> {
        let dir = self.in_dir();
        loop {
            {
                let mut q = self.shared.dirs[dir]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if let Some(m) = q.messages.pop_front() {
                    let mut owed = None;
                    if m.kind == MsgKind::Request {
                        q.owed_replies += 1;
                        owed = Some(q.owed_replies);
                    }
                    drop(q);
                    if let Some(o) = owed {
                        self.publish_owed(o);
                    }
                    self.shared.msg_read[dir].notify_delta();
                    return Ok(m);
                }
            }
            self.wait_or_timeout(ctx, &self.shared.msg_written[dir], call, deadline)?;
        }
    }
}

impl ShipEndpoint for ChannelEndpoint {
    fn send_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        self.note_user(ctx);
        let deadline = self.deadline(ctx);
        self.transport_delay(ctx, bytes.len());
        self.push_message(
            ctx,
            Message {
                kind: MsgKind::Data,
                bytes,
            },
            "send",
            deadline,
        )
    }

    fn recv_bytes(&self, ctx: &mut ThreadCtx) -> Result<ShipBytes, ShipError> {
        self.note_user(ctx);
        let deadline = self.deadline(ctx);
        Ok(self.pop_message(ctx, "recv", deadline)?.bytes)
    }

    fn request_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<ShipBytes, ShipError> {
        self.note_user(ctx);
        let deadline = self.deadline(ctx);
        self.transport_delay(ctx, bytes.len());
        self.push_message(
            ctx,
            Message {
                kind: MsgKind::Request,
                bytes,
            },
            "request",
            deadline,
        )?;
        // Wait for a reply travelling back to this side.
        let my_dir = self.out_dir(); // replies-to-me are indexed by my side
        loop {
            {
                let mut q = self.shared.dirs[my_dir]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if let Some(r) = q.replies.pop_front() {
                    return Ok(r);
                }
            }
            self.wait_or_timeout(ctx, &self.shared.reply_written[my_dir], "request", deadline)?;
        }
    }

    fn reply_bytes(&self, ctx: &mut ThreadCtx, bytes: ShipBytes) -> Result<(), ShipError> {
        self.note_user(ctx);
        self.transport_delay(ctx, bytes.len());
        // The requester lives on the opposite side; its reply queue is
        // indexed by *its* side.
        let peer_dir = self.in_dir();
        let owed = {
            let mut q = self.shared.dirs[peer_dir]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if q.owed_replies == 0 {
                return Err(ShipError::Protocol(format!(
                    "reply on channel '{}' without an outstanding request",
                    self.shared.name
                )));
            }
            q.owed_replies -= 1;
            q.replies.push_back(bytes);
            q.owed_replies
        };
        self.publish_owed(owed);
        self.shared.reply_written[peer_dir].notify_delta();
        Ok(())
    }
}

/// The typed, recorded handle a PE uses to talk SHIP.
///
/// Obtained from [`ShipChannel::ports`] (or from wrapper/driver factories at
/// lower abstraction levels). All four calls block the calling process, per
/// the paper.
#[derive(Clone)]
pub struct ShipPort {
    endpoint: Arc<dyn ShipEndpoint>,
    usage: Arc<Usage>,
    /// Interned channel name; recording a transaction clones the `Arc`, not
    /// the string.
    channel: Arc<str>,
    /// Interned PE label, same deal.
    label: Arc<str>,
    recorder: Arc<Mutex<Option<TransactionLog>>>,
}

impl ShipPort {
    /// Builds a port around a custom [`ShipEndpoint`] backend (used by bus
    /// wrappers and the eSW communication library).
    pub fn from_endpoint(endpoint: Arc<dyn ShipEndpoint>, channel: &str, label: &str) -> ShipPort {
        ShipPort {
            endpoint,
            usage: Arc::new(Usage::new()),
            channel: Arc::from(channel),
            label: Arc::from(label),
            recorder: Arc::new(Mutex::new(None)),
        }
    }

    /// The channel name this port belongs to.
    pub fn channel_name(&self) -> &str {
        &self.channel
    }

    /// Builds a port that shares `usage` with its channel — the direct
    /// backend uses this so role observation sees the typed-call counters.
    pub(crate) fn with_usage(
        endpoint: Arc<dyn ShipEndpoint>,
        usage: Arc<Usage>,
        channel: Arc<str>,
        label: &str,
    ) -> ShipPort {
        ShipPort {
            endpoint,
            usage,
            channel,
            label: Arc::from(label),
            recorder: Arc::new(Mutex::new(None)),
        }
    }

    /// Rebuilds this port around a wrapped endpoint, keeping the channel
    /// name, label, usage counters and attached recorder shared with the
    /// original. This is the seam conformance harnesses use to interpose a
    /// fault-injecting proxy (drop/duplicate/delay) between PE code and the
    /// real transport without PE source changes.
    pub fn map_endpoint<F>(&self, wrap: F) -> ShipPort
    where
        F: FnOnce(Arc<dyn ShipEndpoint>) -> Arc<dyn ShipEndpoint>,
    {
        ShipPort {
            endpoint: wrap(Arc::clone(&self.endpoint)),
            usage: Arc::clone(&self.usage),
            channel: Arc::clone(&self.channel),
            label: Arc::clone(&self.label),
            recorder: Arc::clone(&self.recorder),
        }
    }

    /// The PE label given at creation.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Attaches a transaction log; every completed call is recorded.
    pub fn attach_recorder(&self, log: TransactionLog) {
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) = Some(log);
    }

    /// The role observed from this port's usage so far.
    pub fn observed_role(&self) -> RoleObservation {
        self.usage.snapshot().observe()
    }

    /// Raw usage counters.
    pub fn usage(&self) -> crate::role::UsageSnapshot {
        self.usage.snapshot()
    }

    /// Records one completed call into the kernel transaction recorder
    /// (level [`TxnLevel::Ship`]). One atomic load when recording is off.
    fn txn(&self, ctx: &ThreadCtx, op: &'static str, start: SimTime, bytes: usize, ok: bool) {
        if !ctx.txn_enabled() {
            return;
        }
        ctx.txn_record(TxnSpan {
            level: TxnLevel::Ship,
            op,
            resource: &self.channel,
            start,
            end: ctx.now(),
            bytes,
            ok,
        });
    }

    /// Records one completed call into the time-resolved metrics registry:
    /// per-channel message/byte counters plus the time the caller spent
    /// inside the call (blocked or transferring) as a busy span. One atomic
    /// load when metrics are off.
    fn metric(&self, ctx: &ThreadCtx, start: SimTime, bytes: usize) {
        if !ctx.metrics_enabled() {
            return;
        }
        let m = ctx.metrics();
        let now = ctx.now();
        m.counter_add("ship.messages", &self.channel, 1, now);
        m.counter_add("ship.bytes", &self.channel, bytes as u64, now);
        m.span_record("ship.blocked", &self.channel, start, now);
    }

    fn record(
        &self,
        ctx: &ThreadCtx,
        op: ShipOp,
        bytes: &[u8],
        start: shiptlm_kernel::time::SimTime,
    ) {
        let g = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(log) = g.as_ref() {
            log.push(TxRecord {
                channel: Arc::clone(&self.channel),
                port: Arc::clone(&self.label),
                op,
                len: bytes.len(),
                digest: fnv1a(bytes),
                start,
                end: ctx.now(),
            });
        }
    }

    /// Sends `value` to the peer (master call). Blocks while the channel is
    /// full.
    ///
    /// # Errors
    ///
    /// Returns a [`ShipError`] on protocol violations.
    pub fn send<T: ShipSerialize>(&self, ctx: &mut ThreadCtx, value: &T) -> Result<(), ShipError> {
        let start = ctx.now();
        let bytes = ShipBytes::from(to_wire(value));
        self.usage.count_send();
        // `clone` bumps the refcount; the payload itself is shared with the
        // channel, not copied.
        let result = self.endpoint.send_bytes(ctx, bytes.clone());
        self.txn(ctx, "send", start, bytes.len(), result.is_ok());
        self.metric(ctx, start, bytes.len());
        result?;
        self.record(ctx, ShipOp::Send, &bytes, start);
        Ok(())
    }

    /// Receives the next message (slave call). Blocks while empty.
    ///
    /// # Errors
    ///
    /// Returns [`ShipError::Wire`] when the payload cannot decode as `T`.
    pub fn recv<T: ShipSerialize>(&self, ctx: &mut ThreadCtx) -> Result<T, ShipError> {
        let start = ctx.now();
        self.usage.count_recv();
        let result = self.endpoint.recv_bytes(ctx);
        self.txn(
            ctx,
            "recv",
            start,
            result.as_ref().map_or(0, |b| b.len()),
            result.is_ok(),
        );
        self.metric(ctx, start, result.as_ref().map_or(0, |b| b.len()));
        let bytes = result?;
        self.record(ctx, ShipOp::Recv, &bytes, start);
        Ok(from_wire(&bytes)?)
    }

    /// Sends a request and blocks until the reply arrives (master call).
    ///
    /// # Errors
    ///
    /// Returns [`ShipError::Wire`] when the reply cannot decode as `R`.
    pub fn request<Q, R>(&self, ctx: &mut ThreadCtx, req: &Q) -> Result<R, ShipError>
    where
        Q: ShipSerialize,
        R: ShipSerialize,
    {
        let start = ctx.now();
        let bytes = ShipBytes::from(to_wire(req));
        self.usage.count_request();
        let req_len = bytes.len();
        let result = self.endpoint.request_bytes(ctx, bytes);
        self.txn(
            ctx,
            "request",
            start,
            result.as_ref().map_or(req_len, |r| req_len + r.len()),
            result.is_ok(),
        );
        self.metric(
            ctx,
            start,
            result.as_ref().map_or(req_len, |r| req_len + r.len()),
        );
        let reply = result?;
        self.record(ctx, ShipOp::Request, &reply, start);
        Ok(from_wire(&reply)?)
    }

    /// Replies to the oldest outstanding request (slave call).
    ///
    /// # Errors
    ///
    /// Returns [`ShipError::Protocol`] when no request is outstanding.
    pub fn reply<T: ShipSerialize>(&self, ctx: &mut ThreadCtx, value: &T) -> Result<(), ShipError> {
        let start = ctx.now();
        let bytes = ShipBytes::from(to_wire(value));
        self.usage.count_reply();
        let result = self.endpoint.reply_bytes(ctx, bytes.clone());
        self.txn(ctx, "reply", start, bytes.len(), result.is_ok());
        self.metric(ctx, start, bytes.len());
        result?;
        self.record(ctx, ShipOp::Reply, &bytes, start);
        Ok(())
    }
}

impl fmt::Debug for ShipPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShipPort")
            .field("channel", &self.channel)
            .field("label", &self.label)
            .field("role", &self.observed_role())
            .finish()
    }
}
