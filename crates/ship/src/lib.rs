//! # shiptlm-ship
//!
//! The **SHIP** protocol (*SystemC High-level Interface Protocol*) from
//! Klingauf, *Systematic Transaction Level Modeling of Embedded Systems with
//! SystemC* (DATE 2005), §2 — reimplemented in Rust on the
//! [`shiptlm-kernel`](shiptlm_kernel) discrete-event kernel.
//!
//! SHIP is "a lightweight communication protocol for transaction-based
//! modeling of directed point-to-point connections between two communication
//! entities". This crate provides:
//!
//! * the [`ShipChannel`](channel::ShipChannel) message-passing channel with
//!   the four blocking interface method calls `send`, `recv`, `request` and
//!   `reply`;
//! * the [`ShipSerialize`](serialize::ShipSerialize) trait (the paper's
//!   `ship_serializable_if`) and a [wire format](wire), plus an
//!   [envelope codec](codec) so framed objects can travel through a
//!   channel;
//! * [automatic master/slave detection](role) from observed call usage;
//! * [transaction recording](record) for cross-abstraction-level equivalence
//!   checking.
//!
//! ## Example
//!
//! ```
//! use shiptlm_kernel::prelude::*;
//! use shiptlm_ship::prelude::*;
//!
//! let sim = Simulation::new();
//! let ch = ShipChannel::new(&sim.handle(), "dct2q", ShipConfig::default());
//! let (tx, rx) = ch.ports("dct", "quant");
//! sim.spawn_thread("dct", move |ctx| {
//!     tx.send(ctx, &vec![1i32, -2, 3]).unwrap();
//! });
//! sim.spawn_thread("quant", move |ctx| {
//!     let block: Vec<i32> = rx.recv(ctx).unwrap();
//!     assert_eq!(block, vec![1, -2, 3]);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytes;
pub mod channel;
pub mod codec;
pub mod direct;
pub mod error;
pub mod record;
pub mod role;
pub mod serialize;
pub mod wire;

/// Commonly used SHIP items.
pub mod prelude {
    pub use crate::bytes::ShipBytes;
    pub use crate::channel::{ShipChannel, ShipConfig, ShipEndpoint, ShipPort, Side};
    pub use crate::codec::Serde;
    pub use crate::direct::DirectChannel;
    pub use crate::error::ShipError;
    pub use crate::record::{Label, ShipOp, TransactionLog, TxRecord};
    pub use crate::role::{Role, RoleObservation, Usage, UsageSnapshot};
    pub use crate::serialize::{from_wire, serialize_into, to_wire, ShipSerialize};
    pub use crate::wire::{ByteReader, ByteWriter, WireError};
}
