//! The `ShipSerialize` trait — the Rust analogue of the paper's
//! `ship_serializable_if` interface with its `serialize` / `deserialize`
//! functions.
//!
//! Any type implementing [`ShipSerialize`] can travel through a
//! [`ShipChannel`](crate::channel::ShipChannel). Implementations are provided
//! for the primitive types, `String`, `Option`, `Vec`, arrays, and tuples;
//! length-prefixed framing rides along via [`Serde`](crate::codec::Serde).

use crate::wire::{ByteReader, ByteWriter, WireError};

/// Objects that can be flattened into a SHIP wire stream and back.
///
/// ```
/// use shiptlm_ship::prelude::*;
///
/// #[derive(Debug, PartialEq)]
/// struct Frame { id: u32, data: Vec<u8> }
///
/// impl ShipSerialize for Frame {
///     fn serialize(&self, w: &mut ByteWriter) {
///         self.id.serialize(w);
///         self.data.serialize(w);
///     }
///     fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
///         Ok(Frame { id: u32::deserialize(r)?, data: Vec::deserialize(r)? })
///     }
/// }
///
/// # fn main() -> Result<(), WireError> {
/// let frame = Frame { id: 7, data: vec![1, 2, 3] };
/// let bytes = to_wire(&frame);
/// assert_eq!(from_wire::<Frame>(&bytes)?, frame);
/// # Ok(())
/// # }
/// ```
pub trait ShipSerialize: Sized {
    /// Appends this object's wire representation to `w`.
    fn serialize(&self, w: &mut ByteWriter);

    /// Reconstructs an object from the wire stream.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the stream is truncated or malformed.
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError>;
}

/// Serializes `value` into a fresh byte vector.
pub fn to_wire<T: ShipSerialize>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.serialize(&mut w);
    w.into_bytes()
}

/// Serializes `value` into `buf`, reusing its allocation.
///
/// The buffer is cleared first; after a warm-up message, encode loops run
/// allocation-free as long as payload sizes stay within the buffer's
/// high-water mark. Produces bytes identical to [`to_wire`].
pub fn serialize_into<T: ShipSerialize>(value: &T, buf: &mut Vec<u8>) {
    buf.clear();
    let mut w = ByteWriter::from(std::mem::take(buf));
    value.serialize(&mut w);
    *buf = w.into_bytes();
}

/// Deserializes a `T` from `bytes`, requiring the stream to be fully
/// consumed.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input or trailing bytes.
pub fn from_wire<T: ShipSerialize>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = ByteReader::new(bytes);
    let v = T::deserialize(&mut r)?;
    if !r.is_exhausted() {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

macro_rules! impl_ship_primitive {
    ($($t:ty => $put:ident, $get:ident);* $(;)?) => {$(
        impl ShipSerialize for $t {
            fn serialize(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
            fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    )*};
}

impl_ship_primitive! {
    bool => put_bool, get_bool;
    u8 => put_u8, get_u8;
    u16 => put_u16, get_u16;
    u32 => put_u32, get_u32;
    u64 => put_u64, get_u64;
    i8 => put_i8, get_i8;
    i16 => put_i16, get_i16;
    i32 => put_i32, get_i32;
    i64 => put_i64, get_i64;
    f32 => put_f32, get_f32;
    f64 => put_f64, get_f64;
}

impl ShipSerialize for usize {
    fn serialize(&self, w: &mut ByteWriter) {
        w.put_u64(*self as u64);
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::BadLength(v))
    }
}

impl ShipSerialize for () {
    fn serialize(&self, _w: &mut ByteWriter) {}
    fn deserialize(_r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl ShipSerialize for String {
    fn serialize(&self, w: &mut ByteWriter) {
        w.put_len_prefixed(self.as_bytes());
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let bytes = r.get_len_prefixed()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::InvalidValue(format!("utf-8: {e}")))
    }
}

impl<T: ShipSerialize> ShipSerialize for Option<T> {
    fn serialize(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.serialize(w);
            }
        }
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(r)?)),
            b => Err(WireError::InvalidValue(format!("option tag {b:#x}"))),
        }
    }
}

impl ShipSerialize for crate::bytes::ShipBytes {
    // Wire-compatible with `Vec<u8>` (u64 length + raw bytes), so either
    // side of a channel may use whichever representation it prefers; the
    // bulk copy avoids the per-element loop of the generic `Vec` impl.
    fn serialize(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_slice());
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let n = r.get_u64()?;
        if n > r.remaining() as u64 {
            return Err(WireError::BadLength(n));
        }
        Ok(crate::bytes::ShipBytes::from(r.take(n as usize)?.to_vec()))
    }
}

impl<T: ShipSerialize> ShipSerialize for Vec<T> {
    fn serialize(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.serialize(w);
        }
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let n = r.get_u64()?;
        // Elements are at least one byte on the wire (except unit, whose
        // vectors are pathological anyway); bound against the remainder.
        if n > r.remaining() as u64 && std::mem::size_of::<T>() != 0 {
            return Err(WireError::BadLength(n));
        }
        // Pre-allocation stays proportional to the *input* that backs it:
        // `n` elements need at least `n` wire bytes, so a malformed stream
        // can never make us reserve more element slots than it has bytes
        // (in-memory elements may be much wider than their encoding, e.g.
        // `Vec<Vec<u8>>` at 24 bytes per 8-byte wire element).
        let cap = n.min(r.remaining() as u64).min(1 << 20) as usize;
        let mut out = Vec::with_capacity(cap);
        for _ in 0..n {
            out.push(T::deserialize(r)?);
        }
        Ok(out)
    }
}

impl<T: ShipSerialize, const N: usize> ShipSerialize for [T; N] {
    fn serialize(&self, w: &mut ByteWriter) {
        for item in self {
            item.serialize(w);
        }
    }
    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(r)?);
        }
        out.try_into()
            .map_err(|_| WireError::InvalidValue("array length".into()))
    }
}

macro_rules! impl_ship_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ShipSerialize),+> ShipSerialize for ($($name,)+) {
            fn serialize(&self, w: &mut ByteWriter) {
                $(self.$idx.serialize(w);)+
            }
            fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::deserialize(r)?,)+))
            }
        }
    };
}

impl_ship_tuple!(A: 0);
impl_ship_tuple!(A: 0, B: 1);
impl_ship_tuple!(A: 0, B: 1, C: 2);
impl_ship_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: ShipSerialize + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_wire(&v);
        assert_eq!(from_wire::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(0xFFu8);
        roundtrip(-123i64);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(usize::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("grüße from Braunschweig"));
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u16, 2, 3]);
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
        roundtrip([7u32; 4]);
        roundtrip((1u8, String::from("x"), vec![9u64]));
    }

    #[test]
    fn serialize_into_matches_to_wire_and_reuses_capacity() {
        let v = (42u32, String::from("reuse"), vec![1u8, 2, 3]);
        let mut buf = Vec::new();
        serialize_into(&v, &mut buf);
        assert_eq!(buf, to_wire(&v));
        // A second, smaller message reuses the allocation.
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        serialize_into(&7u16, &mut buf);
        assert_eq!(buf, to_wire(&7u16));
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_wire(&5u8);
        bytes.push(0);
        assert_eq!(from_wire::<u8>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn vec_length_bomb_rejected() {
        // A length prefix of u64::MAX must not cause a huge allocation.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            from_wire::<Vec<u8>>(&bytes),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_len_prefixed(&[0xFF, 0xFE]);
        assert!(matches!(
            from_wire::<String>(&w.into_bytes()),
            Err(WireError::InvalidValue(_))
        ));
    }
}
