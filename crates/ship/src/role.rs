//! Automatic master/slave detection (paper §2).
//!
//! "PEs that exclusively use the `send` and `request` functions implicitly
//! represent a communication master, `recv` and `reply` are slave methods.
//! When consequently applied, this allows for automatic master/slave
//! detection."

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A communication role derived from observed call usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Initiates transfers (`send` / `request`).
    Master,
    /// Responds to transfers (`recv` / `reply`).
    Slave,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Master => "master",
            Role::Slave => "slave",
        })
    }
}

/// Outcome of observing an endpoint's call usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoleObservation {
    /// No calls observed yet.
    Unused,
    /// Only master calls observed.
    Master,
    /// Only slave calls observed.
    Slave,
    /// Both master and slave calls observed — the PE violates the SHIP
    /// discipline and cannot be mapped automatically.
    Inconsistent,
}

impl RoleObservation {
    /// The definite role, if one was established.
    pub fn role(self) -> Option<Role> {
        match self {
            RoleObservation::Master => Some(Role::Master),
            RoleObservation::Slave => Some(Role::Slave),
            _ => None,
        }
    }

    /// Merges observations from several ports of the same PE.
    pub fn combine(self, other: RoleObservation) -> RoleObservation {
        use RoleObservation::*;
        match (self, other) {
            (Unused, x) | (x, Unused) => x,
            (Master, Master) => Master,
            (Slave, Slave) => Slave,
            _ => Inconsistent,
        }
    }
}

impl fmt::Display for RoleObservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RoleObservation::Unused => "unused",
            RoleObservation::Master => "master",
            RoleObservation::Slave => "slave",
            RoleObservation::Inconsistent => "inconsistent",
        })
    }
}

/// Thread-safe call-usage counters attached to each SHIP port.
#[derive(Debug, Default)]
pub struct Usage {
    sends: AtomicU64,
    recvs: AtomicU64,
    requests: AtomicU64,
    replies: AtomicU64,
}

impl Usage {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Usage::default()
    }

    pub(crate) fn count_send(&self) {
        self.sends.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_recv(&self) {
        self.recvs.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_reply(&self) {
        self.replies.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> UsageSnapshot {
        UsageSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            recvs: self.recvs.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
        }
    }
}

/// Counter values captured by [`Usage::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UsageSnapshot {
    /// Number of `send` calls.
    pub sends: u64,
    /// Number of `recv` calls.
    pub recvs: u64,
    /// Number of `request` calls.
    pub requests: u64,
    /// Number of `reply` calls.
    pub replies: u64,
}

impl UsageSnapshot {
    /// Derives the observed role per the paper's rule.
    pub fn observe(self) -> RoleObservation {
        let master = self.sends + self.requests > 0;
        let slave = self.recvs + self.replies > 0;
        match (master, slave) {
            (false, false) => RoleObservation::Unused,
            (true, false) => RoleObservation::Master,
            (false, true) => RoleObservation::Slave,
            (true, true) => RoleObservation::Inconsistent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_detection_rules() {
        let mk = |s, r, q, p| UsageSnapshot {
            sends: s,
            recvs: r,
            requests: q,
            replies: p,
        };
        assert_eq!(mk(0, 0, 0, 0).observe(), RoleObservation::Unused);
        assert_eq!(mk(3, 0, 0, 0).observe(), RoleObservation::Master);
        assert_eq!(mk(0, 0, 2, 0).observe(), RoleObservation::Master);
        assert_eq!(mk(0, 5, 0, 0).observe(), RoleObservation::Slave);
        assert_eq!(mk(0, 0, 0, 1).observe(), RoleObservation::Slave);
        assert_eq!(mk(1, 1, 0, 0).observe(), RoleObservation::Inconsistent);
    }

    #[test]
    fn combine_is_commutative_and_sticky() {
        use RoleObservation::*;
        assert_eq!(Unused.combine(Master), Master);
        assert_eq!(Master.combine(Unused), Master);
        assert_eq!(Master.combine(Slave), Inconsistent);
        assert_eq!(Inconsistent.combine(Master), Inconsistent);
        assert_eq!(Slave.combine(Slave), Slave);
    }

    #[test]
    fn usage_counters_accumulate() {
        let u = Usage::new();
        u.count_send();
        u.count_send();
        u.count_reply();
        let s = u.snapshot();
        assert_eq!(s.sends, 2);
        assert_eq!(s.replies, 1);
        assert_eq!(s.observe(), RoleObservation::Inconsistent);
    }
}
