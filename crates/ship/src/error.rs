//! SHIP protocol errors.

use std::error::Error;
use std::fmt;

use crate::wire::WireError;

/// Failure of a SHIP channel operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipError {
    /// The payload could not be decoded into the requested type.
    Wire(WireError),
    /// The four-call protocol was violated (e.g. `reply` without an
    /// outstanding `request`).
    Protocol(String),
    /// A blocking call exceeded its configured timeout
    /// ([`ShipConfig::timeout`](crate::channel::ShipConfig::timeout))
    /// instead of hanging the simulation.
    Timeout {
        /// Channel the call was made on.
        channel: String,
        /// Which end made the call (`A` or `B`, or an adapter label).
        side: String,
        /// The blocking call that timed out (`send`/`recv`/`request`/`reply`).
        call: &'static str,
        /// Diagnostic snapshot of the channel state when the timeout fired
        /// (queue depths, outstanding replies).
        detail: String,
    },
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::Wire(e) => write!(f, "ship wire error: {e}"),
            ShipError::Protocol(s) => write!(f, "ship protocol violation: {s}"),
            ShipError::Timeout {
                channel,
                side,
                call,
                detail,
            } => write!(
                f,
                "ship {call} timed out on channel '{channel}' side {side}: {detail}"
            ),
        }
    }
}

impl Error for ShipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShipError::Wire(e) => Some(e),
            ShipError::Protocol(_) | ShipError::Timeout { .. } => None,
        }
    }
}

impl From<WireError> for ShipError {
    fn from(e: WireError) -> Self {
        ShipError::Wire(e)
    }
}
