//! SHIP protocol errors.

use std::error::Error;
use std::fmt;

use crate::wire::WireError;

/// Failure of a SHIP channel operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipError {
    /// The payload could not be decoded into the requested type.
    Wire(WireError),
    /// The four-call protocol was violated (e.g. `reply` without an
    /// outstanding `request`).
    Protocol(String),
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::Wire(e) => write!(f, "ship wire error: {e}"),
            ShipError::Protocol(s) => write!(f, "ship protocol violation: {s}"),
        }
    }
}

impl Error for ShipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShipError::Wire(e) => Some(e),
            ShipError::Protocol(_) => None,
        }
    }
}

impl From<WireError> for ShipError {
    fn from(e: WireError) -> Self {
        ShipError::Wire(e)
    }
}
