//! Transaction recording for cross-level equivalence checking.
//!
//! The design flow (paper Figure 1) refines one source model through three
//! abstraction levels. To show the refinement preserved behaviour we log
//! every SHIP operation — kind, channel, payload length and payload digest —
//! and compare logs across levels. Time stamps naturally differ between
//! levels; the *content sequence* must not.

use std::fmt;
use std::sync::{Arc, Mutex};

/// An interned name label (channel or port). Cloning is a refcount bump, so
/// recording a transaction never allocates for its labels.
pub type Label = Arc<str>;

use shiptlm_kernel::time::SimTime;

/// Which of the four SHIP calls produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShipOp {
    /// A `send` completed.
    Send,
    /// A `recv` completed.
    Recv,
    /// A `request` completed (the reply arrived).
    Request,
    /// A `reply` completed.
    Reply,
}

impl fmt::Display for ShipOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShipOp::Send => "send",
            ShipOp::Recv => "recv",
            ShipOp::Request => "request",
            ShipOp::Reply => "reply",
        })
    }
}

/// One completed SHIP operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRecord {
    /// Channel the operation ran on (interned).
    pub channel: Label,
    /// Port label, usually the PE name (interned).
    pub port: Label,
    /// Operation kind.
    pub op: ShipOp,
    /// Payload length in bytes.
    pub len: usize,
    /// FNV-1a digest of the payload bytes.
    pub digest: u64,
    /// When the blocking call started.
    pub start: SimTime,
    /// When it completed.
    pub end: SimTime,
}

impl TxRecord {
    /// The timing-independent portion used for equivalence checking.
    pub fn content_key(&self) -> (Label, Label, ShipOp, usize, u64) {
        (
            self.channel.clone(),
            self.port.clone(),
            self.op,
            self.len,
            self.digest,
        )
    }
}

/// FNV-1a 64-bit digest, used to fingerprint payloads cheaply.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A shared, append-only log of SHIP operations.
#[derive(Debug, Clone, Default)]
pub struct TransactionLog {
    records: Arc<Mutex<Vec<TxRecord>>>,
}

impl TransactionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TransactionLog::default()
    }

    /// Appends a record.
    pub fn push(&self, rec: TxRecord) {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(rec);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all records.
    pub fn to_vec(&self) -> Vec<TxRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Runs `f` over the recorded slice in place, without cloning it.
    ///
    /// The log lock is held for the duration of `f`; do not call back into
    /// the same log from inside.
    pub fn with_records<R>(&self, f: impl FnOnce(&[TxRecord]) -> R) -> R {
        f(&self.records.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Timing-independent content comparison against another log.
    ///
    /// Records are compared **per (channel, port)** stream in order; global
    /// interleaving across independent channels may legitimately differ
    /// between abstraction levels.
    pub fn content_equivalent(&self, other: &TransactionLog) -> Result<(), EquivalenceError> {
        // Per-(channel, port) stream of (op, len, digest) triples.
        type Streams = std::collections::BTreeMap<(Label, Label), Vec<(ShipOp, usize, u64)>>;
        let group = |log: &TransactionLog| {
            let mut m: Streams = Streams::new();
            for r in log.to_vec() {
                m.entry((r.channel.clone(), r.port.clone()))
                    .or_default()
                    .push((r.op, r.len, r.digest));
            }
            m
        };
        let a = group(self);
        let b = group(other);
        let keys: std::collections::BTreeSet<_> = a.keys().chain(b.keys()).cloned().collect();
        for key in keys {
            let empty = Vec::new();
            let sa = a.get(&key).unwrap_or(&empty);
            let sb = b.get(&key).unwrap_or(&empty);
            if sa != sb {
                let first_diff = sa
                    .iter()
                    .zip(sb.iter())
                    .position(|(x, y)| x != y)
                    .unwrap_or_else(|| sa.len().min(sb.len()));
                return Err(EquivalenceError {
                    channel: key.0.to_string(),
                    port: key.1.to_string(),
                    index: first_diff,
                    left_len: sa.len(),
                    right_len: sb.len(),
                });
            }
        }
        Ok(())
    }
}

/// First divergence between two transaction logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceError {
    /// Channel whose streams diverged.
    pub channel: String,
    /// Port whose streams diverged.
    pub port: String,
    /// Index of the first differing record.
    pub index: usize,
    /// Record count on the left side.
    pub left_len: usize,
    /// Record count on the right side.
    pub right_len: usize,
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction logs diverge on channel '{}' port '{}' at record {} ({} vs {} records)",
            self.channel, self.port, self.index, self.left_len, self.right_len
        )
    }
}

impl std::error::Error for EquivalenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(channel: &str, port: &str, op: ShipOp, payload: &[u8]) -> TxRecord {
        TxRecord {
            channel: channel.into(),
            port: port.into(),
            op,
            len: payload.len(),
            digest: fnv1a(payload),
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        }
    }

    #[test]
    fn fnv_distinguishes_payloads() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn identical_logs_are_equivalent() {
        let a = TransactionLog::new();
        let b = TransactionLog::new();
        for log in [&a, &b] {
            log.push(rec("ch0", "p0", ShipOp::Send, b"xyz"));
            log.push(rec("ch0", "p1", ShipOp::Recv, b"xyz"));
        }
        assert!(a.content_equivalent(&b).is_ok());
    }

    #[test]
    fn timing_differences_are_ignored() {
        let a = TransactionLog::new();
        let b = TransactionLog::new();
        let mut r1 = rec("ch", "p", ShipOp::Send, b"q");
        r1.end = SimTime::from_ps(10);
        a.push(r1);
        let mut r2 = rec("ch", "p", ShipOp::Send, b"q");
        r2.end = SimTime::from_ps(99_999);
        b.push(r2);
        assert!(a.content_equivalent(&b).is_ok());
    }

    #[test]
    fn interleaving_across_channels_is_ignored() {
        let a = TransactionLog::new();
        a.push(rec("c1", "p", ShipOp::Send, b"1"));
        a.push(rec("c2", "p", ShipOp::Send, b"2"));
        let b = TransactionLog::new();
        b.push(rec("c2", "p", ShipOp::Send, b"2"));
        b.push(rec("c1", "p", ShipOp::Send, b"1"));
        assert!(a.content_equivalent(&b).is_ok());
    }

    #[test]
    fn payload_divergence_detected() {
        let a = TransactionLog::new();
        a.push(rec("c", "p", ShipOp::Send, b"hello"));
        let b = TransactionLog::new();
        b.push(rec("c", "p", ShipOp::Send, b"world"));
        let err = a.content_equivalent(&b).unwrap_err();
        assert_eq!(err.channel, "c");
        assert_eq!(err.index, 0);
    }

    #[test]
    fn missing_records_detected() {
        let a = TransactionLog::new();
        a.push(rec("c", "p", ShipOp::Send, b"x"));
        a.push(rec("c", "p", ShipOp::Send, b"y"));
        let b = TransactionLog::new();
        b.push(rec("c", "p", ShipOp::Send, b"x"));
        let err = a.content_equivalent(&b).unwrap_err();
        assert_eq!(err.left_len, 2);
        assert_eq!(err.right_len, 1);
    }
}
