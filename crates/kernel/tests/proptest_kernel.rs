//! Randomized tests of scheduler invariants: timed events always fire in
//! timestamp order, FIFOs never reorder or drop, signals obey
//! last-write-wins, and simulated time never runs backwards.
//!
//! Inputs are generated from a deterministic seeded [`Rng`], so every case
//! is reproducible from its iteration index.

use std::sync::{Arc, Mutex};

use shiptlm_kernel::prelude::*;
use shiptlm_kernel::rng::Rng;

const CASES: u64 = 64;

/// Whatever order timed notifications are scheduled in, waiters observe
/// them in non-decreasing timestamp order.
#[test]
fn timed_events_fire_in_time_order() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7131_0000 + case);
        let n = rng.gen_range_usize(1, 20);
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(1, 10_000)).collect();

        let sim = Simulation::new();
        let fired = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in delays.iter().enumerate() {
            let ev = sim.event(&format!("e{i}"));
            let fired = Arc::clone(&fired);
            let ev2 = ev.clone();
            sim.spawn_thread(&format!("w{i}"), move |ctx| {
                ctx.wait(&ev2);
                fired.lock().unwrap().push(ctx.now().as_ps());
            });
            ev.notify_after(SimDur::ns(*d));
        }
        sim.run();
        let fired = fired.lock().unwrap();
        assert_eq!(fired.len(), delays.len(), "case {case}");
        assert!(fired.windows(2).all(|w| w[0] <= w[1]), "case {case}");
        let mut expected: Vec<u64> = delays.iter().map(|d| d * 1_000).collect();
        expected.sort_unstable();
        assert_eq!(&*fired, &expected, "case {case}");
    }
}

/// A FIFO delivers every item exactly once, in order, regardless of
/// capacity and producer/consumer pacing.
#[test]
fn fifo_preserves_order_and_content() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7131_1000 + case);
        let cap = rng.gen_range_usize(1, 8);
        let n = rng.gen_range_usize(1, 50);
        let items: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let prod_gap = rng.gen_range_u64(0, 50);
        let cons_gap = rng.gen_range_u64(0, 50);

        let sim = Simulation::new();
        let f = sim.fifo::<u32>("f", cap);
        let (tx, rx) = (f.clone(), f);
        let received = Arc::new(Mutex::new(Vec::new()));
        let sent = items.clone();
        sim.spawn_thread("p", move |ctx| {
            for v in sent {
                tx.write(ctx, v);
                if prod_gap > 0 {
                    ctx.wait_for(SimDur::ps(prod_gap));
                }
            }
        });
        {
            let received = Arc::clone(&received);
            let n = items.len();
            sim.spawn_thread("c", move |ctx| {
                for _ in 0..n {
                    if cons_gap > 0 {
                        ctx.wait_for(SimDur::ps(cons_gap));
                    }
                    received.lock().unwrap().push(rx.read(ctx));
                }
            });
        }
        let r = sim.run();
        assert_eq!(r.reason, StopReason::Starved, "case {case}");
        assert_eq!(&*received.lock().unwrap(), &items, "case {case}");
    }
}

/// The last write in an evaluate phase wins; intermediate values are
/// never observable in later phases.
#[test]
fn signal_last_write_wins() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7131_2000 + case);
        let n = rng.gen_range_usize(1, 20);
        let writes: Vec<u16> = (0..n).map(|_| rng.next_u16()).collect();

        let sim = Simulation::new();
        let sig = sim.signal("s", 0u16);
        let last = *writes.last().unwrap();
        let s2 = sig.clone();
        sim.spawn_thread("w", move |ctx| {
            for v in &writes {
                s2.write(*v);
            }
            ctx.wait_delta();
            assert_eq!(s2.read(), last);
        });
        sim.run();
        assert_eq!(sig.read(), last, "case {case}");
    }
}

/// `wait_for` sequences accumulate exactly.
#[test]
fn wait_for_accumulates() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7131_3000 + case);
        let n = rng.gen_range_usize(1, 20);
        let delays: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(0, 1_000)).collect();

        let sim = Simulation::new();
        let total: u64 = delays.iter().sum();
        sim.spawn_thread("p", move |ctx| {
            for d in &delays {
                ctx.wait_for(SimDur::ps(*d));
            }
        });
        let r = sim.run();
        assert_eq!(r.time.as_ps(), total, "case {case}");
    }
}

/// Semaphores never go negative and serve every acquirer under random
/// contention.
#[test]
fn semaphore_conserves_permits() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7131_4000 + case);
        let procs = rng.gen_range_usize(1, 6);
        let permits = rng.gen_range_usize(1, 4);
        let hold_ns = rng.gen_range_u64(1, 100);

        let sim = Simulation::new();
        let sem = SimSemaphore::new(&sim.handle(), "s", permits);
        let active = Arc::new(Mutex::new((0usize, 0usize))); // (current, peak)
        for i in 0..procs {
            let sem = sem.clone();
            let active = Arc::clone(&active);
            sim.spawn_thread(&format!("p{i}"), move |ctx| {
                sem.acquire(ctx);
                {
                    let mut g = active.lock().unwrap();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                ctx.wait_for(SimDur::ns(hold_ns));
                active.lock().unwrap().0 -= 1;
                sem.release();
            });
        }
        let r = sim.run();
        assert_eq!(r.reason, StopReason::Starved, "case {case}");
        let g = active.lock().unwrap();
        assert_eq!(g.0, 0, "case {case}");
        assert!(g.1 <= permits, "case {case}");
        assert_eq!(sem.available(), permits, "case {case}");
    }
}
