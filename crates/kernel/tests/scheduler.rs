//! Scheduler-semantics tests: delta cycles, notification flavors, process
//! interleaving, signals, FIFOs, clocks and run control.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shiptlm_kernel::prelude::*;

fn shared_log() -> (
    Arc<Mutex<Vec<String>>>,
    impl Fn(&str) + Clone + Send + 'static,
) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let l = Arc::clone(&log);
    (log, move |s: &str| l.lock().unwrap().push(s.to_string()))
}

#[test]
fn empty_simulation_starves_at_zero() {
    let sim = Simulation::new();
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    assert_eq!(r.time, SimTime::ZERO);
}

#[test]
fn timed_wait_advances_time() {
    let sim = Simulation::new();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s = Arc::clone(&seen);
    sim.spawn_thread("t", move |ctx| {
        for _ in 0..3 {
            ctx.wait_for(SimDur::ns(7));
            s.lock().unwrap().push(ctx.now().as_ps());
        }
    });
    let r = sim.run();
    assert_eq!(*seen.lock().unwrap(), vec![7_000, 14_000, 21_000]);
    assert_eq!(r.time, SimTime::from_ps(21_000));
}

#[test]
fn delta_notification_wakes_next_delta_same_time() {
    let sim = Simulation::new();
    let ev = sim.event("e");
    let (log, push) = shared_log();
    {
        let ev = ev.clone();
        let push = push.clone();
        sim.spawn_thread("waiter", move |ctx| {
            ctx.wait(&ev);
            push(&format!("woken@{}", ctx.now().as_ps()));
        });
    }
    {
        let push = push.clone();
        sim.spawn_thread("notifier", move |ctx| {
            ev.notify_delta();
            push("notified");
            ctx.wait_for(SimDur::ns(1));
        });
    }
    sim.run();
    assert_eq!(*log.lock().unwrap(), vec!["notified", "woken@0"]);
}

#[test]
fn immediate_notification_wakes_same_evaluate_phase() {
    // Waiter registers first (spawn order), notifier fires immediately; the
    // waiter must wake without any time or delta advance observable to it.
    let sim = Simulation::new();
    let ev = sim.event("e");
    let deltas = Arc::new(AtomicU64::new(0));
    {
        let ev = ev.clone();
        sim.spawn_thread("waiter", move |ctx| {
            ctx.wait(&ev);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
    }
    {
        let d = Arc::clone(&deltas);
        sim.spawn_thread("notifier", move |_ctx| {
            ev.notify();
            d.store(1, Ordering::SeqCst);
        });
    }
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    assert_eq!(deltas.load(Ordering::SeqCst), 1);
}

#[test]
fn timed_notifications_fire_in_order_and_batch_same_time() {
    let sim = Simulation::new();
    let (log, push) = shared_log();
    let e1 = sim.event("e1");
    let e2 = sim.event("e2");
    {
        let (e1, push) = (e1.clone(), push.clone());
        sim.spawn_thread("w1", move |ctx| {
            ctx.wait(&e1);
            push(&format!("w1@{}", ctx.now().as_ps()));
        });
    }
    {
        let (e2, push) = (e2.clone(), push.clone());
        sim.spawn_thread("w2", move |ctx| {
            ctx.wait(&e2);
            push(&format!("w2@{}", ctx.now().as_ps()));
        });
    }
    e2.notify_after(SimDur::ns(5));
    e1.notify_after(SimDur::ns(5));
    sim.run();
    let log = log.lock().unwrap();
    // Both fire at 5 ns; order follows notification sequence (e2 first).
    assert_eq!(*log, vec!["w2@5000", "w1@5000"]);
}

#[test]
fn earlier_notification_overrides_later() {
    let sim = Simulation::new();
    let ev = sim.event("e");
    let woke_at = Arc::new(Mutex::new(None));
    {
        let (ev, woke_at) = (ev.clone(), Arc::clone(&woke_at));
        sim.spawn_thread("w", move |ctx| {
            ctx.wait(&ev);
            *woke_at.lock().unwrap() = Some(ctx.now().as_ps());
        });
    }
    ev.notify_after(SimDur::ns(100));
    ev.notify_after(SimDur::ns(10)); // earlier wins
    sim.run();
    assert_eq!(*woke_at.lock().unwrap(), Some(10_000));
}

#[test]
fn cancel_removes_pending_notification() {
    let sim = Simulation::new();
    let ev = sim.event("e");
    let woke = Arc::new(AtomicU64::new(0));
    {
        let (ev, woke) = (ev.clone(), Arc::clone(&woke));
        sim.spawn_thread("w", move |ctx| {
            ctx.wait(&ev);
            woke.store(1, Ordering::SeqCst);
        });
    }
    ev.notify_after(SimDur::ns(10));
    ev.cancel();
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Starved);
    assert_eq!(woke.load(Ordering::SeqCst), 0);
    assert_eq!(r.time, SimTime::ZERO);
}

#[test]
fn wait_any_reports_the_cause() {
    let sim = Simulation::new();
    let a = sim.event("a");
    let b = sim.event("b");
    let which = Arc::new(AtomicU64::new(99));
    {
        let (a, b, which) = (a.clone(), b.clone(), Arc::clone(&which));
        sim.spawn_thread("w", move |ctx| {
            let idx = ctx.wait_any(&[&a, &b]);
            which.store(idx as u64, Ordering::SeqCst);
            assert_eq!(ctx.now().as_ps(), 3_000);
        });
    }
    b.notify_after(SimDur::ns(3));
    a.notify_after(SimDur::ns(8));
    sim.run();
    assert_eq!(which.load(Ordering::SeqCst), 1);
}

#[test]
fn wait_any_deregisters_losers() {
    // After waking on `b`, a later `a` must not wake the process again
    // from a stale registration.
    let sim = Simulation::new();
    let a = sim.event("a");
    let b = sim.event("b");
    let wakes = Arc::new(AtomicU64::new(0));
    {
        let (a, b, wakes) = (a.clone(), b.clone(), Arc::clone(&wakes));
        sim.spawn_thread("w", move |ctx| {
            ctx.wait_any(&[&a, &b]);
            wakes.fetch_add(1, Ordering::SeqCst);
            ctx.wait_for(SimDur::ns(100));
            wakes.fetch_add(10, Ordering::SeqCst);
        });
    }
    b.notify_after(SimDur::ns(1));
    a.notify_after(SimDur::ns(2));
    sim.run();
    assert_eq!(wakes.load(Ordering::SeqCst), 11);
}

#[test]
fn signal_write_visible_next_delta_only() {
    let sim = Simulation::new();
    let sig = sim.signal("s", 0u32);
    let s2 = sig.clone();
    sim.spawn_thread("w", move |ctx| {
        s2.write(42);
        assert_eq!(s2.read(), 0, "write must not be visible in same phase");
        ctx.wait_delta();
        assert_eq!(s2.read(), 42);
    });
    sim.run();
    assert_eq!(sig.read(), 42);
}

#[test]
fn signal_changed_event_fires_only_on_change() {
    let sim = Simulation::new();
    let sig = sim.signal("s", 5u32);
    let changes = Arc::new(AtomicU64::new(0));
    {
        let ev = sig.changed_event();
        let changes = Arc::clone(&changes);
        sim.spawn_method_no_init("mon", &[&ev], move |_| {
            changes.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let sig = sig.clone();
        sim.spawn_thread("w", move |ctx| {
            sig.write(5); // same value: no event
            ctx.wait_for(SimDur::ns(1));
            sig.write(6); // change: event
            ctx.wait_for(SimDur::ns(1));
            sig.write(6); // same: no event
            ctx.wait_for(SimDur::ns(1));
        });
    }
    sim.run();
    assert_eq!(changes.load(Ordering::SeqCst), 1);
}

#[test]
fn signal_last_write_wins_within_phase() {
    let sim = Simulation::new();
    let sig = sim.signal("s", 0u8);
    let s2 = sig.clone();
    sim.spawn_thread("w", move |ctx| {
        s2.write(1);
        s2.write(2);
        s2.write(3);
        ctx.wait_delta();
        assert_eq!(s2.read(), 3);
    });
    sim.run();
}

#[test]
fn fifo_blocks_reader_until_write() {
    let sim = Simulation::new();
    let f = sim.fifo::<u32>("f", 2);
    let (tx, rx) = (f.clone(), f);
    let got = Arc::new(Mutex::new(Vec::new()));
    {
        let got = Arc::clone(&got);
        sim.spawn_thread("rx", move |ctx| {
            for _ in 0..3 {
                let v = rx.read(ctx);
                got.lock().unwrap().push((v, ctx.now().as_ps()));
            }
        });
    }
    sim.spawn_thread("tx", move |ctx| {
        ctx.wait_for(SimDur::ns(10));
        tx.write(ctx, 7);
        ctx.wait_for(SimDur::ns(10));
        tx.write(ctx, 8);
        tx.write(ctx, 9);
    });
    sim.run();
    let got = got.lock().unwrap();
    assert_eq!(got[0], (7, 10_000));
    assert_eq!(got[1], (8, 20_000));
    assert_eq!(got[2].0, 9);
}

#[test]
fn fifo_blocks_writer_when_full() {
    let sim = Simulation::new();
    let f = sim.fifo::<u32>("f", 1);
    let (tx, rx) = (f.clone(), f);
    let write_times = Arc::new(Mutex::new(Vec::new()));
    {
        let wt = Arc::clone(&write_times);
        sim.spawn_thread("tx", move |ctx| {
            for i in 0..3 {
                tx.write(ctx, i);
                wt.lock().unwrap().push(ctx.now().as_ps());
            }
        });
    }
    sim.spawn_thread("rx", move |ctx| {
        for _ in 0..3 {
            ctx.wait_for(SimDur::ns(100));
            let _ = rx.read(ctx);
        }
    });
    sim.run();
    let wt = write_times.lock().unwrap();
    assert_eq!(wt[0], 0); // fits in buffer
    assert_eq!(wt[1], 100_000); // waits for first read
    assert_eq!(wt[2], 200_000);
}

#[test]
fn fifo_nonblocking_variants() {
    let sim = Simulation::new();
    let f = sim.fifo::<u8>("f", 2);
    assert!(f.is_empty());
    assert_eq!(f.try_read(), None);
    assert_eq!(f.try_write(1), Ok(()));
    assert_eq!(f.try_write(2), Ok(()));
    assert_eq!(f.try_write(3), Err(3));
    assert_eq!(f.len(), 2);
    assert_eq!(f.try_read(), Some(1));
    assert_eq!(f.capacity(), 2);
}

#[test]
fn clock_edges_and_cycle_count() {
    let sim = Simulation::new();
    let clk = sim.clock("clk", SimDur::ns(10));
    let edges = Arc::new(Mutex::new(Vec::new()));
    {
        let e = Arc::clone(&edges);
        let pos = clk.posedge().clone();
        sim.spawn_thread("mon", move |ctx| {
            for _ in 0..3 {
                ctx.wait(&pos);
                e.lock().unwrap().push(ctx.now().as_ps());
            }
        });
    }
    sim.run_until(SimTime::from_ps(100_000));
    // First rising edge at half period (5 ns), then every 10 ns.
    assert_eq!(*edges.lock().unwrap(), vec![5_000, 15_000, 25_000]);
    assert_eq!(clk.freq_hz(), 100_000_000);
    assert!(clk.cycle_count() >= 9);
}

#[test]
fn wait_cycles_counts_posedges() {
    let sim = Simulation::new();
    let clk = sim.clock("clk", SimDur::ns(4));
    let t_end = Arc::new(Mutex::new(SimTime::ZERO));
    {
        let t = Arc::clone(&t_end);
        let pos = clk.posedge().clone();
        sim.spawn_thread("p", move |ctx| {
            // Align to first edge then count 5 more.
            ctx.wait(&pos);
            let start = ctx.now();
            for _ in 0..5 {
                ctx.wait(&pos);
            }
            *t.lock().unwrap() = ctx.now();
            assert_eq!(ctx.now().since(start), SimDur::ns(20));
        });
    }
    sim.run_until(SimTime::ZERO + SimDur::ns(100));
    assert_eq!(*t_end.lock().unwrap(), SimTime::from_ps(2_000 + 20_000));
}

#[test]
fn run_until_pauses_and_resumes() {
    let sim = Simulation::new();
    let hits = Arc::new(AtomicU64::new(0));
    {
        let hits = Arc::clone(&hits);
        sim.spawn_thread("p", move |ctx| loop {
            ctx.wait_for(SimDur::ns(10));
            hits.fetch_add(1, Ordering::SeqCst);
        });
    }
    let r1 = sim.run_until(SimTime::ZERO + SimDur::ns(35));
    assert_eq!(r1.reason, StopReason::TimeLimit);
    assert_eq!(hits.load(Ordering::SeqCst), 3);
    let r2 = sim.run_for(SimDur::ns(20));
    assert_eq!(r2.time, SimTime::ZERO + SimDur::ns(55));
    assert_eq!(hits.load(Ordering::SeqCst), 5);
}

#[test]
fn stop_from_process() {
    let sim = Simulation::new();
    sim.spawn_thread("p", move |ctx| {
        ctx.wait_for(SimDur::ns(42));
        ctx.stop();
        ctx.wait_for(SimDur::ns(1000)); // never completes
    });
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Stopped);
    assert_eq!(r.time, SimTime::ZERO + SimDur::ns(42));
}

#[test]
fn dynamic_spawn_during_run() {
    let sim = Simulation::new();
    let count = Arc::new(AtomicU64::new(0));
    {
        let count = Arc::clone(&count);
        sim.spawn_thread("parent", move |ctx| {
            ctx.wait_for(SimDur::ns(5));
            let child_count = Arc::clone(&count);
            ctx.sim().spawn_thread("child", move |cctx| {
                cctx.wait_for(SimDur::ns(5));
                child_count.fetch_add(1, Ordering::SeqCst);
            });
        });
    }
    let r = sim.run();
    assert_eq!(count.load(Ordering::SeqCst), 1);
    assert_eq!(r.time, SimTime::ZERO + SimDur::ns(10));
}

#[test]
fn method_process_triggers_on_static_sensitivity() {
    let sim = Simulation::new();
    let ev = sim.event("tick");
    let count = Arc::new(AtomicU64::new(0));
    {
        let count = Arc::clone(&count);
        sim.spawn_method_no_init("m", &[&ev], move |_api| {
            count.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let ev = ev.clone();
        sim.spawn_thread("driver", move |ctx| {
            for _ in 0..4 {
                ev.notify_delta();
                ctx.wait_for(SimDur::ns(1));
            }
        });
    }
    sim.run();
    assert_eq!(count.load(Ordering::SeqCst), 4);
}

#[test]
fn method_initialization_call_runs_once() {
    let sim = Simulation::new();
    let ev = sim.event("never");
    let count = Arc::new(AtomicU64::new(0));
    {
        let count = Arc::clone(&count);
        sim.spawn_method("m", &[&ev], move |api| {
            assert!(api.cause().is_none());
            count.fetch_add(1, Ordering::SeqCst);
        });
    }
    sim.run();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
#[should_panic(expected = "process 'boom' panicked")]
fn process_panic_propagates_to_run() {
    let sim = Simulation::new();
    sim.spawn_thread("boom", |ctx| {
        ctx.wait_for(SimDur::ns(1));
        panic!("kaboom");
    });
    sim.run();
}

#[test]
fn drop_with_blocked_processes_does_not_hang() {
    let sim = Simulation::new();
    let ev = sim.event("never");
    for i in 0..4 {
        let ev = ev.clone();
        sim.spawn_thread(&format!("blocked{i}"), move |ctx| {
            ctx.wait(&ev);
        });
    }
    sim.run(); // starves with blocked processes
    drop(sim); // must join all threads without deadlock
}

#[test]
fn delta_count_tracks_activity() {
    let sim = Simulation::new();
    sim.spawn_thread("p", |ctx| {
        for _ in 0..10 {
            ctx.wait_delta();
        }
    });
    sim.run();
    assert!(sim.delta_count() >= 10);
}

#[test]
fn two_processes_rendezvous_deterministically() {
    // A classic ping-pong over two events; ordering must be stable.
    let sim = Simulation::new();
    let ping = sim.event("ping");
    let pong = sim.event("pong");
    let (log, push) = shared_log();
    {
        let (ping, pong, push) = (ping.clone(), pong.clone(), push.clone());
        sim.spawn_thread("a", move |ctx| {
            for _ in 0..3 {
                ping.notify_delta();
                push("a:ping");
                ctx.wait(&pong);
            }
        });
    }
    {
        let push = push.clone();
        sim.spawn_thread("b", move |ctx| {
            for _ in 0..3 {
                ctx.wait(&ping);
                push("b:pong");
                pong.notify_delta();
            }
        });
    }
    sim.run();
    assert_eq!(
        *log.lock().unwrap(),
        vec!["a:ping", "b:pong", "a:ping", "b:pong", "a:ping", "b:pong"]
    );
}

#[test]
fn vcd_trace_written() {
    let dir = std::env::temp_dir().join("shiptlm_kernel_vcd_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wave.vcd");
    let sim = Simulation::new();
    sim.trace_vcd(&path).unwrap();
    let sig = sim.signal("data", 0u8);
    sig.trace("top.data");
    {
        let sig = sig.clone();
        sim.spawn_thread("w", move |ctx| {
            for i in 1..=3u8 {
                sig.write(i * 16);
                ctx.wait_for(SimDur::ns(10));
            }
        });
    }
    sim.run();
    sim.flush_trace().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("top.data"));
    assert!(text.contains("#10000"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drop_without_run_does_not_hang() {
    let sim = Simulation::new();
    let ev = sim.event("never");
    for i in 0..3 {
        let ev = ev.clone();
        sim.spawn_thread(&format!("parked{i}"), move |ctx| {
            ctx.wait(&ev);
        });
    }
    drop(sim); // threads still parked at their initial resume
}

#[test]
fn watchdog_stops_a_livelocked_model() {
    let sim = Simulation::new();
    let ping = sim.event("ping");
    let pong = sim.event("pong");
    {
        let (ping, pong) = (ping.clone(), pong.clone());
        sim.spawn_thread("a", move |ctx| loop {
            ping.notify_delta();
            ctx.wait(&pong);
        });
    }
    sim.spawn_thread("b", move |ctx| loop {
        pong.notify_delta();
        ctx.wait(&ping);
    });
    sim.set_watchdog(Some(std::time::Duration::from_millis(50)));
    let r = sim.run();
    assert_eq!(r.reason, StopReason::Watchdog);
    // Diagnosis still works after a watchdog stop (nobody is in a cycle —
    // the model livelocks rather than deadlocks).
    let _ = sim.diagnose();
}

#[test]
fn timed_notification_near_u64_max_saturates() {
    // A notification that would overflow SimTime lands on SimTime::MAX (the
    // infinite horizon) instead of panicking, so it never fires within any
    // finite run and the simulation simply starves.
    let sim = Simulation::new();
    let ev = sim.event("far_future");
    let seen = Arc::new(AtomicU64::new(0));
    {
        let (ev, seen) = (ev.clone(), Arc::clone(&seen));
        sim.spawn_thread("astronomer", move |ctx| {
            ctx.wait_for(SimDur::ns(5));
            ev.notify_after(SimDur::ps(u64::MAX));
            ctx.wait(&ev);
            seen.store(1, Ordering::SeqCst);
        });
    }
    let r = sim.run_until(SimTime::from_ps(1_000_000));
    assert_eq!(r.reason, StopReason::TimeLimit);
    assert_eq!(seen.load(Ordering::SeqCst), 0);
}

#[test]
fn run_for_near_u64_max_saturates() {
    let sim = Simulation::new();
    sim.spawn_thread("ticker", |ctx| {
        ctx.wait_for(SimDur::ns(3));
    });
    // Run once so `now` is non-zero, then ask for more time than the
    // SimTime domain has left: the limit saturates to SimTime::MAX instead
    // of panicking and the run ends normally.
    let r = sim.run_for(SimDur::ps(u64::MAX - 10));
    assert_eq!(r.reason, StopReason::Starved);
    assert_eq!(r.time, SimTime::ZERO + SimDur::ns(3));
    let r = sim.run_for(SimDur::ps(u64::MAX));
    assert_eq!(r.reason, StopReason::Starved);
}

#[test]
fn flush_trace_surfaces_io_errors() {
    // VcdTracer::flush re-creates the file at its recorded path; removing
    // the parent directory makes that fail, and flush_trace must report it
    // rather than swallow it.
    let dir = std::env::temp_dir().join("shiptlm_kernel_vcd_unwritable");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wave.vcd");
    let sim = Simulation::new();
    sim.trace_vcd(&path).unwrap();
    let sig = sim.signal("data", 0u8);
    sig.trace("top.data");
    sim.run();
    std::fs::remove_dir_all(&dir).unwrap();
    let err = sim
        .flush_trace()
        .expect_err("flush into a removed directory");
    assert!(
        err.to_string().contains("wave.vcd"),
        "error names the path: {err}"
    );
}

#[test]
fn process_panic_message_reaches_the_driving_thread() {
    // Regression: the kernel used to coerce the panic payload *Box* itself
    // to `&dyn Any`, so every process panic surfaced as "unknown panic
    // payload" instead of the original message.
    let sim = Simulation::new();
    sim.spawn_thread("crasher", |_ctx| {
        // Panic via `unwrap` on purpose — the exact path model PEs take.
        #[allow(clippy::unnecessary_literal_unwrap)]
        let () = Err::<(), String>("original cause".into()).unwrap();
    });
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()))
        .expect_err("process panic must re-raise on the driving thread");
    let msg = payload
        .downcast_ref::<String>()
        .expect("re-raised panic carries a String");
    assert!(
        msg.contains("process 'crasher' panicked") && msg.contains("original cause"),
        "driving-thread panic must carry the original message, got: {msg}"
    );
}
