//! Thread-process context: the handle through which a simulated process
//! waits, observes time and interacts with the kernel.

use std::fmt;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

use crate::event::Event;
use crate::kernel::{EventId, KernelShared, KillToken, ProcessId, Resume, YieldMsg};
use crate::metrics::MetricsShared;
use crate::time::{SimDur, SimTime};
use crate::txn::{TxnEvent, TxnOutcome, TxnSpan};

/// Execution context of a thread process.
///
/// A `ThreadCtx` is handed to the process body and is the only way for the
/// process to block: [`wait`](ThreadCtx::wait), [`wait_for`](ThreadCtx::wait_for),
/// [`wait_any`](ThreadCtx::wait_any) and [`wait_delta`](ThreadCtx::wait_delta)
/// suspend the process and hand control back to the scheduler. Channel
/// blocking operations (FIFO reads, SHIP calls, bus transactions) all take
/// `&mut ThreadCtx` for the same reason.
pub struct ThreadCtx {
    kernel: Arc<KernelShared>,
    pid: ProcessId,
    resume_rx: Receiver<Resume>,
    yield_tx: SyncSender<YieldMsg>,
}

impl ThreadCtx {
    pub(crate) fn new(
        kernel: Arc<KernelShared>,
        pid: ProcessId,
        resume_rx: Receiver<Resume>,
        yield_tx: SyncSender<YieldMsg>,
    ) -> Self {
        ThreadCtx {
            kernel,
            pid,
            resume_rx,
            yield_tx,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// The id of this process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The name this process was spawned with (an interned label; cloning
    /// it is cheap).
    pub fn name(&self) -> std::sync::Arc<str> {
        self.kernel.process_name(self.pid)
    }

    /// A handle for creating events / spawning processes from inside a
    /// running process.
    pub fn sim(&self) -> crate::sim::SimHandle {
        crate::sim::SimHandle::new(Arc::clone(&self.kernel))
    }

    /// Requests the simulation to stop at the end of the current delta.
    pub fn stop(&self) {
        self.kernel.request_stop();
    }

    /// `true` when the transaction recorder is enabled
    /// ([`Simulation::record_transactions`](crate::sim::Simulation::record_transactions)).
    /// A single relaxed atomic load — instrumentation sites use it as the
    /// zero-overhead fast path when recording is off.
    #[inline]
    pub fn txn_enabled(&self) -> bool {
        self.kernel.txn.is_enabled()
    }

    /// Records a completed transaction span, stamping it with this process's
    /// name. No-op when the recorder is disabled.
    pub fn txn_record(&self, span: TxnSpan<'_>) {
        if !self.kernel.txn.is_enabled() {
            return;
        }
        self.kernel.txn.record(TxnEvent {
            level: span.level,
            op: span.op,
            resource: Arc::clone(span.resource),
            process: self.kernel.process_name(self.pid),
            start: span.start,
            end: span.end,
            bytes: span.bytes,
            outcome: if span.ok {
                TxnOutcome::Ok
            } else {
                TxnOutcome::Error
            },
        });
    }

    /// `true` when the time-resolved metrics registry is enabled
    /// ([`Simulation::enable_metrics`](crate::sim::Simulation::enable_metrics)).
    /// A single relaxed atomic load — the zero-overhead fast path for
    /// instrumentation sites when metrics are off.
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.kernel.metrics.is_enabled()
    }

    /// The kernel's metrics registry, for recording counters, gauges, busy
    /// spans and histogram samples from instrumented channels.
    pub fn metrics(&self) -> &MetricsShared {
        &self.kernel.metrics
    }

    /// Suspends until `event` is notified.
    pub fn wait(&mut self, event: &Event) {
        self.kernel.register_wait(self.pid, &[event.id]);
        let _ = self.yield_now();
    }

    /// Suspends until any of `events` fires; returns the index of the one
    /// that woke this process.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty (the process could never wake).
    pub fn wait_any(&mut self, events: &[&Event]) -> usize {
        assert!(!events.is_empty(), "wait_any on an empty event set");
        let ids: Vec<EventId> = events.iter().map(|e| e.id).collect();
        self.kernel.register_wait(self.pid, &ids);
        let cause = self.yield_now();
        match cause {
            Some(c) => ids
                .iter()
                .position(|i| *i == c)
                .expect("woken by unregistered event"),
            None => panic!("wait_any woke without a cause"),
        }
    }

    /// Suspends until any of `events` fires or `timeout` elapses.
    ///
    /// Returns `Some(index)` of the waking event, or `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty or `timeout` is zero.
    pub fn wait_any_for(&mut self, events: &[&Event], timeout: SimDur) -> Option<usize> {
        assert!(!events.is_empty(), "wait_any_for on an empty event set");
        assert!(!timeout.is_zero(), "wait_any_for with a zero timeout");
        let timer = self.kernel.process_timer(self.pid);
        self.kernel.notify_after(timer, timeout);
        let mut ids: Vec<EventId> = events.iter().map(|e| e.id).collect();
        ids.push(timer);
        self.kernel.register_wait(self.pid, &ids);
        let cause = self.yield_now();
        match cause {
            Some(c) if c == timer => None,
            Some(c) => {
                // Cancel the pending timeout so it cannot spuriously wake a
                // later wait on the same private timer.
                self.kernel.cancel(timer);
                Some(
                    ids.iter()
                        .position(|i| *i == c)
                        .expect("woken by unregistered event"),
                )
            }
            None => panic!("wait_any_for woke without a cause"),
        }
    }

    /// Suspends for duration `d` of simulated time.
    pub fn wait_for(&mut self, d: SimDur) {
        if d.is_zero() {
            self.wait_delta();
            return;
        }
        let timer = self.kernel.process_timer(self.pid);
        self.kernel.notify_after(timer, d);
        self.kernel.register_wait(self.pid, &[timer]);
        let _ = self.yield_now();
    }

    /// Suspends for one delta cycle.
    pub fn wait_delta(&mut self) {
        let timer = self.kernel.process_timer(self.pid);
        self.kernel.notify_delta(timer);
        self.kernel.register_wait(self.pid, &[timer]);
        let _ = self.yield_now();
    }

    /// Hands control to the scheduler and blocks until resumed.
    ///
    /// The caller must have registered a wait beforehand, otherwise the
    /// process never wakes.
    fn yield_now(&mut self) -> Option<EventId> {
        self.yield_tx
            .send(YieldMsg::Yielded)
            .expect("kernel disappeared while yielding");
        match self.resume_rx.recv() {
            Ok(Resume::Go(cause)) => cause,
            Ok(Resume::Kill) | Err(_) => {
                // Unwind through the process body; caught by the wrapper.
                // `resume_unwind` skips the panic hook, so teardown is quiet.
                std::panic::resume_unwind(Box::new(KillToken));
            }
        }
    }
}

impl fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("pid", &self.pid.0)
            .field("name", &self.name())
            .field("now", &self.now())
            .finish()
    }
}
