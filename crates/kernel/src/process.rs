//! Thread-process context: the handle through which a simulated process
//! waits, observes time and interacts with the kernel.

use std::fmt;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, OnceLock};

use crate::direct::{Construct, DirectCore};
use crate::event::Event;
use crate::kernel::{EventId, KernelShared, KillToken, ProcessId, Resume, YieldMsg};
use crate::metrics::MetricsShared;
use crate::time::{SimDur, SimTime};
use crate::txn::{TxnEvent, TxnOutcome, TxnSpan};

/// Which execution backend is driving this process.
enum CtxInner {
    /// The delta-cycle kernel: blocking calls rendezvous with the
    /// scheduler.
    Kernel {
        kernel: Arc<KernelShared>,
        pid: ProcessId,
        resume_rx: Receiver<Resume>,
        yield_tx: SyncSender<YieldMsg>,
    },
    /// The direct backend (see [`crate::direct`]): the thread runs free,
    /// time stands still at zero, and any construct needing the event
    /// queue disqualifies the run.
    Direct {
        core: Arc<DirectCore>,
        index: usize,
        name: Arc<str>,
        /// Lazily-built dormant kernel backing [`ThreadCtx::sim`]: objects
        /// created through it (events, signals) work as long as they never
        /// need the event queue; the first construct that does aborts the
        /// direct run via the kernel's `direct_guard`.
        sim: OnceLock<Arc<KernelShared>>,
    },
}

/// Execution context of a thread process.
///
/// A `ThreadCtx` is handed to the process body and is the only way for the
/// process to block: [`wait`](ThreadCtx::wait), [`wait_for`](ThreadCtx::wait_for),
/// [`wait_any`](ThreadCtx::wait_any) and [`wait_delta`](ThreadCtx::wait_delta)
/// suspend the process and hand control back to the scheduler. Channel
/// blocking operations (FIFO reads, SHIP calls, bus transactions) all take
/// `&mut ThreadCtx` for the same reason.
///
/// The same type serves both backends: under the delta-cycle kernel the
/// blocking calls rendezvous with the scheduler; under the direct backend
/// ([`DirectSim`](crate::direct::DirectSim)) the process is a free-running
/// OS thread and kernel-only constructs abort the run with a
/// [`Disqualified`](crate::direct::Disqualified) verdict instead.
pub struct ThreadCtx {
    inner: CtxInner,
}

impl ThreadCtx {
    pub(crate) fn new(
        kernel: Arc<KernelShared>,
        pid: ProcessId,
        resume_rx: Receiver<Resume>,
        yield_tx: SyncSender<YieldMsg>,
    ) -> Self {
        ThreadCtx {
            inner: CtxInner::Kernel {
                kernel,
                pid,
                resume_rx,
                yield_tx,
            },
        }
    }

    pub(crate) fn direct(core: Arc<DirectCore>, index: usize, name: Arc<str>) -> Self {
        ThreadCtx {
            inner: CtxInner::Direct {
                core,
                index,
                name,
                sim: OnceLock::new(),
            },
        }
    }

    /// When this process runs on the direct backend, its core and thread
    /// index — the hook direct channels use to park against the right
    /// stall domain. `None` under the delta-cycle kernel.
    pub fn direct_backend(&self) -> Option<(&Arc<DirectCore>, usize)> {
        match &self.inner {
            CtxInner::Kernel { .. } => None,
            CtxInner::Direct { core, index, .. } => Some((core, *index)),
        }
    }

    /// Current simulated time. Always [`SimTime::ZERO`] on the direct
    /// backend — a model that qualifies for it never observes time advance
    /// under the delta-cycle kernel either.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            CtxInner::Kernel { kernel, .. } => kernel.now(),
            CtxInner::Direct { .. } => SimTime::ZERO,
        }
    }

    /// The id of this process.
    pub fn pid(&self) -> ProcessId {
        match &self.inner {
            CtxInner::Kernel { pid, .. } => *pid,
            CtxInner::Direct { index, .. } => ProcessId(*index),
        }
    }

    /// The name this process was spawned with (an interned label; cloning
    /// it is cheap).
    pub fn name(&self) -> Arc<str> {
        match &self.inner {
            CtxInner::Kernel { kernel, pid, .. } => kernel.process_name(*pid),
            CtxInner::Direct { name, .. } => Arc::clone(name),
        }
    }

    /// A handle for creating events / spawning processes from inside a
    /// running process.
    ///
    /// On the direct backend this hands out a *dormant* kernel: creating
    /// objects through it succeeds, but the first operation that needs the
    /// event queue (a timed notification, a signal update, a dynamic
    /// process) disqualifies the direct run.
    pub fn sim(&self) -> crate::sim::SimHandle {
        let kernel = match &self.inner {
            CtxInner::Kernel { kernel, .. } => Arc::clone(kernel),
            CtxInner::Direct { core, sim, .. } => {
                let k = sim.get_or_init(|| {
                    let k = KernelShared::new();
                    let _ = k.direct_guard.set(Arc::downgrade(core));
                    k
                });
                Arc::clone(k)
            }
        };
        crate::sim::SimHandle::new(kernel)
    }

    /// Requests the simulation to stop at the end of the current delta.
    pub fn stop(&self) {
        match &self.inner {
            CtxInner::Kernel { kernel, .. } => kernel.request_stop(),
            CtxInner::Direct { core, .. } => core.disqualify(Construct::ExplicitStop),
        }
    }

    /// `true` when the transaction recorder is enabled
    /// ([`Simulation::record_transactions`](crate::sim::Simulation::record_transactions)).
    /// A single relaxed atomic load — instrumentation sites use it as the
    /// zero-overhead fast path when recording is off.
    #[inline]
    pub fn txn_enabled(&self) -> bool {
        match &self.inner {
            CtxInner::Kernel { kernel, .. } => kernel.txn.is_enabled(),
            CtxInner::Direct { core, .. } => core.txn.is_enabled(),
        }
    }

    /// Records a completed transaction span, stamping it with this process's
    /// name. No-op when the recorder is disabled.
    pub fn txn_record(&self, span: TxnSpan<'_>) {
        if !self.txn_enabled() {
            return;
        }
        let (txn, process) = match &self.inner {
            CtxInner::Kernel { kernel, pid, .. } => (&kernel.txn, kernel.process_name(*pid)),
            CtxInner::Direct { core, index, .. } => (&core.txn, core.process_name(*index)),
        };
        txn.record(TxnEvent {
            level: span.level,
            op: span.op,
            resource: Arc::clone(span.resource),
            process,
            start: span.start,
            end: span.end,
            bytes: span.bytes,
            outcome: if span.ok {
                TxnOutcome::Ok
            } else {
                TxnOutcome::Error
            },
        });
    }

    /// `true` when the time-resolved metrics registry is enabled
    /// ([`Simulation::enable_metrics`](crate::sim::Simulation::enable_metrics)).
    /// A single relaxed atomic load — the zero-overhead fast path for
    /// instrumentation sites when metrics are off.
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        match &self.inner {
            CtxInner::Kernel { kernel, .. } => kernel.metrics.is_enabled(),
            CtxInner::Direct { core, .. } => core.metrics.is_enabled(),
        }
    }

    /// The kernel's metrics registry, for recording counters, gauges, busy
    /// spans and histogram samples from instrumented channels.
    pub fn metrics(&self) -> &MetricsShared {
        match &self.inner {
            CtxInner::Kernel { kernel, .. } => &kernel.metrics,
            CtxInner::Direct { core, .. } => &core.metrics,
        }
    }

    /// Suspends until `event` is notified.
    pub fn wait(&mut self, event: &Event) {
        match &mut self.inner {
            CtxInner::Kernel { kernel, pid, .. } => {
                kernel.register_wait(*pid, &[event.id]);
                let _ = self.yield_now();
            }
            CtxInner::Direct { core, .. } => core.disqualify(Construct::EventWait),
        }
    }

    /// Suspends until any of `events` fires; returns the index of the one
    /// that woke this process.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty (the process could never wake).
    pub fn wait_any(&mut self, events: &[&Event]) -> usize {
        assert!(!events.is_empty(), "wait_any on an empty event set");
        let ids: Vec<EventId> = events.iter().map(|e| e.id).collect();
        match &mut self.inner {
            CtxInner::Kernel { kernel, pid, .. } => {
                kernel.register_wait(*pid, &ids);
            }
            CtxInner::Direct { core, .. } => core.disqualify(Construct::EventWait),
        }
        let cause = self.yield_now();
        match cause {
            Some(c) => ids
                .iter()
                .position(|i| *i == c)
                .expect("woken by unregistered event"),
            None => panic!("wait_any woke without a cause"),
        }
    }

    /// Suspends until any of `events` fires or `timeout` elapses.
    ///
    /// Returns `Some(index)` of the waking event, or `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty or `timeout` is zero.
    pub fn wait_any_for(&mut self, events: &[&Event], timeout: SimDur) -> Option<usize> {
        assert!(!events.is_empty(), "wait_any_for on an empty event set");
        assert!(!timeout.is_zero(), "wait_any_for with a zero timeout");
        let (timer, mut ids) = match &mut self.inner {
            CtxInner::Kernel { kernel, pid, .. } => {
                let timer = kernel.process_timer(*pid);
                kernel.notify_after(timer, timeout);
                let ids: Vec<EventId> = events.iter().map(|e| e.id).collect();
                (timer, ids)
            }
            CtxInner::Direct { core, .. } => core.disqualify(Construct::TimedWait),
        };
        ids.push(timer);
        if let CtxInner::Kernel { kernel, pid, .. } = &self.inner {
            kernel.register_wait(*pid, &ids);
        }
        let cause = self.yield_now();
        match cause {
            Some(c) if c == timer => None,
            Some(c) => {
                // Cancel the pending timeout so it cannot spuriously wake a
                // later wait on the same private timer.
                if let CtxInner::Kernel { kernel, .. } = &self.inner {
                    kernel.cancel(timer);
                }
                Some(
                    ids.iter()
                        .position(|i| *i == c)
                        .expect("woken by unregistered event"),
                )
            }
            None => panic!("wait_any_for woke without a cause"),
        }
    }

    /// Suspends for duration `d` of simulated time.
    pub fn wait_for(&mut self, d: SimDur) {
        if d.is_zero() {
            self.wait_delta();
            return;
        }
        match &mut self.inner {
            CtxInner::Kernel { kernel, pid, .. } => {
                let timer = kernel.process_timer(*pid);
                kernel.notify_after(timer, d);
                kernel.register_wait(*pid, &[timer]);
                let _ = self.yield_now();
            }
            CtxInner::Direct { core, .. } => core.disqualify(Construct::TimedWait),
        }
    }

    /// Suspends for one delta cycle. On the direct backend this is a plain
    /// scheduling hint (plus an abort check): qualifying models only use it
    /// for fairness, never for ordering.
    pub fn wait_delta(&mut self) {
        match &mut self.inner {
            CtxInner::Kernel { kernel, pid, .. } => {
                let timer = kernel.process_timer(*pid);
                kernel.notify_delta(timer);
                kernel.register_wait(*pid, &[timer]);
                let _ = self.yield_now();
            }
            CtxInner::Direct { core, .. } => {
                core.check_abort();
                std::thread::yield_now();
            }
        }
    }

    /// Hands control to the scheduler and blocks until resumed.
    ///
    /// The caller must have registered a wait beforehand, otherwise the
    /// process never wakes. Kernel backend only; direct-backend blocking is
    /// handled in the channels via [`DirectCore::park`](crate::direct::DirectCore::park).
    fn yield_now(&mut self) -> Option<EventId> {
        let CtxInner::Kernel {
            resume_rx,
            yield_tx,
            ..
        } = &mut self.inner
        else {
            unreachable!("yield_now is only reachable from the kernel backend")
        };
        yield_tx
            .send(YieldMsg::Yielded)
            .expect("kernel disappeared while yielding");
        match resume_rx.recv() {
            Ok(Resume::Go(cause)) => cause,
            Ok(Resume::Kill) | Err(_) => {
                // Unwind through the process body; caught by the wrapper.
                // `resume_unwind` skips the panic hook, so teardown is quiet.
                std::panic::resume_unwind(Box::new(KillToken));
            }
        }
    }
}

impl fmt::Debug for ThreadCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("pid", &self.pid().0)
            .field("name", &self.name())
            .field("now", &self.now())
            .finish()
    }
}
