//! Free-running clocks with edge events and cycle counting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::Event;
use crate::kernel::KernelShared;
use crate::process::ThreadCtx;
use crate::signal::Signal;
use crate::time::{SimDur, SimTime};

/// A 50%-duty-cycle clock.
///
/// The clock starts low; the first rising edge occurs after half a period.
/// Cycle-accurate models synchronize on [`posedge`](Clock::posedge) (usually
/// through [`wait_cycles`](Clock::wait_cycles)) and may convert elapsed time
/// to cycles with [`cycles_between`](Clock::cycles_between).
pub struct Clock {
    signal: Signal<bool>,
    posedge: Event,
    negedge: Event,
    period: SimDur,
    rising_edges: Arc<AtomicU64>,
}

impl Clock {
    pub(crate) fn new(kernel: Arc<KernelShared>, name: &str, period: SimDur) -> Self {
        assert!(!period.is_zero(), "clock period must be non-zero");
        assert!(
            period.as_ps() >= 2,
            "clock period below the 2 ps toggle resolution"
        );
        let signal = Signal::new(Arc::clone(&kernel), name, false);
        let posedge = Event::new(Arc::clone(&kernel), &format!("{name}.posedge"));
        let negedge = Event::new(Arc::clone(&kernel), &format!("{name}.negedge"));
        let tick = Event::new(Arc::clone(&kernel), &format!("{name}.tick"));
        let rising_edges = Arc::new(AtomicU64::new(0));

        let half = period / 2;
        let sig = signal.clone();
        let pos = posedge.clone();
        let neg = negedge.clone();
        let tick_for_method = tick.clone();
        let edges = Arc::clone(&rising_edges);
        let mut level = false;
        kernel.spawn_method(
            &format!("{name}.gen"),
            &[tick.id()],
            true,
            Box::new(move |api| {
                if api.cause().is_none() {
                    // Initialization: schedule the first rising edge.
                    tick_for_method.notify_after(half);
                    return;
                }
                level = !level;
                sig.write(level);
                if level {
                    edges.fetch_add(1, Ordering::Relaxed);
                    pos.notify_delta();
                } else {
                    neg.notify_delta();
                }
                tick_for_method.notify_after(half);
            }),
        );

        Clock {
            signal,
            posedge,
            negedge,
            period,
            rising_edges,
        }
    }

    /// Clock period.
    pub fn period(&self) -> SimDur {
        self.period
    }

    /// Frequency in hertz (truncated).
    pub fn freq_hz(&self) -> u64 {
        1_000_000_000_000 / self.period.as_ps()
    }

    /// The clock level signal (for tracing or pin-level models).
    pub fn signal(&self) -> &Signal<bool> {
        &self.signal
    }

    /// Event fired on every rising edge.
    pub fn posedge(&self) -> &Event {
        &self.posedge
    }

    /// Event fired on every falling edge.
    pub fn negedge(&self) -> &Event {
        &self.negedge
    }

    /// Number of rising edges seen so far.
    pub fn cycle_count(&self) -> u64 {
        self.rising_edges.load(Ordering::Relaxed)
    }

    /// Suspends the calling process for `n` rising edges.
    pub fn wait_cycles(&self, ctx: &mut ThreadCtx, n: u64) {
        for _ in 0..n {
            ctx.wait(&self.posedge);
        }
    }

    /// Whole clock cycles elapsed between two time points.
    pub fn cycles_between(&self, from: SimTime, to: SimTime) -> u64 {
        to.saturating_since(from) / self.period
    }

    /// The duration of `n` cycles.
    pub fn cycles(&self, n: u64) -> SimDur {
        self.period.saturating_mul(n)
    }
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Clock")
            .field("name", &self.signal.name())
            .field("period", &self.period)
            .field("cycles", &self.cycle_count())
            .finish()
    }
}
