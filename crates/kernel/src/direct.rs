//! Direct-execution backend for untimed models.
//!
//! The delta-cycle kernel pays for generality: every blocking call crosses
//! the scheduler (two rendezvous channel hops), every notification takes the
//! kernel lock, and at most one process runs at a time. A model that never
//! observes simulated time needs none of that — its semantics are fully
//! determined by the channel protocols alone. This module executes such a
//! model *directly*: each thread process becomes a free-running OS thread,
//! each blocking rendezvous a mutex/condvar [`Gate`], and the kernel is not
//! involved in a single message hand-off.
//!
//! A model **qualifies** when, over the whole run, it
//!
//! * never waits on simulated time (`wait_for` with a nonzero duration,
//!   `wait_any_for`, `notify_after`),
//! * never uses the signal request/update machinery,
//! * never waits on kernel events (`wait`, `wait_any`, FIFOs, sim mutexes),
//! * never spawns processes dynamically or requests an explicit stop, and
//! * only uses channels without transport latency.
//!
//! Qualification is checked *as the model runs*: the first disqualifying
//! construct aborts the direct attempt with a [`Disqualified`] verdict, and
//! the caller (see `Backend::Auto` in `shiptlm-explore`) re-elaborates on
//! the delta-cycle kernel. Time stands still on the direct path — `now()`
//! is always [`SimTime::ZERO`], exactly as in a qualifying run under the DE
//! kernel, so transaction records and metric stamps coincide.
//!
//! # Stall detection
//!
//! The DE kernel advances time (firing timeout timers) or declares
//! starvation exactly when no process is runnable. The direct analogue is a
//! global stall: every live thread parked with no pending wakeup. Detecting
//! that *exactly* under free-running concurrency needs care — a thread that
//! has been notified but not yet left its condvar wait is indistinguishable
//! from a sleeping one by inspection. Every gate therefore carries a wake
//! sequence number bumped on each notification; a parked slot whose
//! recorded sequence lags its gate has a wakeup in flight and vetoes the
//! stall. The stall check takes every gate lock (in id order, serialized by
//! a dedicated mutex), so the verdict is a consistent global snapshot:
//! either some parked call carries a sim-time budget — then all budgeted
//! calls time out together, mirroring the DE kernel where all untimed-model
//! deadlines are equal and fire in one time advance — or the run aborts
//! with a synthesized [`DeadlockReport`].

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

use crate::kernel::ProcessId;
use crate::liveness::{BlockedProcess, DeadlockReport, WaitDesc};
use crate::metrics::MetricsShared;
use crate::process::ThreadCtx;
use crate::time::SimTime;
use crate::txn::TxnShared;

/// Unwind marker used to abort direct threads quietly (the direct analogue
/// of the kernel's `KillToken`).
pub(crate) struct DirectKill;

/// A construct that disqualifies a model from direct execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construct {
    /// `wait_for` with a nonzero duration or `wait_any_for`.
    TimedWait,
    /// `wait`/`wait_any` on a kernel event (FIFOs, sim mutexes, raw events).
    EventWait,
    /// `Signal` request/update machinery.
    SignalUpdate,
    /// `notify_after` timed notification.
    NotifyAfter,
    /// Dynamic process creation from inside a running process.
    DynamicProcess,
    /// Explicit stop request (`ctx.stop()`), whose end-of-delta semantics
    /// only the DE kernel provides.
    ExplicitStop,
    /// A channel configured with nonzero transport latency.
    TimedChannel,
}

impl std::fmt::Display for Construct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Construct::TimedWait => "timed wait (wait_for/wait_any_for)",
            Construct::EventWait => "kernel event wait",
            Construct::SignalUpdate => "signal request/update",
            Construct::NotifyAfter => "notify_after timed notification",
            Construct::DynamicProcess => "dynamic process creation",
            Construct::ExplicitStop => "explicit stop request",
            Construct::TimedChannel => "channel with nonzero transport latency",
        })
    }
}

/// Why a model cannot run on the direct backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disqualified {
    /// The offending construct.
    pub construct: Construct,
    /// Name of the process that used it.
    pub process: String,
}

impl std::fmt::Display for Disqualified {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "process '{}' used {}; model requires the DE kernel",
            self.process, self.construct
        )
    }
}

impl std::error::Error for Disqualified {}

/// How a direct run ended.
#[derive(Debug)]
pub enum DirectOutcome {
    /// Every thread ran to completion.
    Completed,
    /// All live threads parked with no sim-time budget anywhere: the model
    /// is deadlocked (or starved), diagnosed like the DE kernel would.
    Deadlock(DeadlockReport),
    /// The wall-clock watchdog budget expired.
    Watchdog(DeadlockReport),
    /// A disqualifying construct was hit; the model needs the DE kernel.
    Disqualified(Disqualified),
}

/// Verdict of one [`DirectCore::park`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkVerdict {
    /// A peer notified the gate; re-check the guarded condition (another
    /// waiter may have consumed it first).
    Woken,
    /// The call's sim-time budget elapsed in a global stall; surface the
    /// channel's timeout error.
    TimedOut,
}

/// What a parked thread is blocked on, for synthesized deadlock reports.
#[derive(Debug, Clone)]
pub struct ParkInfo {
    /// Resource description, e.g. `ship channel 'link'`.
    pub resource: Arc<str>,
    /// What the wait means, e.g. `recv (awaiting message)`.
    pub description: &'static str,
    /// Whether the blocking call carries a sim-time budget (a configured
    /// channel timeout); budgeted calls time out on a global stall.
    pub timeout_armed: bool,
}

/// A condvar-guarded rendezvous point (one per direct channel).
///
/// Created through [`DirectCore::gate`] so stalls and aborts can reach
/// every parked thread in the simulation. All gates of a run must exist
/// before [`DirectSim::run`] starts threads.
pub struct Gate<T> {
    id: usize,
    m: Mutex<T>,
    cv: Condvar,
    /// Wake sequence: bumped by every [`notify_all`](Self::notify_all)
    /// under the gate lock. A parked slot whose recorded sequence lags this
    /// value has a wakeup in flight.
    wakes: AtomicU64,
}

impl<T> Gate<T> {
    /// Locks the gate's state (poison-tolerant, like the DE kernel locks).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes every thread parked on this gate after a state change. The
    /// guard parameter enforces that the caller holds the gate lock, which
    /// keeps the wake sequence consistent with the guarded state.
    pub fn notify_all(&self, _guard: &mut MutexGuard<'_, T>) {
        self.wakes.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
    }
}

impl<T> std::fmt::Debug for Gate<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gate").field("id", &self.id).finish()
    }
}

/// Type-erased gate access for the global stall check and abort wakeups.
trait AnyGate: Send + Sync {
    /// Acquires and holds the gate lock (freezes notifications and parking
    /// on this gate for the lifetime of the returned token).
    fn hold(&self) -> Box<dyn HeldGate + '_>;
    /// Current wake sequence. Exact while the gate is held.
    fn wakes(&self) -> u64;
    /// Broadcast without locking; only sound while the gate is held.
    fn notify_raw(&self);
    /// Lock, then broadcast — for abort wakeups from threads that hold no
    /// gate.
    fn wake_all(&self);
}

/// Opaque token keeping a gate lock held.
trait HeldGate {}

struct Held<'a, T>(#[allow(dead_code)] MutexGuard<'a, T>);
impl<T> HeldGate for Held<'_, T> {}

impl<T: Send> AnyGate for Gate<T> {
    fn hold(&self) -> Box<dyn HeldGate + '_> {
        Box::new(Held(self.lock()))
    }
    fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }
    fn notify_raw(&self) {
        self.cv.notify_all();
    }
    fn wake_all(&self) {
        let _g = self.lock();
        self.cv.notify_all();
    }
}

/// Why the run is being torn down.
#[derive(Debug)]
enum AbortCause {
    Disqualified(Disqualified),
    Panicked { process: String, message: String },
    Deadlock(DeadlockReport),
    Watchdog(DeadlockReport),
}

#[derive(Debug, Default)]
struct Slot {
    /// `Some` while the thread sits inside [`DirectCore::park`].
    parked: Option<ParkInfo>,
    /// Set by a stall round to time the parked call out.
    timed_out: bool,
    /// Gate the thread is parked on.
    gate: usize,
    /// Gate wake sequence observed at registration.
    seen: u64,
}

#[derive(Debug, Default)]
struct CoreState {
    /// Threads spawned and not yet exited.
    alive: usize,
    /// Threads currently registered as parked.
    parked: usize,
    abort: Option<AbortCause>,
}

enum Flag {
    TimedOut,
    Abort,
}

/// Shared state of one direct-execution run: stall/abort machinery plus the
/// same trace/metrics registries the DE kernel carries, so instrumentation
/// fires identically on both backends.
///
/// Lock order: `stall_mutex` → gate locks (id order) → `state` → `slots` →
/// `names`. A gate lock is never acquired while `state` is held.
pub struct DirectCore {
    state: Mutex<CoreState>,
    slots: Mutex<Vec<Slot>>,
    gates: Mutex<Vec<Weak<dyn AnyGate>>>,
    names: Mutex<Vec<Arc<str>>>,
    /// Serializes global stall checks.
    stall_mutex: Mutex<()>,
    /// Wall-clock deadline of the current run, when a watchdog is armed.
    deadline: Mutex<Option<Instant>>,
    pub(crate) txn: TxnShared,
    pub(crate) metrics: MetricsShared,
}

impl std::fmt::Debug for DirectCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state();
        f.debug_struct("DirectCore")
            .field("alive", &st.alive)
            .field("parked", &st.parked)
            .finish()
    }
}

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl DirectCore {
    fn new() -> Arc<Self> {
        Arc::new(DirectCore {
            state: Mutex::new(CoreState::default()),
            slots: Mutex::new(Vec::new()),
            gates: Mutex::new(Vec::new()),
            names: Mutex::new(Vec::new()),
            stall_mutex: Mutex::new(()),
            deadline: Mutex::new(None),
            txn: TxnShared::new(),
            metrics: MetricsShared::new(),
        })
    }

    fn state(&self) -> MutexGuard<'_, CoreState> {
        plock(&self.state)
    }

    /// Creates a rendezvous gate registered for stall checks and abort
    /// wakeups.
    pub fn gate<T: Send + 'static>(self: &Arc<Self>, init: T) -> Arc<Gate<T>> {
        let mut gates = plock(&self.gates);
        let g = Arc::new(Gate {
            id: gates.len(),
            m: Mutex::new(init),
            cv: Condvar::new(),
            wakes: AtomicU64::new(0),
        });
        gates.push(Arc::downgrade(&g) as Weak<dyn AnyGate>);
        g
    }

    /// The process name of thread index `who`.
    pub fn process_name(&self, who: usize) -> Arc<str> {
        Arc::clone(&plock(&self.names)[who])
    }

    fn unwind(&self) -> ! {
        panic::resume_unwind(Box::new(DirectKill))
    }

    /// Records a disqualifying construct and aborts the calling thread.
    /// First verdict wins; sibling threads unwind at their next blocking
    /// point.
    pub(crate) fn disqualify(&self, construct: Construct) -> ! {
        let process = std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string();
        {
            let mut st = self.state();
            if st.abort.is_none() {
                st.abort = Some(AbortCause::Disqualified(Disqualified {
                    construct,
                    process,
                }));
            }
        }
        self.wake_all();
        self.unwind()
    }

    /// Abort check for non-parking yields (`wait_delta`): unwinds when the
    /// run is being torn down, trips the watchdog when the wall budget is
    /// spent.
    pub(crate) fn check_abort(&self) {
        if self.state().abort.is_some() {
            self.unwind();
        }
        let expired = plock(&self.deadline).is_some_and(|d| Instant::now() >= d);
        if expired {
            self.trip_watchdog();
        }
    }

    fn trip_watchdog(&self) -> ! {
        {
            let mut st = self.state();
            if st.abort.is_none() {
                let report = {
                    let slots = plock(&self.slots);
                    self.report(&slots)
                };
                st.abort = Some(AbortCause::Watchdog(report));
            }
        }
        self.wake_all();
        self.unwind()
    }

    /// Synthesizes a deadlock report from the currently parked slots, in
    /// the same shape the DE kernel's `diagnose` produces.
    fn report(&self, slots: &[Slot]) -> DeadlockReport {
        let names = plock(&self.names);
        let blocked = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.parked.as_ref().map(|info| BlockedProcess {
                    pid: ProcessId(i),
                    name: names[i].to_string(),
                    waits: vec![WaitDesc {
                        event: info.resource.to_string(),
                        description: Some(info.description.to_string()),
                        notifier: None,
                        notifier_pid: None,
                    }],
                })
            })
            .collect();
        DeadlockReport {
            time: SimTime::ZERO,
            blocked,
            cycles: Vec::new(),
        }
    }

    /// Wakes every parked thread after an abort. The caller must not hold
    /// any gate or core lock.
    fn wake_all(&self) {
        let gates: Vec<Weak<dyn AnyGate>> = plock(&self.gates).clone();
        for weak in gates {
            if let Some(gate) = weak.upgrade() {
                gate.wake_all();
            }
        }
    }

    /// The global stall check (see the module docs). Returns with flags or
    /// an abort recorded iff every live thread is parked with no wakeup in
    /// flight. The caller must not hold any gate or core lock.
    fn try_stall(&self) {
        let _serial = plock(&self.stall_mutex);
        // Freeze the world: with every gate held, a thread is either truly
        // asleep, blocked re-entering its gate (then its wake is recorded
        // in the gate's sequence), or running free (then it is not parked).
        let gates: Vec<Arc<dyn AnyGate>> = plock(&self.gates)
            .iter()
            .filter_map(Weak::upgrade)
            .collect();
        let held: Vec<Box<dyn HeldGate + '_>> = gates.iter().map(|g| g.hold()).collect();
        let mut st = self.state();
        if st.alive == 0 || st.parked != st.alive || st.abort.is_some() {
            return;
        }
        let mut slots = plock(&self.slots);
        let parked: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parked.is_some())
            .map(|(i, _)| i)
            .collect();
        // A pending wakeup anywhere vetoes the stall; the woken thread will
        // re-examine its condition and either progress or re-park (with a
        // fresh sequence), re-triggering this check.
        if parked
            .iter()
            .any(|&i| gates[slots[i].gate].wakes() != slots[i].seen)
        {
            return;
        }
        let armed: Vec<usize> = parked
            .iter()
            .copied()
            .filter(|&i| slots[i].parked.as_ref().is_some_and(|p| p.timeout_armed))
            .collect();
        if armed.is_empty() {
            let report = self.report(&slots);
            st.abort = Some(AbortCause::Deadlock(report));
        } else {
            for i in armed {
                slots[i].timed_out = true;
            }
        }
        drop(slots);
        drop(st);
        for g in &gates {
            g.notify_raw();
        }
        drop(held);
    }

    /// Checks this thread's park flags; `Some` deregisters the park.
    fn flags(&self, who: usize) -> Option<Flag> {
        let mut st = self.state();
        let mut slots = plock(&self.slots);
        if std::mem::take(&mut slots[who].timed_out) {
            if slots[who].parked.take().is_some() {
                st.parked -= 1;
            }
            return Some(Flag::TimedOut);
        }
        if st.abort.is_some() {
            if slots[who].parked.take().is_some() {
                st.parked -= 1;
            }
            return Some(Flag::Abort);
        }
        None
    }

    fn leave_park(&self, who: usize) {
        let mut st = self.state();
        let mut slots = plock(&self.slots);
        if slots[who].parked.take().is_some() {
            st.parked -= 1;
        }
    }

    fn slot_seen(&self, who: usize) -> u64 {
        plock(&self.slots)[who].seen
    }

    /// Parks the calling thread on `gate` until a peer notifies it or its
    /// sim-time budget elapses in a global stall. The caller passes the
    /// gate's lock in and receives it back, so the guarded condition can be
    /// re-checked without a race. Unwinds the thread when the run aborts
    /// underneath it.
    pub fn park<'a, T>(
        &self,
        gate: &'a Gate<T>,
        guard: MutexGuard<'a, T>,
        who: usize,
        info: ParkInfo,
    ) -> (MutexGuard<'a, T>, ParkVerdict) {
        let seen = gate.wakes.load(Ordering::Relaxed);
        let suspect = {
            let mut st = self.state();
            if st.abort.is_some() {
                drop(st);
                drop(guard);
                self.unwind();
            }
            {
                let mut slots = plock(&self.slots);
                slots[who] = Slot {
                    parked: Some(info),
                    timed_out: false,
                    gate: gate.id,
                    seen,
                };
            }
            st.parked += 1;
            st.parked == st.alive
        };
        let mut guard = guard;
        if suspect {
            // Last runnable thread just blocked. Run the global check with
            // the gate released (it takes every gate lock); we stay
            // registered, so a notification arriving meanwhile bumps the
            // sequence and is caught below.
            drop(guard);
            self.try_stall();
            guard = gate.lock();
        }
        loop {
            match self.flags(who) {
                Some(Flag::TimedOut) => return (guard, ParkVerdict::TimedOut),
                Some(Flag::Abort) => {
                    drop(guard);
                    self.unwind();
                }
                None => {}
            }
            if gate.wakes.load(Ordering::Relaxed) != self.slot_seen(who) {
                self.leave_park(who);
                return (guard, ParkVerdict::Woken);
            }
            let deadline = *plock(&self.deadline);
            guard = match deadline {
                None => gate.cv.wait(guard).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.leave_park(who);
                        drop(guard);
                        self.trip_watchdog();
                    }
                    gate.cv
                        .wait_timeout(guard, d - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
            // Re-examine flags and the wake sequence; a spurious condvar
            // wakeup (neither set) loops back to sleep.
        }
    }
}

type Body = Box<dyn FnOnce(&mut ThreadCtx) + Send>;

/// A direct-execution simulation: spawn threads, then [`run`](Self::run).
///
/// The direct analogue of [`Simulation`](crate::sim::Simulation) for
/// qualifying untimed models. Thread bodies receive the same [`ThreadCtx`]
/// API; channels built on [`DirectCore::gate`] (see `shiptlm-ship`'s
/// `DirectChannel`) rendezvous without any kernel involvement.
pub struct DirectSim {
    core: Arc<DirectCore>,
    pending: Mutex<Vec<(Arc<str>, Body)>>,
}

impl Default for DirectSim {
    fn default() -> Self {
        Self::new()
    }
}

impl DirectSim {
    /// Creates an empty direct simulation.
    pub fn new() -> Self {
        DirectSim {
            core: DirectCore::new(),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// The shared core, used to build direct channels.
    pub fn core(&self) -> &Arc<DirectCore> {
        &self.core
    }

    /// Registers a thread process. Threads start when [`run`](Self::run) is
    /// called, in registration order — pass them in topological wake order
    /// (sources first) so pipelines fill without an initial stampede.
    pub fn spawn_thread<F>(&self, name: &str, body: F)
    where
        F: FnOnce(&mut ThreadCtx) + Send + 'static,
    {
        plock(&self.pending).push((Arc::from(name), Box::new(body)));
    }

    /// Enables the transaction recorder (same semantics as
    /// [`Simulation::record_transactions`](crate::sim::Simulation::record_transactions)).
    pub fn record_transactions(&self, capacity: usize) {
        self.core.txn.enable(capacity);
    }

    /// Snapshots the transaction trace.
    pub fn txn_trace(&self) -> crate::txn::TxnTrace {
        self.core.txn.snapshot()
    }

    /// Enables the time-resolved metrics registry.
    pub fn enable_metrics(&self, window: crate::time::SimDur) {
        self.core.metrics.enable(window);
    }

    /// Snapshots the metric series.
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// Arms (or clears) the wall-clock watchdog for the next run.
    pub fn set_watchdog(&self, budget: Option<Duration>) {
        *plock(&self.core.deadline) = budget.map(|b| Instant::now() + b);
    }

    /// Runs every registered thread to completion.
    ///
    /// # Panics
    ///
    /// Re-raises the first user panic as
    /// `process '<name>' panicked: <message>` — the same shape the DE
    /// kernel's dispatcher produces.
    pub fn run(&self) -> DirectOutcome {
        let threads: Vec<(Arc<str>, Body)> = std::mem::take(&mut *plock(&self.pending));
        let n = threads.len();
        {
            let mut st = self.core.state();
            st.alive = n;
            st.parked = 0;
            st.abort = None;
            *plock(&self.core.slots) = (0..n).map(|_| Slot::default()).collect();
            *plock(&self.core.names) = threads.iter().map(|(name, _)| Arc::clone(name)).collect();
        }
        let mut joins = Vec::with_capacity(n);
        for (idx, (name, body)) in threads.into_iter().enumerate() {
            let core = Arc::clone(&self.core);
            let join = std::thread::Builder::new()
                .name(name.to_string())
                .spawn(move || {
                    let mut ctx = ThreadCtx::direct(Arc::clone(&core), idx, Arc::clone(&name));
                    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                    let check_stall = {
                        let mut st = core.state();
                        st.alive -= 1;
                        match result {
                            // This exit may have left only parked threads
                            // behind.
                            Ok(()) => st.abort.is_none() && st.alive > 0 && st.parked == st.alive,
                            Err(payload) => {
                                if payload.downcast_ref::<DirectKill>().is_none()
                                    && st.abort.is_none()
                                {
                                    st.abort = Some(AbortCause::Panicked {
                                        process: name.to_string(),
                                        message: crate::kernel::panic_message(&*payload),
                                    });
                                    drop(st);
                                    core.wake_all();
                                }
                                false
                            }
                        }
                    };
                    if check_stall {
                        core.try_stall();
                    }
                })
                .expect("failed to spawn direct process thread");
            joins.push(join);
        }
        for join in joins {
            let _ = join.join();
        }
        let abort = self.core.state().abort.take();
        match abort {
            None => DirectOutcome::Completed,
            Some(AbortCause::Deadlock(r)) => DirectOutcome::Deadlock(r),
            Some(AbortCause::Watchdog(r)) => DirectOutcome::Watchdog(r),
            Some(AbortCause::Disqualified(d)) => DirectOutcome::Disqualified(d),
            Some(AbortCause::Panicked { process, message }) => {
                panic!("process '{process}' panicked: {message}")
            }
        }
    }
}

impl std::fmt::Debug for DirectSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectSim")
            .field("core", &self.core)
            .finish()
    }
}
