//! User-facing event handles.

use std::fmt;
use std::sync::Arc;

use crate::kernel::{EventId, KernelShared};
use crate::time::SimDur;

/// A kernel event, analogous to SystemC's `sc_event`.
///
/// Events are cheap handles (`Clone` shares the same underlying event) and
/// can be notified immediately, in the next delta cycle, or after a delay.
///
/// ```
/// use shiptlm_kernel::prelude::*;
///
/// let sim = Simulation::new();
/// let ev = sim.event("ping");
/// let ev2 = ev.clone();
/// sim.spawn_thread("waiter", move |ctx| {
///     ctx.wait(&ev2);
///     assert_eq!(ctx.now(), SimTime::from_ps(5_000));
/// });
/// ev.notify_after(SimDur::ns(5));
/// sim.run();
/// ```
#[derive(Clone)]
pub struct Event {
    pub(crate) id: EventId,
    pub(crate) kernel: Arc<KernelShared>,
}

impl Event {
    pub(crate) fn new(kernel: Arc<KernelShared>, name: &str) -> Self {
        let id = kernel.new_event(name);
        Event { id, kernel }
    }

    pub(crate) fn from_id(kernel: Arc<KernelShared>, id: EventId) -> Self {
        Event { id, kernel }
    }

    /// The kernel-unique id of this event.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The name given at creation (an interned label; cloning it is cheap).
    pub fn name(&self) -> std::sync::Arc<str> {
        self.kernel.event_name(self.id)
    }

    /// Immediate notification: processes waiting on this event become
    /// runnable within the current evaluate phase.
    pub fn notify(&self) {
        self.kernel.notify_now(self.id);
    }

    /// Delta notification: waiters wake in the next delta cycle.
    pub fn notify_delta(&self) {
        self.kernel.notify_delta(self.id);
    }

    /// Timed notification after `d`. A zero delay degrades to a delta
    /// notification. An earlier pending notification takes precedence.
    pub fn notify_after(&self, d: SimDur) {
        self.kernel.notify_after(self.id, d);
    }

    /// Cancels any pending delta or timed notification.
    pub fn cancel(&self) {
        self.kernel.cancel(self.id);
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id.0)
            .field("name", &self.name())
            .finish()
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && Arc::ptr_eq(&self.kernel, &other.kernel)
    }
}

impl Eq for Event {}
