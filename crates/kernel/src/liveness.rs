//! Liveness diagnosis: wait-for graphs, cycle detection and deadlock
//! reports.
//!
//! A transaction-level model whose four SHIP calls all *block* (paper §2)
//! can deadlock exactly like the modeled hardware: the master waits in
//! `request` for a reply while the slave waits in `recv` on a different
//! channel the master will never serve. The kernel already detects the
//! *symptom* — the scheduler starves ([`StopReason::Starved`]) — but the
//! raw stop reason names nobody. This module turns the symptom into a
//! diagnosis:
//!
//! * channels and bus/driver endpoints register **edge metadata**: which
//!   event a blocked caller waits on, what that wait means ("awaiting
//!   reply"), and which endpoint is responsible for notifying it;
//! * endpoints report the **process** that last used them, so the graph can
//!   connect "waits on event E" to "E is fired by process Q";
//! * [`diagnose`](crate::sim::Simulation::diagnose) snapshots every blocked
//!   process, builds the [`WaitForGraph`] and runs cycle detection;
//! * the resulting [`DeadlockReport`] renders human-readable lines naming
//!   processes, channels, sides and the blocking call, plus any wait cycles.
//!
//! [`StopReason::Starved`]: crate::kernel::StopReason::Starved

use std::collections::HashMap;
use std::fmt;

use crate::kernel::{EventId, ProcessId};
use crate::time::SimTime;

/// Identifies a registered blocking endpoint (one side of a SHIP channel, a
/// bus mailbox adapter, a device-driver port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointId(pub(crate) usize);

#[derive(Debug)]
pub(crate) struct EndpointRec {
    /// The shared resource, e.g. `ship channel 'rpc'`.
    pub(crate) resource: String,
    /// Which end, e.g. a PE label or `side A`.
    pub(crate) side: String,
    /// Last process observed using this endpoint.
    pub(crate) last_user: Option<ProcessId>,
    /// Owner process *name*, when the channel knows it before any call is
    /// made (e.g. a port handed to a named PE). Fallback for `last_user`.
    pub(crate) owner_hint: Option<String>,
    /// Free-form live detail, e.g. `owed replies: 1`.
    pub(crate) note: Option<String>,
}

#[derive(Debug)]
pub(crate) struct EdgeRec {
    /// What waiting on this event means, e.g. `request (awaiting reply)`.
    pub(crate) description: String,
    /// The endpoint whose activity fires this event, when known.
    pub(crate) notifier: Option<EndpointId>,
}

/// Edge metadata registry: endpoints plus event → meaning/notifier edges.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    pub(crate) endpoints: Vec<EndpointRec>,
    pub(crate) edges: HashMap<EventId, EdgeRec>,
}

impl Registry {
    pub(crate) fn register_endpoint(&mut self, resource: &str, side: &str) -> EndpointId {
        let id = EndpointId(self.endpoints.len());
        self.endpoints.push(EndpointRec {
            resource: resource.to_string(),
            side: side.to_string(),
            last_user: None,
            owner_hint: None,
            note: None,
        });
        id
    }

    pub(crate) fn describe_endpoint(&self, id: EndpointId) -> Option<String> {
        self.endpoints.get(id.0).map(|e| {
            let mut s = format!("{} side '{}'", e.resource, e.side);
            if let Some(n) = &e.note {
                s += &format!(" ({n})");
            }
            s
        })
    }
}

/// A directed wait-for graph over processes: an edge *P → Q* means "P can
/// only make progress once Q acts".
///
/// Built by [`Simulation::diagnose`](crate::sim::Simulation::diagnose) from
/// the registered edge metadata, but also constructible by hand for testing
/// arbitrary topologies.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    adj: HashMap<ProcessId, Vec<ProcessId>>,
}

impl WaitForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the edge "`from` waits for `to`". Self-loops are kept: a process
    /// waiting on an event only itself can fire is the smallest deadlock.
    pub fn add_edge(&mut self, from: ProcessId, to: ProcessId) {
        let targets = self.adj.entry(from).or_default();
        if !targets.contains(&to) {
            targets.push(to);
        }
        self.adj.entry(to).or_default();
    }

    /// True if the graph has no edges at all.
    pub fn is_empty(&self) -> bool {
        self.adj.values().all(|v| v.is_empty())
    }

    /// Finds elementary wait cycles, each reported once (rotated so the
    /// smallest process id leads) and sorted for deterministic output.
    /// Guaranteed to report at least one cycle whenever any exists.
    pub fn cycles(&self) -> Vec<Vec<ProcessId>> {
        let mut found: Vec<Vec<ProcessId>> = Vec::new();
        let mut nodes: Vec<ProcessId> = self.adj.keys().copied().collect();
        nodes.sort_unstable();
        for &start in &nodes {
            let mut stack = vec![start];
            let mut on_stack = vec![start];
            self.dfs(start, &mut stack, &mut on_stack, &mut found);
        }
        found.sort();
        found.dedup();
        found
    }

    fn dfs(
        &self,
        node: ProcessId,
        stack: &mut Vec<ProcessId>,
        on_stack: &mut Vec<ProcessId>,
        found: &mut Vec<Vec<ProcessId>>,
    ) {
        let Some(next) = self.adj.get(&node) else {
            return;
        };
        for &n in next {
            if let Some(pos) = stack.iter().position(|p| *p == n) {
                // Back edge: the slice from `pos` is an elementary cycle.
                let cycle = canonical(&stack[pos..]);
                if !found.contains(&cycle) {
                    found.push(cycle);
                }
            } else if !on_stack.contains(&n) {
                stack.push(n);
                on_stack.push(n);
                self.dfs(n, stack, on_stack, found);
                stack.pop();
            }
        }
    }
}

/// Rotates a cycle so the smallest process id comes first, making duplicates
/// (the same cycle discovered from different start nodes) comparable.
fn canonical(cycle: &[ProcessId]) -> Vec<ProcessId> {
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| **p)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min_pos..]);
    out.extend_from_slice(&cycle[..min_pos]);
    out
}

/// One wait of a blocked process: the event, what it means, and who is
/// expected to fire it.
#[derive(Debug, Clone)]
pub struct WaitDesc {
    /// Kernel name of the awaited event.
    pub event: String,
    /// Registered meaning of the wait (e.g. `request (awaiting reply)`),
    /// when a channel annotated the event.
    pub description: Option<String>,
    /// Rendered description of the notifying endpoint, when registered.
    pub notifier: Option<String>,
    /// The process expected to fire the event, when the notifying endpoint
    /// has a known user.
    pub notifier_pid: Option<ProcessId>,
}

/// A process found blocked at diagnosis time, with every event it waits on.
#[derive(Debug, Clone)]
pub struct BlockedProcess {
    /// Kernel process id.
    pub pid: ProcessId,
    /// The name the process was spawned with.
    pub name: String,
    /// All waits registered by this process (several for `wait_any`).
    pub waits: Vec<WaitDesc>,
}

/// The rendered outcome of a liveness diagnosis.
///
/// Obtained from [`Simulation::diagnose`](crate::sim::Simulation::diagnose)
/// after a run stopped (typically on
/// [`StopReason::Starved`](crate::kernel::StopReason::Starved) or
/// [`StopReason::Watchdog`](crate::kernel::StopReason::Watchdog)). The
/// `Display` impl produces the human-readable report.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// Simulated time of the snapshot.
    pub time: SimTime,
    /// Every process blocked in a kernel wait.
    pub blocked: Vec<BlockedProcess>,
    /// Detected wait cycles, as process-name rings.
    pub cycles: Vec<Vec<String>>,
}

impl DeadlockReport {
    /// True when at least one wait cycle was found — a certain deadlock
    /// among the named processes.
    pub fn has_cycle(&self) -> bool {
        !self.cycles.is_empty()
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "liveness diagnosis at t={}:", self.time)?;
        if self.blocked.is_empty() {
            writeln!(f, "  no blocked processes")?;
        }
        for p in &self.blocked {
            writeln!(f, "  process '{}' is blocked:", p.name)?;
            for w in &p.waits {
                let mut line = format!("    waiting on event '{}'", w.event);
                if let Some(d) = &w.description {
                    line += &format!(" — {d}");
                }
                if let Some(n) = &w.notifier {
                    line += &format!("; fired by {n}");
                }
                writeln!(f, "{line}")?;
            }
        }
        if self.cycles.is_empty() {
            writeln!(f, "  no wait cycle detected")?;
        } else {
            for c in &self.cycles {
                let ring = c.join("' -> '");
                writeln!(f, "  DEADLOCK cycle: '{ring}' -> '{}'", c[0])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn two_process_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_edge(p(0), p(1));
        g.add_edge(p(1), p(0));
        assert_eq!(g.cycles(), vec![vec![p(0), p(1)]]);
    }

    #[test]
    fn three_process_ring_detected_once() {
        let mut g = WaitForGraph::new();
        g.add_edge(p(2), p(0));
        g.add_edge(p(0), p(1));
        g.add_edge(p(1), p(2));
        assert_eq!(g.cycles(), vec![vec![p(0), p(1), p(2)]]);
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        let mut g = WaitForGraph::new();
        g.add_edge(p(0), p(1));
        g.add_edge(p(1), p(2));
        g.add_edge(p(3), p(2));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn self_wait_is_a_cycle() {
        let mut g = WaitForGraph::new();
        g.add_edge(p(4), p(4));
        assert_eq!(g.cycles(), vec![vec![p(4)]]);
    }

    #[test]
    fn two_disjoint_cycles_both_found() {
        let mut g = WaitForGraph::new();
        g.add_edge(p(0), p(1));
        g.add_edge(p(1), p(0));
        g.add_edge(p(5), p(6));
        g.add_edge(p(6), p(5));
        assert_eq!(g.cycles(), vec![vec![p(0), p(1)], vec![p(5), p(6)]]);
    }
}
