//! Request-scoped causal tracing: one trace id following a job through
//! every layer of the stack.
//!
//! The [transaction recorder](crate::txn) answers "what did the *simulation*
//! do"; this module answers "where did the *job* go" — client submit,
//! gateway admission, queue wait, cache lookup, worker-pool chunk claiming,
//! per-candidate execution, backend probe/fallback — and stitches the
//! simulation-level [`TxnTrace`](crate::txn::TxnTrace) spans underneath, so
//! a single Chrome/Perfetto export shows client-to-simulation causality
//! with correct parenting.
//!
//! Building blocks:
//!
//! * [`TraceCtx`] — the propagated context: a trace id plus the parent span
//!   id new spans should attach under. Minted once per job (client side or
//!   at admission) and carried across the wire.
//! * [`CausalSpan`] — one timed, named, parented span. Host-side spans live
//!   on track 0 with wall-clock-nanosecond timestamps relative to the job
//!   epoch; per-candidate simulation spans live on track `i + 1` with
//!   simulated-nanosecond timestamps.
//! * [`SpanSink`] — a cloneable, thread-safe collector threaded through the
//!   layers. Cost when absent: one `Option` check per decision point.
//! * [`CausalTrace`] — the merged result with the Chrome `trace_event`
//!   exporter.
//!
//! Span ids are process-global and never reused; parent links are carried
//! in the exported `args` (`span_id` / `parent_id` / `trace_id`), which is
//! what the testkit causal parser validates.

use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::txn::{TxnOutcome, TxnTrace};

/// Process-global span-id allocator. Span id 0 is reserved to mean "no
/// parent / root of this collection" so cached span sets can be re-parented
/// when replayed under a new trace.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh, process-unique span id (never 0).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The propagated causal context: which trace a span belongs to and which
/// span it should be parented under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The request-scoped trace id shared by every span of one job.
    pub trace_id: u64,
    /// Span id new children should attach under (0 = trace root).
    pub parent_span: u64,
}

impl TraceCtx {
    /// Mints a fresh context with a new trace id and no parent. The id
    /// mixes wall-clock nanoseconds with a process-global counter so ids
    /// from different processes collide only astronomically rarely.
    pub fn mint() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // SplitMix64 finalizer over (time ^ counter): cheap, well mixed.
        let mut z = nanos ^ next_span_id().rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TraceCtx {
            trace_id: z.max(1),
            parent_span: 0,
        }
    }

    /// The same trace, re-rooted under `span_id` — what a layer passes to
    /// the layer below after opening its own span.
    pub fn child(self, span_id: u64) -> Self {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span: span_id,
        }
    }
}

/// Which timeline a span's timestamps are on.
///
/// Encoded as a `u32`: `0` is the host wall-clock track (nanoseconds since
/// the job epoch); `i + 1` is candidate `i`'s simulated-time track
/// (simulated nanoseconds). Each track becomes one `pid` in the Chrome
/// export so host and per-candidate timelines render side by side without
/// pretending wall time and simulated time share an axis.
pub type SpanTrack = u32;

/// The host wall-clock track.
pub const TRACK_HOST: SpanTrack = 0;

/// The simulated-time track of candidate `index`.
pub const fn track_for_candidate(index: usize) -> SpanTrack {
    index as SpanTrack + 1
}

/// One completed causal span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalSpan {
    /// Trace id (0 in trace-neutral cached sets, stamped at replay).
    pub trace_id: u64,
    /// This span's process-unique id.
    pub span_id: u64,
    /// Parent span id; 0 marks the root(s) of this collection, re-parented
    /// by [`stamp`] when the set is attached under an outer span.
    pub parent_id: u64,
    /// Pipeline stage, from a small closed vocabulary: `job`, `gateway`,
    /// `admission`, `queue-wait`, `cache`, `exec`, `role-detect`, `chunk`,
    /// `candidate`, `txn`.
    pub stage: String,
    /// Human-readable label (candidate arch, txn op, …).
    pub name: String,
    /// Timeline: [`TRACK_HOST`] or [`track_for_candidate`].
    pub track: SpanTrack,
    /// Start, in nanoseconds on the track's timebase (host-ns since the
    /// job epoch for track 0, simulated ns otherwise).
    pub ts_ns: u64,
    /// Duration in nanoseconds on the same timebase.
    pub dur_ns: u64,
    /// Free-form key/value annotations (backend decisions, cache outcome,
    /// prune verdicts).
    pub args: Vec<(String, String)>,
}

impl CausalSpan {
    /// Builds a span with a freshly allocated id under `ctx`.
    pub fn new(ctx: TraceCtx, stage: &str, name: impl Into<String>, track: SpanTrack) -> Self {
        CausalSpan {
            trace_id: ctx.trace_id,
            span_id: next_span_id(),
            parent_id: ctx.parent_span,
            stage: stage.to_string(),
            name: name.into(),
            track,
            ts_ns: 0,
            dur_ns: 0,
            args: Vec::new(),
        }
    }

    /// Adds one key/value annotation (builder style).
    pub fn arg(mut self, key: &str, value: impl Into<String>) -> Self {
        self.args.push((key.to_string(), value.into()));
        self
    }

    /// Sets the timing (builder style).
    pub fn at(mut self, ts_ns: u64, dur_ns: u64) -> Self {
        self.ts_ns = ts_ns;
        self.dur_ns = dur_ns;
        self
    }
}

/// Re-stamps a trace-neutral span set (trace id 0, roots with parent 0)
/// under a concrete [`TraceCtx`]: every span gets `ctx.trace_id`, and spans
/// whose parent is 0 are attached under `ctx.parent_span`. This is how a
/// cached job's spans are replayed for a second requester under *its*
/// trace id without re-running anything.
pub fn stamp(spans: &mut [CausalSpan], ctx: TraceCtx) {
    for s in spans.iter_mut() {
        s.trace_id = ctx.trace_id;
        if s.parent_id == 0 {
            s.parent_id = ctx.parent_span;
        }
    }
}

/// Strips a span set back to trace-neutral form: trace id 0 everywhere,
/// and any parent id not present inside the set itself becomes 0 (a root).
/// The inverse of [`stamp`], applied before inserting into a result cache.
pub fn neutralize(spans: &mut [CausalSpan]) {
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    for s in spans.iter_mut() {
        s.trace_id = 0;
        if !ids.contains(&s.parent_id) {
            s.parent_id = 0;
        }
    }
}

/// A cloneable, thread-safe span collector.
///
/// Layers receive an `Option<SpanSink>`; `None` (the default) costs one
/// branch per decision point — the "≤ 1 relaxed atomic load" discipline of
/// the txn recorder, only cheaper.
#[derive(Debug, Clone, Default)]
pub struct SpanSink {
    inner: Arc<Mutex<Vec<CausalSpan>>>,
}

impl SpanSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one span.
    pub fn push(&self, span: CausalSpan) {
        self.lock().push(span);
    }

    /// Appends many spans.
    pub fn extend(&self, spans: impl IntoIterator<Item = CausalSpan>) {
        self.lock().extend(spans);
    }

    /// Takes every collected span out, leaving the sink empty.
    pub fn take(&self) -> Vec<CausalSpan> {
        std::mem::take(&mut *self.lock())
    }

    /// Copies the collected spans without draining.
    pub fn snapshot(&self) -> Vec<CausalSpan> {
        self.lock().clone()
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<CausalSpan>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Converts a simulation-level [`TxnTrace`] into causal spans on candidate
/// track `track`, all parented under `parent` within trace `ctx` — the
/// stitch between the job-level causal tree and the kernel's transaction
/// recorder. Timestamps become simulated nanoseconds (the kernel's
/// picosecond resolution is floored; sub-ns detail is not load-bearing for
/// causality).
pub fn spans_from_txn(
    trace: &TxnTrace,
    ctx: TraceCtx,
    track: SpanTrack,
) -> Vec<CausalSpan> {
    trace
        .events()
        .iter()
        .map(|ev| {
            let start_ns = ev.start.as_ps() / 1_000;
            let dur_ns = ev.end.saturating_since(ev.start).as_ps() / 1_000;
            CausalSpan {
                trace_id: ctx.trace_id,
                span_id: next_span_id(),
                parent_id: ctx.parent_span,
                stage: "txn".to_string(),
                name: format!("{}:{}", ev.level.as_str(), ev.op),
                track,
                ts_ns: start_ns,
                dur_ns,
                args: vec![
                    ("resource".to_string(), ev.resource.to_string()),
                    ("process".to_string(), ev.process.to_string()),
                    ("bytes".to_string(), ev.bytes.to_string()),
                    (
                        "outcome".to_string(),
                        if ev.outcome == TxnOutcome::Ok { "ok" } else { "error" }.to_string(),
                    ),
                ],
            }
        })
        .collect()
}

/// A merged, exportable causal trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CausalTrace {
    /// Every span of the trace, in collection order.
    pub spans: Vec<CausalSpan>,
}

impl CausalTrace {
    /// Wraps a span set.
    pub fn new(spans: Vec<CausalSpan>) -> Self {
        CausalTrace { spans }
    }

    /// `true` when the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The distinct trace ids present (a well-formed job trace has one).
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Renders Chrome `trace_event` JSON (complete `"X"` events), loadable
    /// in `chrome://tracing` / Perfetto.
    ///
    /// Track 0 (host) becomes `pid` 0 with timestamps normalized so the
    /// earliest host span starts at 0 µs; each candidate track becomes its
    /// own `pid` on the simulated timebase. Span/parent/trace ids are
    /// carried in `args` — that is what the testkit causal parser checks,
    /// since Chrome's visual nesting is only by time containment.
    pub fn to_chrome_json(&self) -> String {
        let host_t0 = self
            .spans
            .iter()
            .filter(|s| s.track == TRACK_HOST)
            .map(|s| s.ts_ns)
            .min()
            .unwrap_or(0);
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        // Process-name metadata per track, in sorted track order.
        let mut tracks: Vec<SpanTrack> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in &tracks {
            if !first {
                out.push(',');
            }
            first = false;
            let name = if *t == TRACK_HOST {
                "host (wall clock)".to_string()
            } else {
                format!("candidate {} (simulated time)", t - 1)
            };
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{t},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                json_string(&name)
            ));
        }
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let ts_ns = if s.track == TRACK_HOST {
                s.ts_ns.saturating_sub(host_t0)
            } else {
                s.ts_ns
            };
            let ts = ts_ns as f64 / 1e3;
            let dur = s.dur_ns as f64 / 1e3;
            let mut args = format!(
                "\"trace_id\":\"{:016x}\",\"span_id\":{},\"parent_id\":{}",
                s.trace_id, s.span_id, s.parent_id
            );
            for (k, v) in &s.args {
                args.push(',');
                args.push_str(&json_string(k));
                args.push(':');
                args.push_str(&json_string(v));
            }
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":0,\"cat\":{},\"name\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
                s.track,
                json_string(&s.stage),
                json_string(&s.name),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes the Chrome export to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_chrome<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_chrome_json().as_bytes())?;
        f.flush()
    }
}

impl fmt::Display for CausalTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} spans, traces {:?}:", self.spans.len(), self.trace_ids())?;
        for s in &self.spans {
            writeln!(
                f,
                "  [{}] {} span={} parent={} track={} ts={}ns dur={}ns",
                s.stage, s.name, s.span_id, s.parent_id, s.track, s.ts_ns, s.dur_ns
            )?;
        }
        Ok(())
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::txn::{TxnEvent, TxnLevel, TxnOutcome};

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mint_produces_distinct_trace_ids() {
        let a = TraceCtx::mint();
        let b = TraceCtx::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.parent_span, 0);
    }

    #[test]
    fn stamp_reparents_roots_only() {
        let ctx = TraceCtx {
            trace_id: 42,
            parent_span: 7,
        };
        let mut spans = vec![
            CausalSpan::new(TraceCtx { trace_id: 0, parent_span: 0 }, "exec", "root", 0),
        ];
        let root_id = spans[0].span_id;
        spans.push(
            CausalSpan::new(
                TraceCtx {
                    trace_id: 0,
                    parent_span: root_id,
                },
                "candidate",
                "child",
                1,
            ),
        );
        stamp(&mut spans, ctx);
        assert_eq!(spans[0].trace_id, 42);
        assert_eq!(spans[0].parent_id, 7);
        assert_eq!(spans[1].parent_id, root_id, "non-root parents untouched");
    }

    #[test]
    fn neutralize_inverts_stamp() {
        let ctx = TraceCtx {
            trace_id: 9,
            parent_span: 3,
        };
        let mut spans = vec![CausalSpan::new(ctx, "exec", "root", 0)];
        let root = spans[0].span_id;
        spans.push(CausalSpan::new(ctx.child(root), "candidate", "c", 1));
        neutralize(&mut spans);
        assert_eq!(spans[0].trace_id, 0);
        assert_eq!(spans[0].parent_id, 0, "external parent became root");
        assert_eq!(spans[1].parent_id, root, "internal parent preserved");
    }

    #[test]
    fn sink_collects_across_clones() {
        let sink = SpanSink::new();
        let clone = sink.clone();
        clone.push(CausalSpan::new(TraceCtx::mint(), "chunk", "0..4", 0));
        assert_eq!(sink.len(), 1);
        let taken = sink.take();
        assert_eq!(taken.len(), 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn txn_stitching_preserves_resource_and_parent() {
        let trace = test_txn_trace();
        let ctx = TraceCtx {
            trace_id: 5,
            parent_span: 11,
        };
        let spans = spans_from_txn(&trace, ctx, track_for_candidate(2));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "txn");
        assert_eq!(spans[0].name, "ship:send");
        assert_eq!(spans[0].parent_id, 11);
        assert_eq!(spans[0].track, 3);
        assert_eq!(spans[0].ts_ns, 1);
        assert!(spans[0].args.iter().any(|(k, v)| k == "resource" && v == "ch0"));
    }

    fn test_txn_trace() -> TxnTrace {
        let ev = TxnEvent {
            level: TxnLevel::Ship,
            op: "send",
            resource: std::sync::Arc::from("ch0"),
            process: std::sync::Arc::from("producer"),
            start: SimTime::from_ps(1_000),
            end: SimTime::from_ps(4_000),
            bytes: 16,
            outcome: TxnOutcome::Ok,
        };
        TxnTrace::from_events(vec![ev], 0)
    }

    #[test]
    fn chrome_export_normalizes_host_track_and_carries_ids() {
        let ctx = TraceCtx {
            trace_id: 0xabcd,
            parent_span: 0,
        };
        let root = CausalSpan::new(ctx, "job", "sweep", TRACK_HOST).at(5_000, 10_000);
        let child = CausalSpan::new(ctx.child(root.span_id), "exec", "run", TRACK_HOST)
            .at(6_000, 2_000)
            .arg("outcome", "miss");
        let sim_span =
            CausalSpan::new(ctx.child(root.span_id), "candidate", "plb", track_for_candidate(0))
                .at(0, 7_000);
        let trace = CausalTrace::new(vec![root.clone(), child, sim_span]);
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Host t0 normalized: earliest host span at ts 0.
        assert!(json.contains("\"ts\":0,"), "{json}");
        // Child at (6000-5000) ns = 1 µs.
        assert!(json.contains("\"ts\":1,"), "{json}");
        // Candidate pid 1, un-normalized sim timebase.
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"trace_id\":\"000000000000abcd\""));
        assert!(json.contains(&format!("\"parent_id\":{}", root.span_id)));
        assert!(json.contains("\"outcome\":\"miss\""));
        assert!(json.contains("process_name"));
        assert_eq!(trace.trace_ids(), vec![0xabcd]);
    }
}
