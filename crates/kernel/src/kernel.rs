//! Kernel internals: event arena, process table and the scheduler loop.
//!
//! The scheduler follows SystemC semantics:
//!
//! 1. **Evaluate** — run every runnable process until the runnable set drains
//!    (immediate notifications extend the current evaluate phase).
//! 2. **Update** — apply channel update requests ([`Signal`](crate::signal::Signal)
//!    writes become visible here).
//! 3. **Delta notify** — promote delta notifications; if any process woke,
//!    start the next delta cycle at the same simulated time.
//! 4. **Time advance** — otherwise pop the earliest timed notifications and
//!    advance [`SimTime`].
//!
//! Thread processes are real OS threads, but exactly one process runs at any
//! instant: the kernel resumes a process and blocks until it yields, so the
//! simulation is fully deterministic.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::liveness::{
    BlockedProcess, DeadlockReport, EndpointId, Registry, WaitDesc, WaitForGraph,
};
use crate::metrics::{
    HostProfiler, MetricsShared, PHASE_ADVANCE, PHASE_DELTA, PHASE_EVALUATE, PHASE_UPDATE,
};
use crate::time::{SimDur, SimTime};
use crate::trace::VcdTracer;
use crate::txn::TxnShared;

/// Identifies an event inside the kernel arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) usize);

/// Identifies a process (thread or method) inside the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) usize);

/// Why [`Simulation::run`](crate::sim::Simulation::run) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No future activity exists: every process is blocked and the timed
    /// queue is empty.
    Starved,
    /// `stop()` was called from a process or handle.
    Stopped,
    /// The requested time limit was reached.
    TimeLimit,
    /// The wall-clock watchdog expired while the simulation was still
    /// making (possibly unbounded) progress. Diagnose with
    /// [`Simulation::diagnose`](crate::sim::Simulation::diagnose).
    Watchdog,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Starved => "event starvation",
            StopReason::Stopped => "explicit stop",
            StopReason::TimeLimit => "time limit",
            StopReason::Watchdog => "wall-clock watchdog",
        };
        f.write_str(s)
    }
}

/// Outcome of a scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Simulated time when the run ended.
    pub time: SimTime,
    /// Why the run ended.
    pub reason: StopReason,
}

pub(crate) enum Resume {
    Go(Option<EventId>),
    Kill,
}

pub(crate) enum YieldMsg {
    Yielded,
    Terminated,
    Panicked(String),
}

/// Marker panic payload used to unwind a process thread when the simulation
/// is dropped. Caught by the process wrapper, never observed by user code.
pub(crate) struct KillToken;

struct EventRec {
    /// Interned: handed out as `Arc` clones, never re-allocated per query.
    name: Arc<str>,
    /// Threads dynamically waiting on this event.
    waiters: Vec<ProcessId>,
    /// Methods statically sensitive to this event.
    static_sensitive: Vec<ProcessId>,
    /// Pending delta notification?
    delta_pending: bool,
    /// Earliest pending timed notification, if any.
    timed_at: Option<SimTime>,
}

enum ProcKind {
    Thread(ThreadLink),
    Method(Option<MethodFn>),
}

pub(crate) type MethodFn = Box<dyn FnMut(&mut MethodApi) + Send>;

struct ThreadLink {
    /// `None` after teardown dropped it to force a blocked `recv` to error
    /// out (the `KillToken` unwind path).
    resume_tx: Option<SyncSender<Resume>>,
    /// Wrapped in its own mutex so the kernel can block on a yield without
    /// holding the main kernel lock.
    yield_rx: Arc<Mutex<Receiver<YieldMsg>>>,
    join: Option<JoinHandle<()>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Ready,
    Waiting,
    Terminated,
}

struct ProcRec {
    /// Interned: handed out as `Arc` clones, never re-allocated per query.
    name: Arc<str>,
    kind: ProcKind,
    state: PState,
    /// Events this process is dynamically registered on (for `wait_any`).
    waiting_on: Vec<EventId>,
    wake_cause: Option<EventId>,
    /// Private timer event backing `wait_for` / `wait_delta`.
    timer: EventId,
}

/// Min-heap entry for timed notifications; `seq` keeps FIFO order among
/// identical timestamps.
type TimedEntry = Reverse<(SimTime, u64, EventId)>;

/// A deferred update callback, run in the update phase (SystemC
/// `request_update` / `update` pattern).
pub(crate) type UpdateFn = Box<dyn FnOnce(&KernelShared) + Send>;

pub(crate) struct Inner {
    now: SimTime,
    delta_count: u64,
    started: bool,
    stop_requested: bool,
    events: Vec<EventRec>,
    processes: Vec<ProcRec>,
    runnable: VecDeque<ProcessId>,
    /// Events with a pending delta notification (promoted in phase 3).
    delta_queue: Vec<EventId>,
    timed: BinaryHeap<TimedEntry>,
    timed_seq: u64,
    update_requests: Vec<UpdateFn>,
}

/// Kernel state shared between the scheduler, process contexts and channels.
pub(crate) struct KernelShared {
    pub(crate) inner: Mutex<Inner>,
    pub(crate) tracer: Mutex<Option<VcdTracer>>,
    /// Liveness edge metadata (endpoints, event annotations).
    pub(crate) liveness: Mutex<Registry>,
    /// Wall-clock budget for a single `run` call, if configured.
    pub(crate) watchdog: Mutex<Option<Duration>>,
    /// Transaction-level trace recorder (disabled by default).
    pub(crate) txn: TxnShared,
    /// Time-resolved metrics registry (disabled by default).
    pub(crate) metrics: MetricsShared,
    /// Host wall-clock profiler (disabled by default).
    pub(crate) profiler: HostProfiler,
    /// Set when this kernel is the dormant companion of a direct-execution
    /// run: constructs the direct backend cannot honour (timed
    /// notifications, signal updates, dynamic processes) disqualify the
    /// run instead of silently queueing into a kernel that never runs.
    pub(crate) direct_guard: OnceLock<std::sync::Weak<crate::direct::DirectCore>>,
}

impl KernelShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(KernelShared {
            inner: Mutex::new(Inner {
                now: SimTime::ZERO,
                delta_count: 0,
                started: false,
                stop_requested: false,
                events: Vec::new(),
                processes: Vec::new(),
                runnable: VecDeque::new(),
                delta_queue: Vec::new(),
                timed: BinaryHeap::new(),
                timed_seq: 0,
                update_requests: Vec::new(),
            }),
            tracer: Mutex::new(None),
            liveness: Mutex::new(Registry::default()),
            watchdog: Mutex::new(None),
            txn: TxnShared::new(),
            metrics: MetricsShared::new(),
            profiler: HostProfiler::new(),
            direct_guard: OnceLock::new(),
        })
    }

    /// Aborts the surrounding direct-execution run when this kernel is a
    /// direct run's dormant companion (no-op otherwise).
    fn disqualify_if_direct(&self, construct: crate::direct::Construct) {
        if let Some(weak) = self.direct_guard.get() {
            if let Some(core) = weak.upgrade() {
                core.disqualify(construct);
            }
        }
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn now(&self) -> SimTime {
        self.lock().now
    }

    pub(crate) fn delta_count(&self) -> u64 {
        self.lock().delta_count
    }

    pub(crate) fn request_stop(&self) {
        self.disqualify_if_direct(crate::direct::Construct::ExplicitStop);
        self.lock().stop_requested = true;
    }

    pub(crate) fn new_event(&self, name: &str) -> EventId {
        let mut g = self.lock();
        let id = EventId(g.events.len());
        g.events.push(EventRec {
            name: Arc::from(name),
            waiters: Vec::new(),
            static_sensitive: Vec::new(),
            delta_pending: false,
            timed_at: None,
        });
        id
    }

    pub(crate) fn event_name(&self, id: EventId) -> Arc<str> {
        Arc::clone(&self.lock().events[id.0].name)
    }

    /// Immediate notification: wakes waiters into the *current* evaluate
    /// phase. Outside a run this degrades to a delta notification.
    pub(crate) fn notify_now(&self, id: EventId) {
        let mut g = self.lock();
        if !g.started {
            Self::mark_delta(&mut g, id);
            return;
        }
        Self::fire(&mut g, id);
    }

    pub(crate) fn notify_delta(&self, id: EventId) {
        let mut g = self.lock();
        Self::mark_delta(&mut g, id);
    }

    pub(crate) fn notify_after(&self, id: EventId, d: SimDur) {
        if d.is_zero() {
            self.notify_delta(id);
            return;
        }
        self.disqualify_if_direct(crate::direct::Construct::NotifyAfter);
        let mut g = self.lock();
        // Saturate instead of panicking: SimTime::MAX is the documented
        // "infinite horizon", so an overflowing notification simply lands
        // there (and never fires within any finite run).
        let at = g.now.checked_add(d).unwrap_or(SimTime::MAX);
        // SystemC keeps a single pending notification per event; an earlier
        // one overrides a later one.
        match g.events[id.0].timed_at {
            Some(t) if t <= at => return,
            _ => g.events[id.0].timed_at = Some(at),
        }
        let seq = g.timed_seq;
        g.timed_seq += 1;
        g.timed.push(Reverse((at, seq, id)));
    }

    /// Cancels any pending (delta or timed) notification.
    pub(crate) fn cancel(&self, id: EventId) {
        let mut g = self.lock();
        g.events[id.0].delta_pending = false;
        g.events[id.0].timed_at = None;
        // Stale heap entries are skipped during time advance.
        g.delta_queue.retain(|e| *e != id);
    }

    fn mark_delta(g: &mut Inner, id: EventId) {
        if !g.events[id.0].delta_pending {
            g.events[id.0].delta_pending = true;
            g.delta_queue.push(id);
        }
    }

    /// Fires `id`: wakes dynamic waiters and triggers static-sensitive
    /// methods, moving them into the runnable set.
    ///
    /// Allocation-free on the hot path: both process lists are moved out,
    /// iterated, and moved back so their capacity is reused across fires.
    /// This is sound because `wake` only touches process state, `waiters`
    /// lists and the runnable queue — never `static_sensitive` — and the
    /// kernel lock is held throughout, so nothing else can repopulate the
    /// vectors mid-loop.
    fn fire(g: &mut Inner, id: EventId) {
        let mut waiters = std::mem::take(&mut g.events[id.0].waiters);
        for pid in waiters.drain(..) {
            Self::wake(g, pid, Some(id));
        }
        // `wake` may have re-registered nothing on this event (it only
        // deregisters), so the slot is empty and takes the capacity back.
        let slot = &mut g.events[id.0].waiters;
        if slot.is_empty() {
            *slot = waiters;
        }

        let methods = std::mem::take(&mut g.events[id.0].static_sensitive);
        for &pid in &methods {
            Self::wake(g, pid, Some(id));
        }
        let slot = &mut g.events[id.0].static_sensitive;
        if slot.is_empty() {
            *slot = methods;
        } else {
            // A method registered itself mid-fire (not possible today, but
            // cheap to stay correct about): keep both sets.
            let appended = std::mem::replace(slot, methods);
            slot.extend(appended);
        }
    }

    fn wake(g: &mut Inner, pid: ProcessId, cause: Option<EventId>) {
        let p = &mut g.processes[pid.0];
        if p.state != PState::Waiting {
            return;
        }
        p.state = PState::Ready;
        p.wake_cause = cause;
        let waiting = std::mem::take(&mut p.waiting_on);
        // Deregister from every other event of a `wait_any` group.
        for eid in waiting {
            g.events[eid.0].waiters.retain(|w| *w != pid);
        }
        g.runnable.push_back(pid);
    }

    /// Registers a dynamic wait of `pid` on each event in `ids`.
    pub(crate) fn register_wait(&self, pid: ProcessId, ids: &[EventId]) {
        let mut g = self.lock();
        g.processes[pid.0].state = PState::Waiting;
        g.processes[pid.0].wake_cause = None;
        for id in ids {
            g.processes[pid.0].waiting_on.push(*id);
            g.events[id.0].waiters.push(pid);
        }
    }

    pub(crate) fn request_update(&self, f: UpdateFn) {
        self.disqualify_if_direct(crate::direct::Construct::SignalUpdate);
        self.lock().update_requests.push(f);
    }

    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        name: &str,
        body: Box<dyn FnOnce(&mut crate::process::ThreadCtx) + Send>,
    ) -> ProcessId {
        self.disqualify_if_direct(crate::direct::Construct::DynamicProcess);
        let (resume_tx, resume_rx) = sync_channel::<Resume>(1);
        let (yield_tx, yield_rx) = sync_channel::<YieldMsg>(1);
        let timer = self.new_event(&format!("{name}.timer"));
        let pid = {
            let mut g = self.lock();
            let pid = ProcessId(g.processes.len());
            g.processes.push(ProcRec {
                name: Arc::from(name),
                kind: ProcKind::Thread(ThreadLink {
                    resume_tx: Some(resume_tx),
                    yield_rx: Arc::new(Mutex::new(yield_rx)),
                    join: None,
                }),
                // Newly spawned processes start runnable (SystemC default
                // initialization); during a run they join the current
                // evaluate phase.
                state: PState::Ready,
                waiting_on: Vec::new(),
                wake_cause: None,
                timer,
            });
            g.runnable.push_back(pid);
            pid
        };
        let kernel = Arc::clone(self);
        let join = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                // Wait for the first resume before running the body.
                match resume_rx.recv() {
                    Ok(Resume::Go(_)) => {}
                    Ok(Resume::Kill) | Err(_) => return,
                }
                let mut ctx =
                    crate::process::ThreadCtx::new(kernel, pid, resume_rx, yield_tx.clone());
                let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                match result {
                    Ok(()) => {
                        let _ = yield_tx.send(YieldMsg::Terminated);
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<KillToken>().is_none() {
                            // `&payload` would coerce the Box itself to
                            // `&dyn Any` and never downcast; deref first.
                            let msg = panic_message(&*payload);
                            let _ = yield_tx.send(YieldMsg::Panicked(msg));
                        }
                        // On KillToken the simulation is tearing down and
                        // nobody is listening: exit quietly.
                    }
                }
            })
            .expect("failed to spawn process thread");
        if let ProcKind::Thread(link) = &mut self.lock().processes[pid.0].kind {
            link.join = Some(join);
        }
        pid
    }

    pub(crate) fn spawn_method(
        self: &Arc<Self>,
        name: &str,
        sensitivity: &[EventId],
        initialize: bool,
        f: MethodFn,
    ) -> ProcessId {
        self.disqualify_if_direct(crate::direct::Construct::DynamicProcess);
        let timer = self.new_event(&format!("{name}.timer"));
        let mut g = self.lock();
        let pid = ProcessId(g.processes.len());
        g.processes.push(ProcRec {
            name: Arc::from(name),
            kind: ProcKind::Method(Some(f)),
            state: if initialize {
                PState::Ready
            } else {
                PState::Waiting
            },
            waiting_on: Vec::new(),
            wake_cause: None,
            timer,
        });
        for eid in sensitivity {
            g.events[eid.0].static_sensitive.push(pid);
        }
        if initialize {
            g.runnable.push_back(pid);
        }
        pid
    }

    pub(crate) fn process_timer(&self, pid: ProcessId) -> EventId {
        self.lock().processes[pid.0].timer
    }

    pub(crate) fn process_name(&self, pid: ProcessId) -> Arc<str> {
        Arc::clone(&self.lock().processes[pid.0].name)
    }

    /// Runs the scheduler until `limit`, stop, starvation or watchdog
    /// expiry.
    pub(crate) fn run(self: &Arc<Self>, limit: Option<SimTime>) -> RunResult {
        {
            let mut g = self.lock();
            g.started = true;
            g.stop_requested = false;
        }
        let deadline = self
            .watchdog
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|budget| Instant::now() + budget);
        // Swapped with `delta_queue` each delta cycle so the queue's
        // allocation is reused for the whole run instead of dropped per
        // cycle.
        let mut delta_scratch: Vec<EventId> = Vec::new();
        loop {
            // --- Phase 1: evaluate ----------------------------------------
            let probe = self.profiler.start();
            loop {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        return RunResult {
                            time: self.now(),
                            reason: StopReason::Watchdog,
                        };
                    }
                }
                let next = {
                    let mut g = self.lock();
                    g.runnable.pop_front()
                };
                let Some(pid) = next else { break };
                self.dispatch(pid);
            }
            self.profiler.record_phase(PHASE_EVALUATE, probe);

            // --- Phase 2: update ------------------------------------------
            let probe = self.profiler.start();
            let updates = {
                let mut g = self.lock();
                std::mem::take(&mut g.update_requests)
            };
            for u in updates {
                u(self);
            }
            self.profiler.record_phase(PHASE_UPDATE, probe);

            // --- Phase 3: delta notification ------------------------------
            let probe = self.profiler.start();
            let woke = {
                let mut g = self.lock();
                std::mem::swap(&mut g.delta_queue, &mut delta_scratch);
                for id in delta_scratch.drain(..) {
                    if g.events[id.0].delta_pending {
                        g.events[id.0].delta_pending = false;
                        Self::fire(&mut g, id);
                    }
                }
                if g.runnable.is_empty() {
                    false
                } else {
                    g.delta_count += 1;
                    true
                }
            };
            self.profiler.record_phase(PHASE_DELTA, probe);
            if woke {
                continue;
            }

            if self.lock().stop_requested {
                return RunResult {
                    time: self.now(),
                    reason: StopReason::Stopped,
                };
            }

            // --- Phase 4: time advance ------------------------------------
            // Early returns (starvation / time limit) skip the probe close;
            // a final partial phase is noise for a profile anyway.
            let probe = self.profiler.start();
            let mut g = self.lock();
            let target = loop {
                match g.timed.peek() {
                    None => {
                        return RunResult {
                            time: g.now,
                            reason: StopReason::Starved,
                        }
                    }
                    Some(Reverse((t, _, id))) => {
                        // Skip entries whose notification was cancelled or
                        // overridden by an earlier one.
                        if g.events[id.0].timed_at == Some(*t) {
                            break *t;
                        }
                        let _ = g.timed.pop();
                    }
                }
            };
            if let Some(lim) = limit {
                if target > lim {
                    g.now = lim;
                    return RunResult {
                        time: lim,
                        reason: StopReason::TimeLimit,
                    };
                }
            }
            g.now = target;
            g.delta_count += 1;
            while let Some(Reverse((t, _, id))) = g.timed.peek().copied() {
                if t > target {
                    break;
                }
                let _ = g.timed.pop();
                if g.events[id.0].timed_at == Some(t) {
                    g.events[id.0].timed_at = None;
                    Self::fire(&mut g, id);
                }
            }
            drop(g);
            self.profiler.record_phase(PHASE_ADVANCE, probe);
        }
    }

    fn dispatch(self: &Arc<Self>, pid: ProcessId) {
        enum Action {
            Thread {
                cause: Option<EventId>,
                resume_tx: SyncSender<Resume>,
                yield_rx: Arc<Mutex<Receiver<YieldMsg>>>,
            },
            Method {
                f: MethodFn,
                cause: Option<EventId>,
            },
            Skip,
        }
        let action = {
            let mut g = self.lock();
            let p = &mut g.processes[pid.0];
            if p.state == PState::Terminated {
                Action::Skip
            } else {
                let cause = p.wake_cause.take();
                // The process is "waiting" unless it re-registers; a thread
                // always registers a new wait before yielding.
                p.state = PState::Waiting;
                match &mut p.kind {
                    ProcKind::Thread(link) => match &link.resume_tx {
                        Some(tx) => Action::Thread {
                            cause,
                            resume_tx: tx.clone(),
                            yield_rx: Arc::clone(&link.yield_rx),
                        },
                        // Torn down mid-flight: nothing left to resume.
                        None => Action::Skip,
                    },
                    ProcKind::Method(slot) => match slot.take() {
                        Some(f) => Action::Method { f, cause },
                        None => Action::Skip,
                    },
                }
            }
        };
        let probe = self.profiler.start();
        match action {
            Action::Skip => {}
            Action::Thread {
                cause,
                resume_tx,
                yield_rx,
            } => {
                resume_tx
                    .send(Resume::Go(cause))
                    .expect("process thread vanished");
                let msg = {
                    let rx = yield_rx.lock().unwrap_or_else(|e| e.into_inner());
                    rx.recv()
                        .expect("process thread disconnected without yielding")
                };
                match msg {
                    YieldMsg::Yielded => {}
                    YieldMsg::Terminated => {
                        self.lock().processes[pid.0].state = PState::Terminated;
                    }
                    YieldMsg::Panicked(m) => {
                        let name = self.process_name(pid);
                        panic!("process '{name}' panicked: {m}");
                    }
                }
            }
            Action::Method { mut f, cause } => {
                let mut api = MethodApi {
                    kernel: Arc::clone(self),
                    cause,
                };
                f(&mut api);
                let mut g = self.lock();
                if let ProcKind::Method(slot) = &mut g.processes[pid.0].kind {
                    *slot = Some(f);
                }
            }
        }
        if let Some(t0) = probe {
            self.profiler
                .record_process(self.process_name(pid), t0.elapsed());
        }
    }

    /// Kills and joins every live process thread. Called on simulation drop.
    ///
    /// Each thread is parked either in its initial `recv` (never dispatched)
    /// or inside `yield_now` waiting for a resume. `Resume::Kill` unwinds it
    /// via the `KillToken` panic payload. Dropping the kernel-side sender as
    /// well guarantees the `recv` errors out even if the kill message could
    /// not be buffered, so teardown can never hang on a live thread.
    pub(crate) fn teardown(&self) {
        type LinkParts = (Option<SyncSender<Resume>>, Option<JoinHandle<()>>);
        let links: Vec<LinkParts> = {
            let mut g = self.lock();
            g.processes
                .iter_mut()
                .map(|p| {
                    p.state = PState::Terminated;
                    match &mut p.kind {
                        ProcKind::Thread(link) => (link.resume_tx.take(), link.join.take()),
                        ProcKind::Method(_) => (None, None),
                    }
                })
                .collect()
        };
        // First wave: send kills / drop senders without joining, so sibling
        // processes are all unblocked before we wait on any of them.
        let joins: Vec<JoinHandle<()>> = links
            .into_iter()
            .filter_map(|(tx, join)| {
                if let Some(tx) = tx {
                    let _ = tx.try_send(Resume::Kill);
                    // `tx` drops here: a full buffer still ends in a
                    // disconnect error on the thread's next recv.
                }
                join
            })
            .collect();
        for j in joins {
            let _ = j.join();
        }
    }

    // --- Liveness: edge metadata and diagnosis ---------------------------

    /// Registers a blocking endpoint (one side of a channel / adapter).
    pub(crate) fn register_endpoint(&self, resource: &str, side: &str) -> EndpointId {
        self.liveness
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .register_endpoint(resource, side)
    }

    /// Records the process currently using `ep`.
    pub(crate) fn endpoint_user(&self, ep: EndpointId, pid: ProcessId) {
        let mut g = self.liveness.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = g.endpoints.get_mut(ep.0) {
            e.last_user = Some(pid);
        }
    }

    /// Records the *name* of the process expected to use `ep` before any
    /// call happens (resolved against the process table during diagnosis).
    pub(crate) fn endpoint_owner_hint(&self, ep: EndpointId, name: &str) {
        let mut g = self.liveness.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = g.endpoints.get_mut(ep.0) {
            e.owner_hint = Some(name.to_string());
        }
    }

    /// Attaches live detail text (e.g. pending reply counts) to `ep`.
    pub(crate) fn endpoint_note(&self, ep: EndpointId, note: Option<String>) {
        let mut g = self.liveness.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = g.endpoints.get_mut(ep.0) {
            e.note = note;
        }
    }

    /// Annotates an event with the meaning of waiting on it and, when
    /// known, the endpoint responsible for firing it.
    pub(crate) fn annotate_wait(
        &self,
        event: EventId,
        description: &str,
        notifier: Option<EndpointId>,
    ) {
        let mut g = self.liveness.lock().unwrap_or_else(|e| e.into_inner());
        g.edges.insert(
            event,
            crate::liveness::EdgeRec {
                description: description.to_string(),
                notifier,
            },
        );
    }

    /// Snapshots every blocked process, builds the wait-for graph from the
    /// registered edge metadata and runs cycle detection.
    pub(crate) fn diagnose(&self) -> DeadlockReport {
        let g = self.lock();
        let reg = self.liveness.lock().unwrap_or_else(|e| e.into_inner());
        let mut blocked = Vec::new();
        let mut graph = WaitForGraph::new();
        for (i, p) in g.processes.iter().enumerate() {
            if p.state != PState::Waiting || p.waiting_on.is_empty() {
                continue;
            }
            let pid = ProcessId(i);
            let mut waits = Vec::new();
            for eid in &p.waiting_on {
                let edge = reg.edges.get(eid);
                let notifier_pid = edge
                    .and_then(|e| e.notifier)
                    .and_then(|ep| reg.endpoints.get(ep.0))
                    .and_then(|e| {
                        // Prefer the observed user; fall back to resolving
                        // the owner name against the process table (the
                        // owner may deadlock before its first call).
                        e.last_user.or_else(|| {
                            e.owner_hint.as_ref().and_then(|name| {
                                g.processes
                                    .iter()
                                    .position(|p| p.name.as_ref() == name.as_str())
                                    .map(ProcessId)
                            })
                        })
                    });
                if let Some(q) = notifier_pid {
                    graph.add_edge(pid, q);
                }
                waits.push(WaitDesc {
                    event: g.events[eid.0].name.to_string(),
                    description: edge.map(|e| e.description.clone()),
                    notifier: edge
                        .and_then(|e| e.notifier)
                        .and_then(|ep| reg.describe_endpoint(ep)),
                    notifier_pid,
                });
            }
            blocked.push(BlockedProcess {
                pid,
                name: p.name.to_string(),
                waits,
            });
        }
        let name_of = |pid: ProcessId| g.processes[pid.0].name.to_string();
        let cycles = graph
            .cycles()
            .into_iter()
            .map(|c| c.into_iter().map(name_of).collect())
            .collect();
        DeadlockReport {
            time: g.now,
            blocked,
            cycles,
        }
    }

    /// Sets (or clears) the wall-clock watchdog budget for subsequent runs.
    pub(crate) fn set_watchdog(&self, budget: Option<Duration>) {
        *self.watchdog.lock().unwrap_or_else(|e| e.into_inner()) = budget;
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// API handed to method-process callbacks.
pub struct MethodApi {
    kernel: Arc<KernelShared>,
    cause: Option<EventId>,
}

impl MethodApi {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// The event that triggered this activation, if any (none on the
    /// initialization call).
    pub fn cause(&self) -> Option<EventId> {
        self.cause
    }
}

impl fmt::Debug for MethodApi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MethodApi")
            .field("now", &self.now())
            .field("cause", &self.cause)
            .finish()
    }
}
