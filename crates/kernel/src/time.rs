//! Simulation time types.
//!
//! The kernel counts time in integer **picoseconds**. Two newtypes keep
//! absolute points and durations apart ([`SimTime`] vs [`SimDur`]), so a bus
//! model cannot accidentally add two absolute timestamps.
//!
//! ```
//! use shiptlm_kernel::time::{SimDur, SimTime};
//!
//! let t = SimTime::ZERO + SimDur::ns(10);
//! assert_eq!(t + SimDur::ns(5), SimTime::from_ps(15_000));
//! assert_eq!(SimDur::us(1) / SimDur::ns(10), 100);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute point in simulated time, in picoseconds since elaboration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count since time zero.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDur {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDur(self.0 - earlier.0)
    }

    /// Saturating difference; zero when `earlier` is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDur) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDur {
    /// The empty duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Creates a duration from picoseconds.
    pub const fn ps(ps: u64) -> Self {
        SimDur(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn ns(ns: u64) -> Self {
        SimDur(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn us(us: u64) -> Self {
        SimDur(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn ms(ms: u64) -> Self {
        SimDur(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn s(s: u64) -> Self {
        SimDur(s * 1_000_000_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// `true` when this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The period of a clock running at `hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero or above 1 THz (the picosecond resolution).
    pub fn from_freq_hz(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be non-zero");
        assert!(hz <= 1_000_000_000_000, "frequency above 1 THz resolution");
        SimDur(1_000_000_000_000 / hz)
    }

    /// Saturating multiplication by a scalar.
    pub fn saturating_mul(self, k: u64) -> SimDur {
        SimDur(self.0.saturating_mul(k))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Mul<SimDur> for u64 {
    type Output = SimDur;
    fn mul(self, rhs: SimDur) -> SimDur {
        SimDur(self * rhs.0)
    }
}

/// Number of whole `rhs` periods in `self`.
impl Div<SimDur> for SimDur {
    type Output = u64;
    fn div(self, rhs: SimDur) -> u64 {
        self.0 / rhs.0
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl Rem<SimDur> for SimDur {
    type Output = SimDur;
    fn rem(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 % rhs.0)
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, Add::add)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    const UNITS: [(u64, &str); 4] = [
        (1_000_000_000_000, "s"),
        (1_000_000_000, "ms"),
        (1_000_000, "us"),
        (1_000, "ns"),
    ];
    for (scale, unit) in UNITS {
        if ps >= scale && ps.is_multiple_of(scale) {
            return write!(f, "{} {unit}", ps / scale);
        }
    }
    write!(f, "{ps} ps")
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDur::ns(1).as_ps(), 1_000);
        assert_eq!(SimDur::us(1).as_ps(), 1_000_000);
        assert_eq!(SimDur::ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDur::s(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::ZERO + SimDur::ns(3) + SimDur::ps(500);
        assert_eq!(t.as_ps(), 3_500);
        assert_eq!(t.since(SimTime::from_ps(500)), SimDur::ns(3));
    }

    #[test]
    #[should_panic(expected = "is after self")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_ps(1).since(SimTime::from_ps(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::from_ps(1).saturating_since(SimTime::from_ps(5)),
            SimDur::ZERO
        );
    }

    #[test]
    fn duration_division_counts_periods() {
        assert_eq!(SimDur::ns(25) / SimDur::ns(10), 2);
        assert_eq!(SimDur::ns(25) % SimDur::ns(10), SimDur::ns(5));
    }

    #[test]
    fn frequency_to_period() {
        assert_eq!(SimDur::from_freq_hz(100_000_000), SimDur::ns(10));
        assert_eq!(SimDur::from_freq_hz(1_000_000_000), SimDur::ns(1));
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_frequency_panics() {
        let _ = SimDur::from_freq_hz(0);
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(SimDur::ns(10).to_string(), "10 ns");
        assert_eq!(SimDur::ps(1_500).to_string(), "1500 ps");
        assert_eq!(SimTime::from_ps(2_000_000).to_string(), "2 us");
        assert_eq!(SimDur::ZERO.to_string(), "0 ps");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDur = [SimDur::ns(1), SimDur::ns(2), SimDur::ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDur::ns(6));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDur::ps(1)), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimDur::ps(7)),
            Some(SimTime::from_ps(7))
        );
    }
}
