//! Minimal VCD (value change dump) writer for waveform inspection.
//!
//! Signals opt in via [`Signal::trace`](crate::signal::Signal::trace) after
//! [`Simulation::trace_vcd`](crate::sim::Simulation::trace_vcd) has been
//! called; the file is written when the simulation flushes (explicitly or on
//! drop).

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Identifies a traced variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(usize);

/// Values that can be dumped into a VCD trace.
pub trait TraceValue {
    /// Bit width of the dumped vector.
    const WIDTH: u32;
    /// The value as raw bits (LSB-aligned).
    fn to_bits(&self) -> u64;
}

impl TraceValue for bool {
    const WIDTH: u32 = 1;
    fn to_bits(&self) -> u64 {
        u64::from(*self)
    }
}

macro_rules! impl_trace_uint {
    ($($t:ty => $w:expr),*) => {$(
        impl TraceValue for $t {
            const WIDTH: u32 = $w;
            fn to_bits(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}

impl_trace_uint!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

/// Failure while creating or writing a VCD file.
#[derive(Debug)]
pub struct TraceError {
    path: PathBuf,
    source: io::Error,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vcd trace error on {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

struct VarDef {
    name: String,
    width: u32,
    init: u64,
}

pub(crate) struct VcdTracer {
    path: PathBuf,
    vars: Vec<VarDef>,
    /// (time_ps, var index, bits), recorded in chronological order.
    changes: Vec<(u64, usize, u64)>,
    flushed: bool,
}

impl VcdTracer {
    pub(crate) fn create(path: &Path) -> Result<Self, TraceError> {
        // Fail early if the location is not writable.
        File::create(path).map_err(|source| TraceError {
            path: path.to_path_buf(),
            source,
        })?;
        Ok(VcdTracer {
            path: path.to_path_buf(),
            vars: Vec::new(),
            changes: Vec::new(),
            flushed: false,
        })
    }

    pub(crate) fn register(&mut self, name: &str, width: u32, init: u64) -> TraceId {
        let id = TraceId(self.vars.len());
        self.vars.push(VarDef {
            name: name.to_string(),
            width,
            init,
        });
        id
    }

    pub(crate) fn change(&mut self, time_ps: u64, id: TraceId, bits: u64) {
        self.changes.push((time_ps, id.0, bits));
    }

    fn code(index: usize) -> String {
        // Printable id codes, base 94 over '!'..='~'.
        let mut n = index;
        let mut s = String::new();
        loop {
            s.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    fn write_value(out: &mut impl Write, width: u32, bits: u64, code: &str) -> io::Result<()> {
        if width == 1 {
            writeln!(out, "{}{}", bits & 1, code)
        } else {
            write!(out, "b")?;
            for i in (0..width).rev() {
                write!(out, "{}", (bits >> i) & 1)?;
            }
            writeln!(out, " {code}")
        }
    }

    pub(crate) fn flush(&mut self) -> Result<(), TraceError> {
        if self.flushed {
            return Ok(());
        }
        let run = || -> io::Result<()> {
            let mut out = BufWriter::new(File::create(&self.path)?);
            writeln!(out, "$timescale 1ps $end")?;
            writeln!(out, "$scope module top $end")?;
            for (i, v) in self.vars.iter().enumerate() {
                writeln!(
                    out,
                    "$var wire {} {} {} $end",
                    v.width,
                    Self::code(i),
                    v.name.replace(' ', "_")
                )?;
            }
            writeln!(out, "$upscope $end")?;
            writeln!(out, "$enddefinitions $end")?;
            writeln!(out, "$dumpvars")?;
            for (i, v) in self.vars.iter().enumerate() {
                Self::write_value(&mut out, v.width, v.init, &Self::code(i))?;
            }
            writeln!(out, "$end")?;
            let mut last_time = None;
            for &(t, var, bits) in &self.changes {
                if last_time != Some(t) {
                    writeln!(out, "#{t}")?;
                    last_time = Some(t);
                }
                Self::write_value(&mut out, self.vars[var].width, bits, &Self::code(var))?;
            }
            out.flush()
        };
        run().map_err(|source| TraceError {
            path: self.path.clone(),
            source,
        })?;
        self.flushed = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let c = VcdTracer::code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn trace_value_widths() {
        assert_eq!(bool::WIDTH, 1);
        assert_eq!(u8::WIDTH, 8);
        assert_eq!(u64::WIDTH, 64);
        assert_eq!(true.to_bits(), 1);
        assert_eq!(0xAAu8.to_bits(), 0xAA);
    }

    #[test]
    fn vcd_file_contains_header_and_changes() {
        let dir = std::env::temp_dir();
        let path = dir.join("shiptlm_trace_test.vcd");
        let mut t = VcdTracer::create(&path).unwrap();
        let a = t.register("clk", 1, 0);
        let b = t.register("data", 8, 0x55);
        t.change(1000, a, 1);
        t.change(2000, a, 0);
        t.change(2000, b, 0xFF);
        t.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("$timescale 1ps $end"));
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("#1000"));
        assert!(text.contains("b11111111"));
        std::fs::remove_file(&path).ok();
    }
}
