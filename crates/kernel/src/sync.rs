//! Blocking synchronization primitives for simulated processes, analogous to
//! SystemC's `sc_semaphore` and `sc_mutex`.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::process::ThreadCtx;
use crate::sim::SimHandle;

struct SemShared {
    count: Mutex<usize>,
    freed: Event,
}

/// A counting semaphore for thread processes.
///
/// `acquire` suspends the calling process while the count is zero; `release`
/// wakes all waiters (they re-contend deterministically in wake order).
#[derive(Clone)]
pub struct SimSemaphore {
    shared: Arc<SemShared>,
}

impl SimSemaphore {
    /// Creates a semaphore with `initial` permits.
    pub fn new(sim: &SimHandle, name: &str, initial: usize) -> Self {
        SimSemaphore {
            shared: Arc::new(SemShared {
                count: Mutex::new(initial),
                freed: sim.event(&format!("{name}.freed")),
            }),
        }
    }

    /// Current number of available permits.
    pub fn available(&self) -> usize {
        *self.shared.count.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes one permit, blocking while none are available.
    pub fn acquire(&self, ctx: &mut ThreadCtx) {
        loop {
            {
                let mut g = self.shared.count.lock().unwrap_or_else(|e| e.into_inner());
                if *g > 0 {
                    *g -= 1;
                    return;
                }
            }
            ctx.wait(&self.shared.freed);
        }
    }

    /// Attempts to take one permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut g = self.shared.count.lock().unwrap_or_else(|e| e.into_inner());
        if *g > 0 {
            *g -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one permit and wakes waiters in the next delta cycle.
    pub fn release(&self) {
        {
            let mut g = self.shared.count.lock().unwrap_or_else(|e| e.into_inner());
            *g += 1;
        }
        self.shared.freed.notify_delta();
    }
}

impl fmt::Debug for SimSemaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSemaphore")
            .field("available", &self.available())
            .finish()
    }
}

/// A mutual-exclusion lock for thread processes, built on a binary
/// [`SimSemaphore`].
#[derive(Clone, Debug)]
pub struct SimMutex {
    sem: SimSemaphore,
}

impl SimMutex {
    /// Creates an unlocked mutex.
    pub fn new(sim: &SimHandle, name: &str) -> Self {
        SimMutex {
            sem: SimSemaphore::new(sim, name, 1),
        }
    }

    /// Acquires the lock, blocking while another process holds it.
    pub fn lock(&self, ctx: &mut ThreadCtx) {
        self.sem.acquire(ctx);
    }

    /// Attempts to acquire without blocking.
    pub fn try_lock(&self) -> bool {
        self.sem.try_acquire()
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if the mutex was not locked (double unlock).
    pub fn unlock(&self) {
        assert_eq!(self.sem.available(), 0, "unlock of an unlocked SimMutex");
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn semaphore_serializes_critical_sections() {
        let sim = Simulation::new();
        let sem = SimSemaphore::new(&sim.handle(), "sem", 1);
        let active = StdArc::new(AtomicU32::new(0));
        let peak = StdArc::new(AtomicU32::new(0));
        for i in 0..4 {
            let sem = sem.clone();
            let active = StdArc::clone(&active);
            let peak = StdArc::clone(&peak);
            sim.spawn_thread(&format!("p{i}"), move |ctx| {
                sem.acquire(ctx);
                let a = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(a, Ordering::SeqCst);
                ctx.wait_for(SimDur::ns(10));
                active.fetch_sub(1, Ordering::SeqCst);
                sem.release();
            });
        }
        sim.run();
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn try_acquire_does_not_block() {
        let sim = Simulation::new();
        let sem = SimSemaphore::new(&sim.handle(), "sem", 1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    }

    #[test]
    #[should_panic(expected = "unlock of an unlocked SimMutex")]
    fn double_unlock_panics() {
        let sim = Simulation::new();
        let m = SimMutex::new(&sim.handle(), "m");
        m.unlock();
    }

    #[test]
    fn mutex_excludes_concurrent_holders() {
        let sim = Simulation::new();
        let m = SimMutex::new(&sim.handle(), "m");
        let order = StdArc::new(std::sync::Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let m = m.clone();
            let order = StdArc::clone(&order);
            sim.spawn_thread(&format!("t{i}"), move |ctx| {
                m.lock(ctx);
                order.lock().unwrap().push((i, ctx.now()));
                ctx.wait_for(SimDur::ns(5));
                m.unlock();
            });
        }
        sim.run();
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 3);
        // Holders are strictly serialized 5 ns apart.
        assert_eq!(order[1].1.since(order[0].1), SimDur::ns(5));
        assert_eq!(order[2].1.since(order[1].1), SimDur::ns(5));
    }
}
