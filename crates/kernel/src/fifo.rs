//! Bounded blocking FIFO channels, analogous to SystemC's `sc_fifo`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::kernel::{EventId, KernelShared};
use crate::process::ThreadCtx;

struct FifoShared<T> {
    kernel: Arc<KernelShared>,
    name: String,
    state: Mutex<VecDeque<T>>,
    capacity: usize,
    data_written: EventId,
    data_read: EventId,
}

/// A bounded FIFO with blocking read/write for thread processes and
/// non-blocking variants for methods.
///
/// Cloning yields another handle to the same channel; a typical module keeps
/// one clone per port.
pub struct Fifo<T> {
    shared: Arc<FifoShared<T>>,
}

impl<T> Clone for Fifo<T> {
    fn clone(&self) -> Self {
        Fifo {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> Fifo<T> {
    pub(crate) fn new(kernel: Arc<KernelShared>, name: &str, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        let data_written = kernel.new_event(&format!("{name}.data_written"));
        let data_read = kernel.new_event(&format!("{name}.data_read"));
        Fifo {
            shared: Arc::new(FifoShared {
                kernel,
                name: name.to_string(),
                state: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
                data_written,
                data_read,
            }),
        }
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Blocking read: suspends the calling process while the FIFO is empty.
    pub fn read(&self, ctx: &mut ThreadCtx) -> T {
        loop {
            if let Some(v) = self.try_read() {
                return v;
            }
            ctx.wait(&self.written_event());
        }
    }

    /// Blocking write: suspends the calling process while the FIFO is full.
    pub fn write(&self, ctx: &mut ThreadCtx, v: T) {
        let mut v = v;
        loop {
            match self.try_write(v) {
                Ok(()) => return,
                Err(back) => {
                    v = back;
                    ctx.wait(&self.read_event());
                }
            }
        }
    }

    /// Non-blocking read; `None` when empty.
    pub fn try_read(&self) -> Option<T> {
        let v = self.lock().pop_front();
        if v.is_some() {
            self.shared.kernel.notify_delta(self.shared.data_read);
        }
        v
    }

    /// Non-blocking write; hands the value back when full.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the FIFO is at capacity.
    pub fn try_write(&self, v: T) -> Result<(), T> {
        let mut g = self.lock();
        if g.len() >= self.shared.capacity {
            return Err(v);
        }
        g.push_back(v);
        drop(g);
        self.shared.kernel.notify_delta(self.shared.data_written);
        Ok(())
    }

    /// Event notified (next delta) after each successful write.
    pub fn written_event(&self) -> Event {
        Event::from_id(Arc::clone(&self.shared.kernel), self.shared.data_written)
    }

    /// Event notified (next delta) after each successful read.
    pub fn read_event(&self) -> Event {
        Event::from_id(Arc::clone(&self.shared.kernel), self.shared.data_read)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Send + 'static> fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fifo")
            .field("name", &self.shared.name)
            .field("len", &self.len())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}
